//! The full recurrent SNN: stacked [`RecurrentLifLayer`]s plus an
//! [`LiReadout`], with stage-based execution for the latent-replay
//! frozen/learning split.
//!
//! **Stage convention** (fixed across the workspace, see DESIGN.md §4):
//! stage 0 is the raw input raster; stage `k` (1-based) is the spike output
//! of hidden layer `k`; the readout consumes the last hidden stage. The
//! latent-replay *insertion layer* `k` means: activations are captured at
//! stage `k`, stages `1..=k` are frozen, stages `k+1..` plus the readout
//! are the learning layers.

use ncl_spike::SpikeRaster;
use ncl_tensor::{ops, Rng};
use serde::{Deserialize, Serialize};

use crate::adaptive::ThresholdSchedule;
use crate::config::NetworkConfig;
use crate::error::SnnError;
use crate::layer::RecurrentLifLayer;
use crate::readout::LiReadout;

/// Spike-activity counters of one executed stage in a forward pass; the
/// inputs to the hardware cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageActivity {
    /// Stage index of the layer that produced the spikes (1-based).
    pub stage: usize,
    /// Number of neurons in the stage.
    pub neurons: usize,
    /// Pre-synaptic spikes received (drives synaptic-op counts).
    pub in_spikes: u64,
    /// Spikes emitted by the stage.
    pub out_spikes: u64,
}

/// Activity trace of one forward pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardActivity {
    /// Per executed hidden stage, in execution order.
    pub stages: Vec<StageActivity>,
    /// Spikes received by the readout.
    pub readout_in_spikes: u64,
    /// Timesteps simulated.
    pub steps: usize,
    /// Readout outputs.
    pub outputs: usize,
}

impl ForwardActivity {
    /// Total spikes fed into any layer (synaptic events).
    #[must_use]
    pub fn total_in_spikes(&self) -> u64 {
        self.stages.iter().map(|s| s.in_spikes).sum::<u64>() + self.readout_in_spikes
    }

    /// Accumulates another pass over the *same stage structure* into this
    /// one: spike counters and step counts add, so derived totals
    /// (`neuron_updates`, synaptic-op counts) stay exact for the combined
    /// workload.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the stage structures differ.
    pub fn merge(&mut self, other: &ForwardActivity) -> Result<(), SnnError> {
        if self.stages.len() != other.stages.len() || self.outputs != other.outputs {
            return Err(SnnError::ShapeMismatch {
                op: "ForwardActivity::merge",
                expected: self.stages.len(),
                actual: other.stages.len(),
            });
        }
        for (a, b) in self.stages.iter_mut().zip(other.stages.iter()) {
            if a.stage != b.stage || a.neurons != b.neurons {
                return Err(SnnError::ShapeMismatch {
                    op: "ForwardActivity::merge",
                    expected: a.neurons,
                    actual: b.neurons,
                });
            }
            a.in_spikes += b.in_spikes;
            a.out_spikes += b.out_spikes;
        }
        self.readout_in_spikes += other.readout_in_spikes;
        self.steps += other.steps;
        Ok(())
    }

    /// Total neuron updates performed (`Σ neurons·steps`, including the
    /// readout integrators).
    #[must_use]
    pub fn neuron_updates(&self) -> u64 {
        let hidden: u64 = self
            .stages
            .iter()
            .map(|s| (s.neurons * self.steps) as u64)
            .sum();
        hidden + (self.outputs * self.steps) as u64
    }
}

/// Recorded tensors of one forward pass, as needed by BPTT.
#[derive(Debug, Clone)]
pub struct History {
    /// Stage the recording started from (its raster is `input`).
    pub from_stage: usize,
    /// Timestep count.
    pub steps: usize,
    /// Input raster at `from_stage`.
    pub input: SpikeRaster,
    /// Spike rasters of each executed hidden layer (stages
    /// `from_stage+1 ..=L`, in order).
    pub layer_spikes: Vec<SpikeRaster>,
    /// Pre-reset membrane potentials of each executed hidden layer,
    /// time-major (`[t * neurons + j]`).
    pub layer_membranes: Vec<Vec<f32>>,
    /// Threshold applied at each timestep.
    pub thresholds: Vec<f32>,
    /// Final logits (mean readout membrane).
    pub logits: Vec<f32>,
    /// Spike-activity trace of the recorded pass (for cost modeling).
    pub activity: ForwardActivity,
}

impl History {
    /// An empty history, for use as a reusable recording buffer with
    /// [`Network::record_from_into`]. Every buffer inside is reshaped (not
    /// reallocated, once warm) on each recording.
    #[must_use]
    pub fn empty() -> Self {
        History {
            from_stage: 0,
            steps: 0,
            input: SpikeRaster::new(0, 0),
            layer_spikes: Vec::new(),
            layer_membranes: Vec::new(),
            thresholds: Vec::new(),
            logits: Vec::new(),
            activity: ForwardActivity {
                stages: Vec::new(),
                readout_in_spikes: 0,
                steps: 0,
                outputs: 0,
            },
        }
    }
}

/// Reusable working buffers of one recorded forward pass: membrane state,
/// active-spike index lists and readout integrators. One scratch per
/// training worker lives for a whole epoch, so the steady-state recording
/// path performs no heap allocation per sample.
#[derive(Debug, Default, Clone)]
pub struct ForwardScratch {
    /// Post-reset membrane potentials per executed layer.
    v: Vec<Vec<f32>>,
    /// Previous-step spike indices per executed layer (recurrence input).
    prev_active: Vec<Vec<usize>>,
    /// Spiking indices emitted by the current layer step.
    spikes: Vec<usize>,
    /// Input currents of the widest executed layer.
    current: Vec<f32>,
    /// Readout membrane.
    u: Vec<f32>,
    /// Readout membrane accumulated over time (mean = logits).
    logit_acc: Vec<f32>,
    /// Active-spike indices entering the current layer.
    active: Vec<usize>,
}

impl ForwardScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        ForwardScratch::default()
    }

    /// Shapes every buffer for `exec` layers and `outputs` readout units,
    /// zeroing the state the forward pass reads before writing.
    fn prepare(&mut self, exec: &[RecurrentLifLayer], outputs: usize) {
        if self.v.len() != exec.len() {
            self.v.resize_with(exec.len(), Vec::new);
            self.prev_active.resize_with(exec.len(), Vec::new);
        }
        for (buf, layer) in self.v.iter_mut().zip(exec) {
            buf.clear();
            buf.resize(layer.neurons(), 0.0);
        }
        for pa in &mut self.prev_active {
            pa.clear();
        }
        let max_width = exec.iter().map(|l| l.neurons()).max().unwrap_or(0);
        // `input_current` overwrites the full slice, so no zeroing needed.
        if self.current.len() < max_width {
            self.current.resize(max_width, 0.0);
        }
        self.u.clear();
        self.u.resize(outputs, 0.0);
        self.logit_acc.clear();
        self.logit_acc.resize(outputs, 0.0);
        self.spikes.clear();
        self.active.clear();
    }
}

/// The recurrent spiking network of the paper (Fig. 6).
///
/// # Example
///
/// ```
/// use ncl_snn::{Network, NetworkConfig};
/// use ncl_spike::SpikeRaster;
///
/// # fn main() -> Result<(), ncl_snn::SnnError> {
/// let net = Network::new(NetworkConfig::tiny(8, 3))?;
/// let input = SpikeRaster::from_fn(8, 10, |n, t| (n + t) % 3 == 0);
/// let logits = net.forward(&input)?;
/// assert_eq!(logits.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    config: NetworkConfig,
    layers: Vec<RecurrentLifLayer>,
    readout: LiReadout,
}

impl Network {
    /// Builds a network with seeded, deterministic initialization.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: NetworkConfig) -> Result<Self, SnnError> {
        config.validate()?;
        let mut rng = Rng::seed_from_u64(config.seed);
        let mut layers = Vec::with_capacity(config.hidden_sizes.len());
        let mut prev = config.input_size;
        for &width in &config.hidden_sizes {
            layers.push(RecurrentLifLayer::new(
                prev,
                width,
                config.recurrent,
                config.lif,
                &mut rng,
            )?);
            prev = width;
        }
        let readout = LiReadout::new(prev, config.output_size, config.readout, &mut rng)?;
        Ok(Network {
            config,
            layers,
            readout,
        })
    }

    /// The architecture configuration.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of hidden layers.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrow of hidden layer `i` (0-based; stage `i + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= layers()`.
    #[must_use]
    pub fn layer(&self, i: usize) -> &RecurrentLifLayer {
        &self.layers[i]
    }

    /// Mutable borrow of hidden layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= layers()`.
    pub fn layer_mut(&mut self, i: usize) -> &mut RecurrentLifLayer {
        &mut self.layers[i]
    }

    /// Borrow of the readout.
    #[must_use]
    pub fn readout(&self) -> &LiReadout {
        &self.readout
    }

    /// Mutable borrow of the readout.
    pub fn readout_mut(&mut self) -> &mut LiReadout {
        &mut self.readout
    }

    fn check_stage_input(&self, from_stage: usize, input: &SpikeRaster) -> Result<(), SnnError> {
        let width = self.config.stage_width(from_stage)?;
        if input.neurons() != width {
            return Err(SnnError::ShapeMismatch {
                op: "forward_from",
                expected: width,
                actual: input.neurons(),
            });
        }
        if input.steps() == 0 {
            return Err(SnnError::ShapeMismatch {
                op: "forward_from",
                expected: 1,
                actual: 0,
            });
        }
        Ok(())
    }

    /// Full forward pass from the raw input at constant thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the raster width differs from
    /// the input size or has zero steps.
    pub fn forward(&self, input: &SpikeRaster) -> Result<Vec<f32>, SnnError> {
        self.forward_from(0, input, None)
    }

    /// Forward pass starting at `from_stage` (the raster holds stage
    /// `from_stage` activations). `schedule`, when given, overrides the
    /// firing threshold per timestep for the executed layers; otherwise the
    /// configured constant threshold applies.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidStage`] for a bad stage or
    /// [`SnnError::ShapeMismatch`] for a raster that does not fit it.
    pub fn forward_from(
        &self,
        from_stage: usize,
        input: &SpikeRaster,
        schedule: Option<&ThresholdSchedule>,
    ) -> Result<Vec<f32>, SnnError> {
        Ok(self.run(from_stage, input, schedule)?.logits)
    }

    /// Like [`Network::forward_from`], returning the spike-activity trace
    /// for cost modeling alongside the logits.
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward_from`].
    pub fn forward_from_traced(
        &self,
        from_stage: usize,
        input: &SpikeRaster,
        schedule: Option<&ThresholdSchedule>,
    ) -> Result<(Vec<f32>, ForwardActivity), SnnError> {
        let run = self.run(from_stage, input, schedule)?;
        Ok((run.logits, run.activity))
    }

    /// Runs stages `1..=stage` at constant thresholds and returns the spike
    /// raster of stage `stage` — the latent-replay activation capture
    /// (`stage == 0` returns a copy of the input).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidStage`] / [`SnnError::ShapeMismatch`] as
    /// in [`Network::forward_from`].
    pub fn activations_at(
        &self,
        stage: usize,
        input: &SpikeRaster,
    ) -> Result<SpikeRaster, SnnError> {
        self.activations_at_scheduled(stage, input, None)
    }

    /// Like [`Network::activations_at`], with an optional per-timestep
    /// threshold schedule applied to the executed stages — Alg. 1 of the
    /// paper adapts `V_thr` during latent-replay *generation* (lines
    /// 8–19), not only during training.
    ///
    /// # Errors
    ///
    /// Same as [`Network::activations_at`].
    pub fn activations_at_scheduled(
        &self,
        stage: usize,
        input: &SpikeRaster,
        schedule: Option<&ThresholdSchedule>,
    ) -> Result<SpikeRaster, SnnError> {
        if stage == 0 {
            self.check_stage_input(0, input)?;
            return Ok(input.clone());
        }
        let mut rasters = self.run_frozen(stage, input, schedule)?;
        Ok(rasters
            .pop()
            .expect("stage >= 1 executed at least one layer"))
    }

    /// Runs stages `1..=stage`, returning every intermediate stage raster.
    fn run_frozen(
        &self,
        stage: usize,
        input: &SpikeRaster,
        schedule: Option<&ThresholdSchedule>,
    ) -> Result<Vec<SpikeRaster>, SnnError> {
        self.check_stage_input(0, input)?;
        self.config.stage_width(stage)?;
        debug_assert!(stage >= 1);
        let steps = input.steps();
        let mut rasters: Vec<SpikeRaster> = (0..stage)
            .map(|l| SpikeRaster::new(self.layers[l].neurons(), steps))
            .collect();

        let mut v: Vec<Vec<f32>> = (0..stage)
            .map(|l| vec![0.0; self.layers[l].neurons()])
            .collect();
        let mut prev_active: Vec<Vec<usize>> = (0..stage).map(|_| Vec::new()).collect();
        let mut spikes_scratch: Vec<usize> = Vec::new();
        let mut current = vec![
            0.0f32;
            self.layers[..stage]
                .iter()
                .map(|l| l.neurons())
                .max()
                .unwrap_or(0)
        ];

        for t in 0..steps {
            let threshold = schedule.map_or(self.config.lif.v_threshold, |s| s.value_at(t));
            let mut active: Vec<usize> = input.active_at(t).collect();
            for l in 0..stage {
                let layer = &self.layers[l];
                let n = layer.neurons();
                layer.input_current(&active, &prev_active[l], &mut current[..n]);
                layer.membrane_step(
                    &current[..n],
                    threshold,
                    &mut v[l],
                    None,
                    &mut spikes_scratch,
                );
                for &j in &spikes_scratch {
                    rasters[l].set(j, t, true);
                }
                prev_active[l].clear();
                prev_active[l].extend_from_slice(&spikes_scratch);
                active = spikes_scratch.clone();
            }
        }
        Ok(rasters)
    }

    /// Forward pass with full recording for BPTT.
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward_from`].
    pub fn record_from(
        &self,
        from_stage: usize,
        input: &SpikeRaster,
        schedule: Option<&ThresholdSchedule>,
    ) -> Result<History, SnnError> {
        let mut history = History::empty();
        let mut scratch = ForwardScratch::new();
        self.record_from_into(from_stage, input, schedule, &mut history, &mut scratch)?;
        Ok(history)
    }

    /// In-place variant of [`Network::record_from`]: records the pass into
    /// a caller-owned [`History`] using a caller-owned [`ForwardScratch`],
    /// reusing every buffer inside both. This is the zero-allocation
    /// training hot path — values written are bit-identical to
    /// [`Network::record_from`] (same arithmetic, reused storage), which
    /// `record_into_matches_record_from` in `tests/properties.rs` enforces.
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward_from`].
    pub fn record_from_into(
        &self,
        from_stage: usize,
        input: &SpikeRaster,
        schedule: Option<&ThresholdSchedule>,
        history: &mut History,
        scratch: &mut ForwardScratch,
    ) -> Result<(), SnnError> {
        self.check_stage_input(from_stage, input)?;
        let steps = input.steps();
        let exec = &self.layers[from_stage..];
        let outputs = self.readout.outputs();

        // ---- Shape the history in place --------------------------------
        history.from_stage = from_stage;
        history.steps = steps;
        history.input.copy_from(input);
        history
            .layer_spikes
            .resize_with(exec.len(), || SpikeRaster::new(0, 0));
        history.layer_membranes.resize_with(exec.len(), Vec::new);
        for (raster, layer) in history.layer_spikes.iter_mut().zip(exec) {
            raster.reset(layer.neurons(), steps);
        }
        for (membranes, layer) in history.layer_membranes.iter_mut().zip(exec) {
            // Fully overwritten by `membrane_step` below; only resize.
            membranes.resize(layer.neurons() * steps, 0.0);
        }
        history.thresholds.clear();
        history.activity.stages.clear();
        for (i, layer) in exec.iter().enumerate() {
            history.activity.stages.push(StageActivity {
                stage: from_stage + 1 + i,
                neurons: layer.neurons(),
                in_spikes: 0,
                out_spikes: 0,
            });
        }
        history.activity.readout_in_spikes = 0;
        history.activity.steps = steps;
        history.activity.outputs = outputs;

        scratch.prepare(exec, outputs);

        // ---- Timestep loop (mirrors `run`, recording enabled) ----------
        for t in 0..steps {
            let threshold = schedule.map_or(self.config.lif.v_threshold, |s| s.value_at(t));
            history.thresholds.push(threshold);
            scratch.active.clear();
            scratch.active.extend(input.active_at(t));
            for (li, layer) in exec.iter().enumerate() {
                let n = layer.neurons();
                history.activity.stages[li].in_spikes += scratch.active.len() as u64;
                layer.input_current(
                    &scratch.active,
                    &scratch.prev_active[li],
                    &mut scratch.current[..n],
                );
                let v_pre = &mut history.layer_membranes[li][t * n..(t + 1) * n];
                layer.membrane_step(
                    &scratch.current[..n],
                    threshold,
                    &mut scratch.v[li],
                    Some(v_pre),
                    &mut scratch.spikes,
                );
                for &j in &scratch.spikes {
                    history.layer_spikes[li].set(j, t, true);
                }
                history.activity.stages[li].out_spikes += scratch.spikes.len() as u64;
                scratch.prev_active[li].clear();
                scratch.prev_active[li].extend_from_slice(&scratch.spikes);
                scratch.active.clear();
                scratch.active.extend_from_slice(&scratch.spikes);
            }
            history.activity.readout_in_spikes += scratch.active.len() as u64;
            self.readout
                .step(&scratch.active, &mut scratch.u, &mut scratch.logit_acc);
        }

        let inv_t = 1.0 / steps as f32;
        history.logits.clear();
        history
            .logits
            .extend(scratch.logit_acc.iter().map(|a| a * inv_t));
        Ok(())
    }

    /// Runs stages `1..=stage` like [`Network::activations_at`], returning
    /// the captured raster together with the spike-activity trace of the
    /// executed (frozen) stages — the cost of latent-replay generation.
    ///
    /// # Errors
    ///
    /// Same as [`Network::activations_at`].
    pub fn activations_at_traced(
        &self,
        stage: usize,
        input: &SpikeRaster,
        schedule: Option<&ThresholdSchedule>,
    ) -> Result<(SpikeRaster, ForwardActivity), SnnError> {
        self.check_stage_input(0, input)?;
        self.config.stage_width(stage)?;
        let steps = input.steps();
        if stage == 0 {
            return Ok((
                input.clone(),
                ForwardActivity {
                    stages: Vec::new(),
                    readout_in_spikes: 0,
                    steps,
                    outputs: 0,
                },
            ));
        }
        let mut rasters = self.run_frozen(stage, input, schedule)?;
        let mut stages = Vec::with_capacity(stage);
        let mut in_spikes = input.total_spikes() as u64;
        for (l, raster) in rasters.iter().enumerate() {
            let out_spikes = raster.total_spikes() as u64;
            stages.push(StageActivity {
                stage: l + 1,
                neurons: self.layers[l].neurons(),
                in_spikes,
                out_spikes,
            });
            in_spikes = out_spikes;
        }
        let raster = rasters
            .pop()
            .expect("stage >= 1 executed at least one layer");
        Ok((
            raster,
            ForwardActivity {
                stages,
                readout_in_spikes: 0,
                steps,
                outputs: 0,
            },
        ))
    }

    /// Predicted class for a raw input raster (argmax of logits).
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward`].
    pub fn predict(&self, input: &SpikeRaster) -> Result<usize, SnnError> {
        let logits = self.forward(&input.clone())?;
        Ok(ops::argmax(&logits).expect("output_size >= 1 is validated"))
    }

    /// Batched inference entry point: full forward passes over many
    /// rasters at constant thresholds, sharing every scratch buffer
    /// (membranes, active-spike lists, input currents, readout
    /// integrators) across the batch instead of reallocating them per
    /// call. This is the serving hot path (`ncl_serve`'s micro-batcher
    /// feeds it); results are bit-identical to calling
    /// [`Network::forward`] per raster.
    ///
    /// Rasters may have differing step counts; every raster must have the
    /// network's input width and at least one step.
    ///
    /// The timestep loop below deliberately mirrors [`Network::run`]'s
    /// (without history/activity plumbing) so the scratch buffers can
    /// live outside the per-sample loop; any semantic change to `run`
    /// must land here too — `forward_batch_equals_sequential_forward` in
    /// `tests/properties.rs` enforces the equivalence.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] naming the first raster that
    /// does not fit the input stage. The whole batch is validated before
    /// any forward pass runs, so an error means no work was done.
    pub fn forward_batch(&self, inputs: &[SpikeRaster]) -> Result<Vec<Vec<f32>>, SnnError> {
        for input in inputs {
            self.check_stage_input(0, input)?;
        }
        let outputs = self.readout.outputs();
        let threshold = self.config.lif.v_threshold;

        let mut v: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.neurons()]).collect();
        let mut prev_active: Vec<Vec<usize>> = self.layers.iter().map(|_| Vec::new()).collect();
        let mut spikes_scratch: Vec<usize> = Vec::new();
        let max_width = self.layers.iter().map(|l| l.neurons()).max().unwrap_or(0);
        let mut current = vec![0.0f32; max_width];
        let mut u = vec![0.0f32; outputs];
        let mut logit_acc = vec![0.0f32; outputs];
        let mut active: Vec<usize> = Vec::new();

        let mut results = Vec::with_capacity(inputs.len());
        for input in inputs {
            for membranes in &mut v {
                membranes.iter_mut().for_each(|x| *x = 0.0);
            }
            for pa in &mut prev_active {
                pa.clear();
            }
            u.iter_mut().for_each(|x| *x = 0.0);
            logit_acc.iter_mut().for_each(|x| *x = 0.0);

            let steps = input.steps();
            for t in 0..steps {
                active.clear();
                active.extend(input.active_at(t));
                for (li, layer) in self.layers.iter().enumerate() {
                    let n = layer.neurons();
                    layer.input_current(&active, &prev_active[li], &mut current[..n]);
                    layer.membrane_step(
                        &current[..n],
                        threshold,
                        &mut v[li],
                        None,
                        &mut spikes_scratch,
                    );
                    prev_active[li].clear();
                    prev_active[li].extend_from_slice(&spikes_scratch);
                    active.clear();
                    active.extend_from_slice(&spikes_scratch);
                }
                self.readout.step(&active, &mut u, &mut logit_acc);
            }
            let inv_t = 1.0 / steps as f32;
            results.push(logit_acc.iter().map(|a| a * inv_t).collect());
        }
        Ok(results)
    }

    /// Executes the network from `from_stage` without recording.
    fn run(
        &self,
        from_stage: usize,
        input: &SpikeRaster,
        schedule: Option<&ThresholdSchedule>,
    ) -> Result<RunOutput, SnnError> {
        self.check_stage_input(from_stage, input)?;
        let steps = input.steps();
        let exec = &self.layers[from_stage..]; // layers with stage > from_stage
        let outputs = self.readout.outputs();

        let mut v: Vec<Vec<f32>> = exec.iter().map(|l| vec![0.0; l.neurons()]).collect();
        let mut prev_active: Vec<Vec<usize>> = exec.iter().map(|_| Vec::new()).collect();
        let mut spikes_scratch: Vec<usize> = Vec::new();
        let max_width = exec.iter().map(|l| l.neurons()).max().unwrap_or(0);
        let mut current = vec![0.0f32; max_width];

        let mut u = vec![0.0f32; outputs];
        let mut logit_acc = vec![0.0f32; outputs];

        let mut activity: Vec<StageActivity> = exec
            .iter()
            .enumerate()
            .map(|(i, l)| StageActivity {
                stage: from_stage + 1 + i,
                neurons: l.neurons(),
                in_spikes: 0,
                out_spikes: 0,
            })
            .collect();
        let mut readout_in = 0u64;
        let mut active: Vec<usize> = Vec::new();

        for t in 0..steps {
            let threshold = schedule.map_or(self.config.lif.v_threshold, |s| s.value_at(t));
            active.clear();
            active.extend(input.active_at(t));
            for (li, layer) in exec.iter().enumerate() {
                let n = layer.neurons();
                activity[li].in_spikes += active.len() as u64;
                layer.input_current(&active, &prev_active[li], &mut current[..n]);
                layer.membrane_step(
                    &current[..n],
                    threshold,
                    &mut v[li],
                    None,
                    &mut spikes_scratch,
                );
                activity[li].out_spikes += spikes_scratch.len() as u64;
                prev_active[li].clear();
                prev_active[li].extend_from_slice(&spikes_scratch);
                active.clear();
                active.extend_from_slice(&spikes_scratch);
            }
            readout_in += active.len() as u64;
            self.readout.step(&active, &mut u, &mut logit_acc);
        }

        let inv_t = 1.0 / steps as f32;
        let logits: Vec<f32> = logit_acc.iter().map(|a| a * inv_t).collect();
        Ok(RunOutput {
            logits,
            activity: ForwardActivity {
                stages: activity,
                readout_in_spikes: readout_in,
                steps,
                outputs,
            },
        })
    }

    /// Number of trainable scalar parameters when training from
    /// `from_stage` (stages `from_stage+1..` plus readout).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidStage`] for a bad stage.
    pub fn trainable_params(&self, from_stage: usize) -> Result<usize, SnnError> {
        self.config.stage_width(from_stage)?;
        let mut n = 0;
        for layer in &self.layers[from_stage..] {
            n += layer.w_ff().len();
            if let Some(w) = layer.w_rec() {
                n += w.len();
            }
            n += layer.bias().len();
        }
        n += self.readout.w().len() + self.readout.bias().len();
        Ok(n)
    }

    /// Visits every trainable parameter slice (training from `from_stage`)
    /// in the same fixed order as [`Network::visit_trainable_mut`],
    /// without requiring mutable access — serialization and the
    /// checkpoint-delta plane diff read weights through this.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidStage`] for a bad stage.
    pub fn visit_trainable(
        &self,
        from_stage: usize,
        mut f: impl FnMut(&[f32]),
    ) -> Result<(), SnnError> {
        self.config.stage_width(from_stage)?;
        for layer in &self.layers[from_stage..] {
            f(layer.w_ff().as_slice());
            if let Some(w) = layer.w_rec() {
                f(w.as_slice());
            }
            f(layer.bias());
        }
        f(self.readout.w().as_slice());
        f(self.readout.bias());
        Ok(())
    }

    /// Visits every trainable parameter slice (training from `from_stage`)
    /// in a fixed order: per hidden layer ascending — `w_ff`, `w_rec`
    /// (if present), `bias` — then readout `w`, readout `bias`.
    ///
    /// The order matches [`crate::bptt::Gradients::visit`], which
    /// optimizers rely on.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidStage`] for a bad stage.
    pub fn visit_trainable_mut(
        &mut self,
        from_stage: usize,
        mut f: impl FnMut(&mut [f32]),
    ) -> Result<(), SnnError> {
        self.config.stage_width(from_stage)?;
        for layer in &mut self.layers[from_stage..] {
            f(layer.w_ff_mut().as_mut_slice());
            if let Some(w) = layer.w_rec_mut() {
                f(w.as_mut_slice());
            }
            f(layer.bias_mut());
        }
        f(self.readout.w_mut().as_mut_slice());
        f(self.readout.bias_mut());
        Ok(())
    }
}

/// Internal forward-pass output.
struct RunOutput {
    logits: Vec<f32>,
    activity: ForwardActivity,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;

    fn tiny_net() -> Network {
        Network::new(NetworkConfig::tiny(8, 3)).unwrap()
    }

    fn dense_input(steps: usize) -> SpikeRaster {
        SpikeRaster::from_fn(8, steps, |n, t| (n + t) % 2 == 0)
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let net = tiny_net();
        let input = dense_input(12);
        let a = net.forward(&input).unwrap();
        let b = net.forward(&input).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a, b, "forward is deterministic");
        assert!(a.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn forward_rejects_bad_shapes() {
        let net = tiny_net();
        let wrong_width = SpikeRaster::new(9, 10);
        assert!(matches!(
            net.forward(&wrong_width),
            Err(SnnError::ShapeMismatch { .. })
        ));
        let zero_steps = SpikeRaster::new(8, 0);
        assert!(net.forward(&zero_steps).is_err());
        assert!(matches!(
            net.forward_from(9, &dense_input(4), None),
            Err(SnnError::InvalidStage { .. })
        ));
    }

    #[test]
    fn spikes_propagate_through_stages() {
        let net = tiny_net();
        let input = dense_input(20);
        let (_, activity) = net.forward_from_traced(0, &input, None).unwrap();
        assert_eq!(activity.stages.len(), 2);
        assert_eq!(activity.steps, 20);
        assert!(activity.stages[0].in_spikes > 0, "input spikes arrive");
        assert!(activity.stages[0].out_spikes > 0, "layer 1 fires");
        assert_eq!(
            activity.stages[0].out_spikes, activity.stages[1].in_spikes,
            "layer 1 output feeds layer 2"
        );
        assert_eq!(activity.readout_in_spikes, activity.stages[1].out_spikes);
        assert!(activity.neuron_updates() >= activity.stages[0].out_spikes);
    }

    #[test]
    fn activations_at_stage_matches_traced_forward() {
        let net = tiny_net();
        let input = dense_input(15);
        let act1 = net.activations_at(1, &input).unwrap();
        assert_eq!(act1.neurons(), 16);
        assert_eq!(act1.steps(), 15);
        let (_, activity) = net.forward_from_traced(0, &input, None).unwrap();
        assert_eq!(act1.total_spikes() as u64, activity.stages[0].out_spikes);
        // Stage 0 capture is the input itself.
        assert_eq!(net.activations_at(0, &input).unwrap(), input);
    }

    #[test]
    fn forward_from_later_stage_consumes_activations() {
        let net = tiny_net();
        let input = dense_input(10);
        let act = net.activations_at(1, &input).unwrap();
        let from1 = net.forward_from(1, &act, None).unwrap();
        let full = net.forward(&input).unwrap();
        for (a, b) in from1.iter().zip(full.iter()) {
            assert!(
                (a - b).abs() < 1e-5,
                "stage-split forward equals full forward"
            );
        }
    }

    #[test]
    fn lower_threshold_fires_more() {
        let net = tiny_net();
        let input = dense_input(20);
        let low = ThresholdSchedule::constant(0.3, 20);
        let high = ThresholdSchedule::constant(1.5, 20);
        let (_, a_low) = net.forward_from_traced(0, &input, Some(&low)).unwrap();
        let (_, a_high) = net.forward_from_traced(0, &input, Some(&high)).unwrap();
        let spikes = |a: &ForwardActivity| a.stages.iter().map(|s| s.out_spikes).sum::<u64>();
        assert!(spikes(&a_low) > spikes(&a_high));
    }

    #[test]
    fn record_from_captures_everything() {
        let net = tiny_net();
        let input = dense_input(10);
        let h = net.record_from(0, &input, None).unwrap();
        assert_eq!(h.from_stage, 0);
        assert_eq!(h.steps, 10);
        assert_eq!(h.layer_spikes.len(), 2);
        assert_eq!(h.layer_membranes.len(), 2);
        assert_eq!(h.layer_membranes[0].len(), 16 * 10);
        assert_eq!(h.thresholds.len(), 10);
        assert_eq!(h.logits.len(), 3);
        // Recorded logits equal the plain forward logits.
        let logits = net.forward(&input).unwrap();
        for (a, b) in h.logits.iter().zip(logits.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
        // Spike rasters agree with membrane potentials crossing threshold.
        for li in 0..2 {
            let n = net.layer(li).neurons();
            for t in 0..10 {
                for j in 0..n {
                    let fired = h.layer_spikes[li].get(j, t);
                    let v = h.layer_membranes[li][t * n + j];
                    assert_eq!(fired, v > h.thresholds[t]);
                }
            }
        }
    }

    #[test]
    fn record_from_partial_stage() {
        let net = tiny_net();
        let input = dense_input(10);
        let act = net.activations_at(1, &input).unwrap();
        let h = net.record_from(1, &act, None).unwrap();
        assert_eq!(h.from_stage, 1);
        assert_eq!(h.layer_spikes.len(), 1, "only stage 2 recorded");
        assert_eq!(h.input, act);
    }

    #[test]
    fn trainable_params_counts() {
        let net = tiny_net();
        // Stage 0: everything. 8*16 + 16*16 + 16 + 16*12 + 12*12 + 12 + 12*3 + 3
        let full = net.trainable_params(0).unwrap();
        assert_eq!(
            full,
            8 * 16 + 16 * 16 + 16 + 16 * 12 + 12 * 12 + 12 + 12 * 3 + 3
        );
        // Stage 2: readout only.
        let ro = net.trainable_params(2).unwrap();
        assert_eq!(ro, 12 * 3 + 3);
        assert!(net.trainable_params(9).is_err());
    }

    #[test]
    fn visit_trainable_order_is_stable() {
        let mut net = tiny_net();
        let mut sizes = Vec::new();
        net.visit_trainable_mut(1, |s| sizes.push(s.len())).unwrap();
        // Stage 2 layer (16->12): w_ff, w_rec, bias; then readout w, bias.
        assert_eq!(sizes, vec![16 * 12, 12 * 12, 12, 12 * 3, 3]);
    }

    #[test]
    fn forward_batch_matches_sequential_forward_exactly() {
        let net = tiny_net();
        // Mixed step counts and densities, including an empty raster.
        let inputs: Vec<SpikeRaster> = vec![
            dense_input(12),
            SpikeRaster::from_fn(8, 7, |n, t| (n * 3 + t) % 5 == 0),
            SpikeRaster::new(8, 4),
            dense_input(20),
        ];
        let batched = net.forward_batch(&inputs).unwrap();
        assert_eq!(batched.len(), 4);
        for (input, logits) in inputs.iter().zip(batched.iter()) {
            let single = net.forward(input).unwrap();
            assert_eq!(
                logits, &single,
                "batched forward must be bit-identical to per-call forward"
            );
        }
    }

    #[test]
    fn forward_batch_validates_before_running() {
        let net = tiny_net();
        let inputs = vec![dense_input(10), SpikeRaster::new(9, 10)];
        assert!(matches!(
            net.forward_batch(&inputs),
            Err(SnnError::ShapeMismatch { .. })
        ));
        let zero_steps = vec![dense_input(10), SpikeRaster::new(8, 0)];
        assert!(net.forward_batch(&zero_steps).is_err());
        assert!(net.forward_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn predict_returns_argmax() {
        let net = tiny_net();
        let input = dense_input(10);
        let logits = net.forward(&input).unwrap();
        let want = ncl_tensor::ops::argmax(&logits).unwrap();
        assert_eq!(net.predict(&input).unwrap(), want);
    }
}
