//! Fast-sigmoid surrogate gradient (the paper's Fig. 5).
//!
//! The forward pass uses the non-differentiable step `s = H(v - θ)`; the
//! backward pass replaces its derivative with the fast-sigmoid surrogate
//! `∂s/∂v ≈ 1 / (scale·|v − θ| + 1)²` (Zenke & Ganguli's SuperSpike
//! surrogate, which the SpikingLR baseline also uses).

use serde::{Deserialize, Serialize};

/// Fast-sigmoid surrogate-gradient function.
///
/// # Example
///
/// ```
/// use ncl_snn::surrogate::FastSigmoid;
///
/// let sg = FastSigmoid::new(10.0);
/// assert_eq!(sg.grad(0.0), 1.0);       // peak at threshold crossing
/// assert!(sg.grad(0.5) < sg.grad(0.1)); // decays away from threshold
/// assert_eq!(sg.grad(-0.3), sg.grad(0.3)); // symmetric
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FastSigmoid {
    scale: f32,
}

impl FastSigmoid {
    /// Creates the surrogate with the given slope `scale`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `scale` is not positive.
    #[must_use]
    pub fn new(scale: f32) -> Self {
        debug_assert!(scale > 0.0, "surrogate scale must be positive");
        FastSigmoid { scale }
    }

    /// The slope parameter.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Forward step function: 1 if `x > 0` (i.e. `v > θ` with
    /// `x = v − θ`), else 0.
    #[inline]
    #[must_use]
    pub fn step(&self, x: f32) -> bool {
        x > 0.0
    }

    /// Surrogate derivative `1 / (scale·|x| + 1)²` evaluated at
    /// `x = v − θ`.
    #[inline]
    #[must_use]
    pub fn grad(&self, x: f32) -> f32 {
        let d = self.scale * x.abs() + 1.0;
        1.0 / (d * d)
    }
}

/// Family of surrogate-gradient shapes.
///
/// The paper (and its SpikingLR baseline) uses the fast sigmoid; the other
/// standard shapes from the surrogate-gradient literature are provided for
/// ablation and for users tuning their own models. All share the
/// properties required for stable BPTT: peak 1 at the threshold crossing,
/// symmetric, strictly positive, monotonically decaying in `|x|`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SurrogateKind {
    /// `1 / (scale·|x| + 1)²` — SuperSpike / the paper's Fig. 5.
    #[default]
    FastSigmoid,
    /// `1 / (1 + (scale·x)²)` — the arctan surrogate's derivative shape.
    ArcTan,
    /// `max(0, 1 − scale·|x|)` — triangular (piecewise-linear) window.
    Triangular,
    /// `exp(−(scale·x)²)` — Gaussian window.
    Gaussian,
}

/// A parameterized surrogate gradient: a [`SurrogateKind`] with its slope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Surrogate {
    kind: SurrogateKind,
    scale: f32,
}

impl Surrogate {
    /// Creates a surrogate of the given shape and slope.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `scale` is not positive.
    #[must_use]
    pub fn new(kind: SurrogateKind, scale: f32) -> Self {
        debug_assert!(scale > 0.0, "surrogate scale must be positive");
        Surrogate { kind, scale }
    }

    /// The shape.
    #[must_use]
    pub fn kind(&self) -> SurrogateKind {
        self.kind
    }

    /// The slope parameter.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Surrogate derivative evaluated at `x = v − θ`.
    #[inline]
    #[must_use]
    pub fn grad(&self, x: f32) -> f32 {
        let s = self.scale;
        match self.kind {
            SurrogateKind::FastSigmoid => {
                let d = s * x.abs() + 1.0;
                1.0 / (d * d)
            }
            SurrogateKind::ArcTan => {
                let d = s * x;
                1.0 / (1.0 + d * d)
            }
            SurrogateKind::Triangular => (1.0 - s * x.abs()).max(0.0),
            SurrogateKind::Gaussian => {
                let d = s * x;
                (-(d * d)).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_matches_paper_forward() {
        let sg = FastSigmoid::new(10.0);
        assert!(!sg.step(0.0)); // at threshold: no spike (strict inequality)
        assert!(sg.step(1e-6));
        assert!(!sg.step(-0.5));
    }

    #[test]
    fn grad_peak_and_decay() {
        let sg = FastSigmoid::new(10.0);
        assert_eq!(sg.grad(0.0), 1.0);
        assert!(sg.grad(0.1) < 1.0);
        assert!(sg.grad(1.0) < sg.grad(0.1));
        // Known value: scale 10, x = 0.1 -> 1/(2^2) = 0.25.
        assert!((sg.grad(0.1) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn grad_is_symmetric_and_positive() {
        let sg = FastSigmoid::new(25.0);
        for x in [-2.0f32, -0.5, -0.01, 0.01, 0.5, 2.0] {
            assert!(sg.grad(x) > 0.0);
            assert!((sg.grad(x) - sg.grad(-x)).abs() < 1e-7);
        }
    }

    #[test]
    fn larger_scale_is_sharper() {
        let wide = FastSigmoid::new(5.0);
        let sharp = FastSigmoid::new(50.0);
        assert!(sharp.grad(0.2) < wide.grad(0.2));
        assert_eq!(sharp.grad(0.0), wide.grad(0.0));
        assert_eq!(sharp.scale(), 50.0);
    }

    #[test]
    fn all_kinds_peak_at_threshold() {
        for kind in [
            SurrogateKind::FastSigmoid,
            SurrogateKind::ArcTan,
            SurrogateKind::Triangular,
            SurrogateKind::Gaussian,
        ] {
            let sg = Surrogate::new(kind, 10.0);
            assert_eq!(sg.grad(0.0), 1.0, "{kind:?} must peak at 1");
            assert_eq!(sg.kind(), kind);
            assert_eq!(sg.scale(), 10.0);
        }
    }

    #[test]
    fn all_kinds_are_symmetric_and_decaying() {
        for kind in [
            SurrogateKind::FastSigmoid,
            SurrogateKind::ArcTan,
            SurrogateKind::Triangular,
            SurrogateKind::Gaussian,
        ] {
            let sg = Surrogate::new(kind, 10.0);
            let mut prev = sg.grad(0.0);
            for i in 1..=20 {
                let x = i as f32 * 0.05;
                let g = sg.grad(x);
                assert!((g - sg.grad(-x)).abs() < 1e-7, "{kind:?} symmetric");
                assert!(g <= prev + 1e-7, "{kind:?} decaying");
                assert!(g >= 0.0);
                prev = g;
            }
        }
    }

    #[test]
    fn triangular_has_compact_support_others_do_not() {
        let tri = Surrogate::new(SurrogateKind::Triangular, 10.0);
        assert_eq!(tri.grad(0.2), 0.0, "outside the window");
        for kind in [
            SurrogateKind::FastSigmoid,
            SurrogateKind::ArcTan,
            SurrogateKind::Gaussian,
        ] {
            assert!(Surrogate::new(kind, 10.0).grad(0.2) > 0.0);
        }
    }

    #[test]
    fn fast_sigmoid_kind_matches_fast_sigmoid_struct() {
        let a = Surrogate::new(SurrogateKind::FastSigmoid, 10.0);
        let b = FastSigmoid::new(10.0);
        for x in [-1.0f32, -0.1, 0.0, 0.05, 0.7] {
            assert_eq!(a.grad(x), b.grad(x));
        }
        assert_eq!(SurrogateKind::default(), SurrogateKind::FastSigmoid);
    }
}
