//! Configuration types for LIF neurons and networks.

use serde::{Deserialize, Serialize};

use crate::error::SnnError;
use crate::surrogate::SurrogateKind;

/// Leaky integrate-and-fire neuron parameters (discrete time).
///
/// The membrane update implemented throughout this crate is
/// `v[t] = beta * v[t-1] * (1 - s[t-1]) + I[t]` — a hard reset to 0
/// (the paper's Eq. (2) with `V_rst = 0`), with the reset term detached
/// from the gradient as is standard in surrogate-gradient training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifConfig {
    /// Membrane decay per timestep, `beta = exp(-dt/tau)`, in `(0, 1)`.
    pub beta: f32,
    /// Baseline firing threshold `V_thr` (the paper uses 1.0).
    pub v_threshold: f32,
    /// Slope parameter of the surrogate gradient.
    pub surrogate_scale: f32,
    /// Surrogate-gradient shape (the paper uses the fast sigmoid).
    pub surrogate_kind: SurrogateKind,
}

impl Default for LifConfig {
    fn default() -> Self {
        LifConfig {
            beta: 0.95,
            v_threshold: 1.0,
            surrogate_scale: 10.0,
            surrogate_kind: SurrogateKind::FastSigmoid,
        }
    }
}

impl LifConfig {
    /// Validates the neuron parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SnnError> {
        if !(0.0..1.0).contains(&self.beta) {
            return Err(SnnError::InvalidConfig {
                what: "beta",
                detail: format!("must be in (0, 1), got {}", self.beta),
            });
        }
        if self.v_threshold <= 0.0 || !self.v_threshold.is_finite() {
            return Err(SnnError::InvalidConfig {
                what: "v_threshold",
                detail: format!("must be positive and finite, got {}", self.v_threshold),
            });
        }
        if self.surrogate_scale <= 0.0 {
            return Err(SnnError::InvalidConfig {
                what: "surrogate_scale",
                detail: "must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Leaky-integrator readout parameters (no spiking, no reset).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadoutConfig {
    /// Membrane decay per timestep, in `[0, 1)`.
    pub beta: f32,
}

impl Default for ReadoutConfig {
    fn default() -> Self {
        ReadoutConfig { beta: 0.9 }
    }
}

impl ReadoutConfig {
    /// Validates the readout parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if `beta` is outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), SnnError> {
        if !(0.0..1.0).contains(&self.beta) {
            return Err(SnnError::InvalidConfig {
                what: "readout beta",
                detail: format!("must be in [0, 1), got {}", self.beta),
            });
        }
        Ok(())
    }
}

/// Full network architecture description.
///
/// Stage indexing convention (used by the latent-replay insertion-layer
/// machinery): stage 0 is the raw input, stages `1..=hidden_sizes.len()`
/// are the recurrent hidden layers, and the readout comes last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Input channel count (stage 0 width).
    pub input_size: usize,
    /// Hidden layer widths (stages 1..).
    pub hidden_sizes: Vec<usize>,
    /// Number of output classes.
    pub output_size: usize,
    /// Whether hidden layers carry recurrent weights (the paper's
    /// architecture, Fig. 6, does).
    pub recurrent: bool,
    /// Neuron parameters shared by all hidden layers.
    pub lif: LifConfig,
    /// Readout parameters.
    pub readout: ReadoutConfig,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl NetworkConfig {
    /// The paper's architecture: 700‑200‑100‑50 recurrent hidden stages and
    /// a 20-class readout (Fig. 6, "4-layer SNN").
    #[must_use]
    pub fn paper() -> Self {
        NetworkConfig {
            input_size: 700,
            hidden_sizes: vec![200, 100, 50],
            output_size: 20,
            recurrent: true,
            lif: LifConfig::default(),
            readout: ReadoutConfig::default(),
            seed: 42,
        }
    }

    /// A small architecture for tests and examples.
    #[must_use]
    pub fn tiny(input_size: usize, output_size: usize) -> Self {
        NetworkConfig {
            input_size,
            hidden_sizes: vec![16, 12],
            output_size,
            recurrent: true,
            lif: LifConfig::default(),
            readout: ReadoutConfig::default(),
            seed: 42,
        }
    }

    /// Number of hidden layers.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.hidden_sizes.len()
    }

    /// Width of a stage: stage 0 is the input, stage `k >= 1` is hidden
    /// layer `k`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidStage`] if `stage > layers()`.
    pub fn stage_width(&self, stage: usize) -> Result<usize, SnnError> {
        if stage == 0 {
            Ok(self.input_size)
        } else if stage <= self.hidden_sizes.len() {
            Ok(self.hidden_sizes[stage - 1])
        } else {
            Err(SnnError::InvalidStage {
                stage,
                layers: self.hidden_sizes.len(),
            })
        }
    }

    /// Validates the architecture.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SnnError> {
        if self.input_size == 0 {
            return Err(SnnError::InvalidConfig {
                what: "input_size",
                detail: "must be at least 1".into(),
            });
        }
        if self.hidden_sizes.is_empty() {
            return Err(SnnError::InvalidConfig {
                what: "hidden_sizes",
                detail: "need at least one hidden layer".into(),
            });
        }
        if self.hidden_sizes.contains(&0) {
            return Err(SnnError::InvalidConfig {
                what: "hidden_sizes",
                detail: "hidden layer width must be at least 1".into(),
            });
        }
        if self.output_size == 0 {
            return Err(SnnError::InvalidConfig {
                what: "output_size",
                detail: "must be at least 1".into(),
            });
        }
        self.lif.validate()?;
        self.readout.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(LifConfig::default().validate().is_ok());
        assert!(ReadoutConfig::default().validate().is_ok());
        assert!(NetworkConfig::paper().validate().is_ok());
        assert!(NetworkConfig::tiny(10, 3).validate().is_ok());
    }

    #[test]
    fn paper_architecture_matches_fig6() {
        let c = NetworkConfig::paper();
        assert_eq!(c.input_size, 700);
        assert_eq!(c.hidden_sizes, vec![200, 100, 50]);
        assert_eq!(c.output_size, 20);
        assert!(c.recurrent);
        assert_eq!(c.layers(), 3);
    }

    #[test]
    fn stage_widths() {
        let c = NetworkConfig::paper();
        assert_eq!(c.stage_width(0).unwrap(), 700);
        assert_eq!(c.stage_width(1).unwrap(), 200);
        assert_eq!(c.stage_width(3).unwrap(), 50);
        assert!(matches!(
            c.stage_width(4),
            Err(SnnError::InvalidStage { .. })
        ));
    }

    #[test]
    fn lif_validation() {
        let mut c = LifConfig {
            beta: 1.0,
            ..LifConfig::default()
        };
        assert!(c.validate().is_err());
        c = LifConfig {
            v_threshold: 0.0,
            ..LifConfig::default()
        };
        assert!(c.validate().is_err());
        c = LifConfig {
            surrogate_scale: -1.0,
            ..LifConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn network_validation() {
        let mut c = NetworkConfig::tiny(10, 3);
        c.input_size = 0;
        assert!(c.validate().is_err());
        let mut c = NetworkConfig::tiny(10, 3);
        c.hidden_sizes.clear();
        assert!(c.validate().is_err());
        let mut c = NetworkConfig::tiny(10, 3);
        c.hidden_sizes[0] = 0;
        assert!(c.validate().is_err());
        let mut c = NetworkConfig::tiny(10, 3);
        c.output_size = 0;
        assert!(c.validate().is_err());
        let mut c = NetworkConfig::tiny(10, 3);
        c.readout.beta = 1.0;
        assert!(c.validate().is_err());
    }
}
