//! Error type for SNN construction, simulation and training.

use std::error::Error;
use std::fmt;

use ncl_spike::SpikeError;
use ncl_tensor::TensorError;

/// Error returned by fallible SNN operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SnnError {
    /// A network or training configuration was invalid.
    InvalidConfig {
        /// Which parameter failed validation.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Input data did not match the network's expected shape.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// A stage index was outside `0..=layers`.
    InvalidStage {
        /// The offending stage.
        stage: usize,
        /// Number of hidden layers in the network.
        layers: usize,
    },
    /// An underlying tensor kernel failed (internal invariant violation).
    Tensor(TensorError),
    /// An underlying spike-raster operation failed.
    Spike(SpikeError),
    /// Serialized model bytes were malformed.
    Deserialize {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::InvalidConfig { what, detail } => write!(f, "invalid {what}: {detail}"),
            SnnError::ShapeMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected size {expected}, got {actual}")
            }
            SnnError::InvalidStage { stage, layers } => {
                write!(
                    f,
                    "stage {stage} out of range for a network with {layers} hidden layers"
                )
            }
            SnnError::Tensor(e) => write!(f, "tensor kernel failed: {e}"),
            SnnError::Spike(e) => write!(f, "spike operation failed: {e}"),
            SnnError::Deserialize { detail } => write!(f, "malformed model bytes: {detail}"),
        }
    }
}

impl Error for SnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnnError::Tensor(e) => Some(e),
            SnnError::Spike(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SnnError {
    fn from(e: TensorError) -> Self {
        SnnError::Tensor(e)
    }
}

impl From<SpikeError> for SnnError {
    fn from(e: SpikeError) -> Self {
        SnnError::Spike(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SnnError::InvalidStage {
            stage: 9,
            layers: 3,
        };
        assert!(e.to_string().contains("stage 9"));
        let t: SnnError = TensorError::ZeroDimension { op: "gemv" }.into();
        assert!(t.source().is_some());
        let s: SnnError = SpikeError::InvalidParameter {
            what: "x",
            detail: "y".into(),
        }
        .into();
        assert!(s.to_string().contains("spike"));
        assert!(SnnError::Deserialize {
            detail: "short".into()
        }
        .to_string()
        .contains("short"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SnnError>();
    }
}
