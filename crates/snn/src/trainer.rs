//! Mini-batch training and evaluation loops.
//!
//! The trainer is deliberately dataset-agnostic: it consumes slices of
//! `(&SpikeRaster, label)` pairs so the same loop trains on raw input
//! rasters (pre-training) and on captured latent activations (the CL
//! phase). Per-sample gradients within a batch are computed in parallel
//! with crossbeam scoped threads.

use crossbeam::thread;
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use serde::{Deserialize, Serialize};

use crate::adaptive::ThresholdMode;
use crate::bptt::{self, Gradients};
use crate::error::SnnError;
use crate::network::Network;
use crate::optimizer::Optimizer;

/// Options controlling one training phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Stage the trainable layers start after (0 = train everything).
    pub from_stage: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Worker threads for per-sample gradient computation.
    pub parallelism: usize,
    /// How firing thresholds are determined during training.
    pub threshold_mode: ThresholdMode,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            from_stage: 0,
            batch_size: 16,
            parallelism: 2,
            threshold_mode: ThresholdMode::Constant,
        }
    }
}

impl TrainOptions {
    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for a zero batch size or zero
    /// parallelism.
    pub fn validate(&self) -> Result<(), SnnError> {
        if self.batch_size == 0 {
            return Err(SnnError::InvalidConfig {
                what: "batch_size",
                detail: "must be at least 1".into(),
            });
        }
        if self.parallelism == 0 {
            return Err(SnnError::InvalidConfig {
                what: "parallelism",
                detail: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Per-epoch training summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Mean loss over all samples of the epoch.
    pub mean_loss: f32,
    /// Number of samples trained on.
    pub samples: usize,
    /// Summed spike activity of all training forward passes (for cost
    /// modeling); `None` when the epoch was empty.
    pub activity: Option<crate::network::ForwardActivity>,
}

/// Classification accuracy counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Correct predictions.
    pub correct: usize,
    /// Total predictions.
    pub total: usize,
}

impl Accuracy {
    /// Top-1 accuracy in `[0, 1]`; `0.0` when empty.
    #[must_use]
    pub fn top1(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: Accuracy) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// Computes loss and gradients for one sample.
fn sample_gradient(
    net: &Network,
    raster: &SpikeRaster,
    label: u16,
    options: &TrainOptions,
) -> Result<(f32, Gradients, crate::network::ForwardActivity), SnnError> {
    let base = net.config().lif.v_threshold;
    let schedule = options.threshold_mode.schedule_for(raster, base)?;
    let history = net.record_from(options.from_stage, raster, Some(&schedule))?;
    let activity = history.activity.clone();
    let (loss, grads) = bptt::backward(net, &history, label as usize)?;
    Ok((loss, grads, activity))
}

/// Computes the summed gradients and loss of a batch, fanning samples out
/// over `options.parallelism` threads.
fn batch_gradient(
    net: &Network,
    batch: &[(&SpikeRaster, u16)],
    options: &TrainOptions,
) -> Result<(f32, Gradients, Option<crate::network::ForwardActivity>), SnnError> {
    let workers = options.parallelism.min(batch.len()).max(1);
    if workers == 1 {
        let mut total = Gradients::zeros(net, options.from_stage)?;
        let mut loss_sum = 0.0f32;
        let mut activity: Option<crate::network::ForwardActivity> = None;
        for &(raster, label) in batch {
            let (loss, g, a) = sample_gradient(net, raster, label, options)?;
            loss_sum += loss;
            total.accumulate(&g)?;
            match activity.as_mut() {
                None => activity = Some(a),
                Some(acc) => acc.merge(&a)?,
            }
        }
        return Ok((loss_sum, total, activity));
    }

    let chunk = batch.len().div_ceil(workers);
    type Partial = (f32, Gradients, Option<crate::network::ForwardActivity>);
    let results = thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in batch.chunks(chunk) {
            handles.push(scope.spawn(move |_| -> Result<Partial, SnnError> {
                let mut total = Gradients::zeros(net, options.from_stage)?;
                let mut loss_sum = 0.0f32;
                let mut activity: Option<crate::network::ForwardActivity> = None;
                for &(raster, label) in part {
                    let (loss, g, a) = sample_gradient(net, raster, label, options)?;
                    loss_sum += loss;
                    total.accumulate(&g)?;
                    match activity.as_mut() {
                        None => activity = Some(a),
                        Some(acc) => acc.merge(&a)?,
                    }
                }
                Ok((loss_sum, total, activity))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("crossbeam scope panicked");

    let mut total = Gradients::zeros(net, options.from_stage)?;
    let mut loss_sum = 0.0f32;
    let mut activity: Option<crate::network::ForwardActivity> = None;
    for r in results {
        let (l, g, a) = r?;
        loss_sum += l;
        total.accumulate(&g)?;
        match (&mut activity, a) {
            (None, x) => activity = x,
            (Some(acc), Some(x)) => acc.merge(&x)?,
            (Some(_), None) => {}
        }
    }
    Ok((loss_sum, total, activity))
}

/// Trains one epoch over `samples` (shuffled), applying one optimizer step
/// per mini-batch with mean-reduced gradients.
///
/// # Errors
///
/// Returns [`SnnError`] on invalid options, shape mismatches or label
/// range violations.
pub fn train_epoch(
    net: &mut Network,
    samples: &[(&SpikeRaster, u16)],
    optimizer: &mut Optimizer,
    options: &TrainOptions,
    rng: &mut Rng,
) -> Result<EpochReport, SnnError> {
    options.validate()?;
    if samples.is_empty() {
        return Ok(EpochReport {
            mean_loss: 0.0,
            samples: 0,
            activity: None,
        });
    }
    let mut order: Vec<usize> = (0..samples.len()).collect();
    rng.shuffle(&mut order);

    let mut loss_sum = 0.0f32;
    let mut activity: Option<crate::network::ForwardActivity> = None;
    for batch_idx in order.chunks(options.batch_size) {
        let batch: Vec<(&SpikeRaster, u16)> = batch_idx.iter().map(|&i| samples[i]).collect();
        let (batch_loss, mut grads, batch_activity) = batch_gradient(net, &batch, options)?;
        grads.scale(1.0 / batch.len() as f32);
        optimizer.step(net, &grads)?;
        loss_sum += batch_loss;
        match (&mut activity, batch_activity) {
            (None, x) => activity = x,
            (Some(acc), Some(x)) => acc.merge(&x)?,
            (Some(_), None) => {}
        }
    }
    Ok(EpochReport {
        mean_loss: loss_sum / samples.len() as f32,
        samples: samples.len(),
        activity,
    })
}

/// Evaluates Top-1 accuracy of the network (executed from `from_stage`)
/// over labeled rasters.
///
/// # Errors
///
/// Returns [`SnnError`] on shape mismatches.
pub fn evaluate(
    net: &Network,
    samples: &[(&SpikeRaster, u16)],
    from_stage: usize,
    threshold_mode: ThresholdMode,
) -> Result<Accuracy, SnnError> {
    let base = net.config().lif.v_threshold;
    let mut acc = Accuracy::default();
    for &(raster, label) in samples {
        let schedule = threshold_mode.schedule_for(raster, base)?;
        let logits = net.forward_from(from_stage, raster, Some(&schedule))?;
        let pred = ncl_tensor::ops::argmax(&logits).expect("non-empty logits");
        acc.total += 1;
        if pred == label as usize {
            acc.correct += 1;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;

    /// Two linearly-separated "classes": spikes in the low channels vs the
    /// high channels.
    fn toy_problem(n_per_class: usize, steps: usize) -> Vec<(SpikeRaster, u16)> {
        let mut rng = Rng::seed_from_u64(31);
        let mut out = Vec::new();
        for i in 0..n_per_class * 2 {
            let label = (i % 2) as u16;
            let raster = SpikeRaster::from_fn(8, steps, |n, _| {
                let in_band = if label == 0 { n < 4 } else { n >= 4 };
                in_band && rng.bernoulli(0.5)
            });
            out.push((raster, label));
        }
        out
    }

    #[test]
    fn options_validation() {
        let mut o = TrainOptions::default();
        assert!(o.validate().is_ok());
        o.batch_size = 0;
        assert!(o.validate().is_err());
        let o = TrainOptions {
            parallelism: 0,
            ..TrainOptions::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn accuracy_counter() {
        let mut a = Accuracy {
            correct: 3,
            total: 4,
        };
        assert!((a.top1() - 0.75).abs() < 1e-12);
        a.merge(Accuracy {
            correct: 1,
            total: 4,
        });
        assert_eq!(a.correct, 4);
        assert_eq!(a.total, 8);
        assert_eq!(Accuracy::default().top1(), 0.0);
    }

    #[test]
    fn empty_dataset_is_a_noop() {
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let mut opt = Optimizer::adam(1e-3);
        let mut rng = Rng::seed_from_u64(1);
        let report =
            train_epoch(&mut net, &[], &mut opt, &TrainOptions::default(), &mut rng).unwrap();
        assert_eq!(report.samples, 0);
    }

    #[test]
    fn training_learns_toy_problem() {
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let data = toy_problem(10, 15);
        let refs: Vec<(&SpikeRaster, u16)> = data.iter().map(|(r, l)| (r, *l)).collect();
        let mut opt = Optimizer::adam(2e-3);
        let options = TrainOptions {
            batch_size: 4,
            ..TrainOptions::default()
        };
        let mut rng = Rng::seed_from_u64(7);

        let before = evaluate(&net, &refs, 0, ThresholdMode::Constant).unwrap();
        let mut losses = Vec::new();
        for _ in 0..15 {
            let r = train_epoch(&mut net, &refs, &mut opt, &options, &mut rng).unwrap();
            losses.push(r.mean_loss);
        }
        let after = evaluate(&net, &refs, 0, ThresholdMode::Constant).unwrap();
        assert!(
            after.top1() >= before.top1().max(0.9),
            "training should solve the toy problem: {} -> {}",
            before.top1(),
            after.top1()
        );
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn parallel_and_serial_training_agree() {
        // With the same shuffling RNG, 1-thread and 2-thread batch gradient
        // sums are identical up to float association; final accuracy paths
        // must both learn. We check the batch gradient itself for equality.
        let net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let data = toy_problem(6, 10);
        let refs: Vec<(&SpikeRaster, u16)> = data.iter().map(|(r, l)| (r, *l)).collect();
        let serial = TrainOptions {
            parallelism: 1,
            ..TrainOptions::default()
        };
        let parallel = TrainOptions {
            parallelism: 2,
            ..TrainOptions::default()
        };
        let (l1, g1, a1) = batch_gradient(&net, &refs, &serial).unwrap();
        let (l2, g2, a2) = batch_gradient(&net, &refs, &parallel).unwrap();
        assert_eq!(a1, a2, "activity accounting is order-independent");
        assert!((l1 - l2).abs() < 1e-4);
        let mut a = Vec::new();
        g1.visit(|s| a.extend_from_slice(s));
        let mut b = Vec::new();
        g2.visit(|s| b.extend_from_slice(s));
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn training_from_partial_stage_only_touches_learning_layers() {
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let data = toy_problem(4, 10);
        // Capture activations at stage 1, train stages 2.. on them.
        let acts: Vec<(SpikeRaster, u16)> = data
            .iter()
            .map(|(r, l)| (net.activations_at(1, r).unwrap(), *l))
            .collect();
        let refs: Vec<(&SpikeRaster, u16)> = acts.iter().map(|(r, l)| (r, *l)).collect();

        let frozen_before = net.layer(0).w_ff().clone();
        let learn_before = net.layer(1).w_ff().clone();
        let mut opt = Optimizer::adam(1e-2);
        let options = TrainOptions {
            from_stage: 1,
            ..TrainOptions::default()
        };
        let mut rng = Rng::seed_from_u64(9);
        train_epoch(&mut net, &refs, &mut opt, &options, &mut rng).unwrap();

        assert_eq!(
            net.layer(0).w_ff(),
            &frozen_before,
            "frozen layer untouched"
        );
        assert_ne!(net.layer(1).w_ff(), &learn_before, "learning layer updated");
    }

    #[test]
    fn adaptive_mode_trains_without_error() {
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let data = toy_problem(4, 10);
        let refs: Vec<(&SpikeRaster, u16)> = data.iter().map(|(r, l)| (r, *l)).collect();
        let mut opt = Optimizer::adam(1e-3);
        let options = TrainOptions {
            threshold_mode: ThresholdMode::Adaptive(crate::adaptive::AdaptivePolicy::default()),
            ..TrainOptions::default()
        };
        let mut rng = Rng::seed_from_u64(11);
        let report = train_epoch(&mut net, &refs, &mut opt, &options, &mut rng).unwrap();
        assert!(report.mean_loss.is_finite());
        let acc = evaluate(
            &net,
            &refs,
            0,
            ThresholdMode::Adaptive(crate::adaptive::AdaptivePolicy::default()),
        )
        .unwrap();
        assert!(acc.total == refs.len());
    }
}
