//! Mini-batch training and evaluation loops — the zero-allocation hot
//! path of the repo.
//!
//! The trainer is deliberately dataset-agnostic: it consumes slices of
//! `(&SpikeRaster, label)` pairs so the same loop trains on raw input
//! rasters (pre-training) and on captured latent activations (the CL
//! phase).
//!
//! # Architecture: arenas + a persistent pool
//!
//! A steady-state epoch performs **zero heap allocation per sample**:
//!
//! * every worker owns a [`WorkerArena`] — a reusable [`History`],
//!   [`ForwardScratch`], [`BpttScratch`] and threshold-schedule buffer —
//!   so recording and BPTT reuse the same memory across samples and
//!   batches;
//! * per-sample gradients land in recycled [`Gradients`] arenas
//!   (zero-filled in place, never reallocated) and are folded into one
//!   batch accumulator;
//! * with `parallelism > 1`, a pool of workers persists for the whole
//!   `train_epoch` call (one `thread::scope` per epoch, not per batch),
//!   fed from one shared task queue (any idle worker takes the oldest
//!   task); the network is shared behind an `RwLock` that the optimizer
//!   write-locks between batches;
//! * the `1/batch` mean reduction is folded into
//!   [`Optimizer::step_scaled`] (scale-at-apply), removing one O(params)
//!   sweep per batch.
//!
//! # Determinism contract
//!
//! Results are **byte-identical at every worker count**, and identical to
//! the seed-era per-sample-allocation path (kept as
//! [`train_epoch_reference`], the bit-identity oracle and benchmark
//! baseline): workers may finish out of order, but sample gradients are
//! merged strictly in batch order, and spike-activity counters are
//! integer sums, which are order-independent. `tests/train_determinism.rs`
//! and the unit tests below enforce this.

use std::sync::mpsc;

use crossbeam::thread;
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::adaptive::{ThresholdMode, ThresholdSchedule};
use crate::bptt::{self, BpttScratch, Gradients};
use crate::error::SnnError;
use crate::network::{ForwardActivity, ForwardScratch, History, Network};
use crate::optimizer::Optimizer;

/// Options controlling one training phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Stage the trainable layers start after (0 = train everything).
    pub from_stage: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Worker threads for per-sample gradient computation.
    pub parallelism: usize,
    /// How firing thresholds are determined during training.
    pub threshold_mode: ThresholdMode,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            from_stage: 0,
            batch_size: 16,
            parallelism: 2,
            threshold_mode: ThresholdMode::Constant,
        }
    }
}

impl TrainOptions {
    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for a zero batch size or zero
    /// parallelism.
    pub fn validate(&self) -> Result<(), SnnError> {
        if self.batch_size == 0 {
            return Err(SnnError::InvalidConfig {
                what: "batch_size",
                detail: "must be at least 1".into(),
            });
        }
        if self.parallelism == 0 {
            return Err(SnnError::InvalidConfig {
                what: "parallelism",
                detail: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Per-epoch training summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Mean loss over all samples of the epoch.
    pub mean_loss: f32,
    /// Number of samples trained on.
    pub samples: usize,
    /// Summed spike activity of all training forward passes (for cost
    /// modeling); `None` when the epoch was empty.
    pub activity: Option<ForwardActivity>,
}

/// Classification accuracy counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Correct predictions.
    pub correct: usize,
    /// Total predictions.
    pub total: usize,
}

impl Accuracy {
    /// Top-1 accuracy in `[0, 1]`; `0.0` when empty.
    #[must_use]
    pub fn top1(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: Accuracy) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// Per-worker compute arena: every buffer one sample's forward recording
/// and backward pass need, allocated once and reused for the lifetime of
/// the [`TrainScratch`] that owns it.
#[derive(Debug)]
struct WorkerArena {
    history: History,
    fwd: ForwardScratch,
    bptt: BpttScratch,
    schedule: ThresholdSchedule,
}

impl WorkerArena {
    fn new() -> Self {
        WorkerArena {
            history: History::empty(),
            fwd: ForwardScratch::new(),
            bptt: BpttScratch::new(),
            schedule: ThresholdSchedule::empty(),
        }
    }
}

/// Reusable training state: worker arenas, recycled gradient buffers and
/// the batch accumulator. Create one per training phase and pass it to
/// [`train_epoch_with`] across epochs — everything inside is reshaped (not
/// reallocated, once warm) on each call, so repeated epochs allocate
/// nothing. [`train_epoch`] creates a transient one for callers that do
/// not care.
#[derive(Debug, Default)]
pub struct TrainScratch {
    arenas: Vec<WorkerArena>,
    /// Recycled per-sample gradient buffers (free list).
    free_grads: Vec<Gradients>,
    /// Batch gradient accumulator.
    total: Option<Gradients>,
    /// Shuffled sample order of the current epoch.
    order: Vec<usize>,
    /// Reorder buffer: per in-flight batch position, the finished result
    /// waiting for its in-order merge.
    pending: Vec<Option<(f32, Gradients)>>,
}

impl TrainScratch {
    /// Fresh, empty scratch (buffers are created on first use).
    #[must_use]
    pub fn new() -> Self {
        TrainScratch::default()
    }

    /// Shapes the scratch for an epoch: `workers` arenas and
    /// `grad_buffers` recycled gradient buffers matching `net` trained
    /// from `from_stage`. Buffers from a different phase (other stage or
    /// architecture) are replaced; matching ones are kept as-is.
    fn prepare(
        &mut self,
        net: &Network,
        from_stage: usize,
        workers: usize,
        grad_buffers: usize,
    ) -> Result<(), SnnError> {
        if self.arenas.len() < workers {
            self.arenas.resize_with(workers, WorkerArena::new);
        }
        if !self
            .total
            .as_ref()
            .is_some_and(|t| t.matches(net, from_stage))
        {
            self.total = Some(Gradients::zeros(net, from_stage)?);
            self.free_grads.clear();
        }
        while self.free_grads.len() < grad_buffers {
            self.free_grads.push(Gradients::zeros(net, from_stage)?);
        }
        Ok(())
    }
}

/// Computes one sample's loss and gradients into the caller-owned arena
/// buffers: `grads` receives exactly the sample's gradients (it is
/// zero-filled here), `arena` provides all transient state, and the
/// sample's spike activity is folded into `activity` (integer counters,
/// so fold order cannot affect results).
fn sample_gradient_into(
    net: &Network,
    raster: &SpikeRaster,
    label: u16,
    options: &TrainOptions,
    arena: &mut WorkerArena,
    grads: &mut Gradients,
    activity: &mut Option<ForwardActivity>,
) -> Result<f32, SnnError> {
    let base = net.config().lif.v_threshold;
    options
        .threshold_mode
        .schedule_into(raster, base, &mut arena.schedule)?;
    net.record_from_into(
        options.from_stage,
        raster,
        Some(&arena.schedule),
        &mut arena.history,
        &mut arena.fwd,
    )?;
    grads.zero_fill();
    let loss = bptt::backward_into(net, &arena.history, label as usize, grads, &mut arena.bptt)?;
    match activity {
        None => *activity = Some(arena.history.activity.clone()),
        Some(acc) => acc.merge(&arena.history.activity)?,
    }
    Ok(loss)
}

/// One unit of work for a pool worker: compute the gradients of sample
/// `sample_idx` (position `pos` of the current batch) into the attached
/// recycled buffer.
struct Task {
    pos: usize,
    sample_idx: usize,
    grads: Gradients,
}

/// A worker's reply: the batch position, the sample loss and the filled
/// gradient buffer (returned for recycling) — or the first error, after
/// which the worker exits.
type TaskReply = Result<(usize, f32, Gradients), SnnError>;

/// Trains one epoch over `samples` (shuffled), applying one optimizer step
/// per mini-batch with mean-reduced gradients.
///
/// Convenience wrapper over [`train_epoch_with`] with a transient
/// [`TrainScratch`]; phase drivers that run many epochs should hold one
/// scratch across calls instead.
///
/// # Errors
///
/// Returns [`SnnError`] on invalid options, shape mismatches or label
/// range violations.
pub fn train_epoch(
    net: &mut Network,
    samples: &[(&SpikeRaster, u16)],
    optimizer: &mut Optimizer,
    options: &TrainOptions,
    rng: &mut Rng,
) -> Result<EpochReport, SnnError> {
    let mut scratch = TrainScratch::new();
    train_epoch_with(net, samples, optimizer, options, rng, &mut scratch)
}

/// Trains one epoch like [`train_epoch`], reusing a caller-owned
/// [`TrainScratch`] so that repeated epochs perform no steady-state heap
/// allocation. Results are byte-identical to [`train_epoch`] and to
/// [`train_epoch_reference`] at every `parallelism`.
///
/// # Errors
///
/// Returns [`SnnError`] on invalid options, shape mismatches or label
/// range violations. After an error the network may have received the
/// optimizer steps of already-completed batches (same as the seed path).
pub fn train_epoch_with(
    net: &mut Network,
    samples: &[(&SpikeRaster, u16)],
    optimizer: &mut Optimizer,
    options: &TrainOptions,
    rng: &mut Rng,
    scratch: &mut TrainScratch,
) -> Result<EpochReport, SnnError> {
    options.validate()?;
    if samples.is_empty() {
        return Ok(EpochReport {
            mean_loss: 0.0,
            samples: 0,
            activity: None,
        });
    }
    let workers = options.parallelism.min(samples.len());
    let max_batch = options.batch_size.min(samples.len());
    let grad_buffers = if workers <= 1 {
        1
    } else {
        (2 * workers).min(max_batch)
    };
    scratch.prepare(net, options.from_stage, workers, grad_buffers)?;

    scratch.order.clear();
    scratch.order.extend(0..samples.len());
    rng.shuffle(&mut scratch.order);

    let (loss_sum, activity) = if workers <= 1 {
        epoch_serial(net, samples, optimizer, options, scratch)?
    } else {
        epoch_pooled(net, samples, optimizer, options, scratch, workers)?
    };
    Ok(EpochReport {
        mean_loss: loss_sum / samples.len() as f32,
        samples: samples.len(),
        activity,
    })
}

/// Single-threaded epoch body: one arena, one recycled sample-gradient
/// buffer, ordered accumulation.
fn epoch_serial(
    net: &mut Network,
    samples: &[(&SpikeRaster, u16)],
    optimizer: &mut Optimizer,
    options: &TrainOptions,
    scratch: &mut TrainScratch,
) -> Result<(f32, Option<ForwardActivity>), SnnError> {
    let TrainScratch {
        arenas,
        free_grads,
        total,
        order,
        ..
    } = scratch;
    let arena = &mut arenas[0];
    let sample_grad = &mut free_grads[0];
    let total = total.as_mut().expect("prepared by train_epoch_with");

    let mut loss_sum = 0.0f32;
    let mut activity: Option<ForwardActivity> = None;
    for batch in order.chunks(options.batch_size) {
        total.zero_fill();
        let mut batch_loss = 0.0f32;
        for &i in batch {
            let (raster, label) = samples[i];
            let loss = sample_gradient_into(
                net,
                raster,
                label,
                options,
                arena,
                sample_grad,
                &mut activity,
            )?;
            batch_loss += loss;
            total.accumulate(sample_grad)?;
        }
        optimizer.step_scaled(net, total, 1.0 / batch.len() as f32)?;
        loss_sum += batch_loss;
    }
    Ok((loss_sum, activity))
}

/// Pooled epoch body: `workers` persistent threads compute sample
/// gradients into recycled buffers; the driving thread merges them
/// strictly in batch order (out-of-order completions wait in
/// `scratch.pending`), then write-locks the network for the optimizer
/// step. Byte-identical to [`epoch_serial`] by construction.
fn epoch_pooled(
    net: &mut Network,
    samples: &[(&SpikeRaster, u16)],
    optimizer: &mut Optimizer,
    options: &TrainOptions,
    scratch: &mut TrainScratch,
    workers: usize,
) -> Result<(f32, Option<ForwardActivity>), SnnError> {
    let TrainScratch {
        arenas,
        free_grads,
        total,
        order,
        pending,
    } = scratch;
    let total = total.as_mut().expect("prepared by train_epoch_with");
    let net_lock = RwLock::new(net);
    let queue = TaskQueue::new();

    let outcome = thread::scope(
        |scope| -> Result<(f32, Option<ForwardActivity>), SnnError> {
            let (reply_tx, reply_rx) = mpsc::channel::<TaskReply>();
            let mut handles = Vec::with_capacity(workers);
            for arena in arenas[..workers].iter_mut() {
                let reply_tx = reply_tx.clone();
                let (net_lock, queue) = (&net_lock, &queue);
                handles.push(scope.spawn(move |_| {
                    worker_loop(net_lock, samples, options, arena, queue, &reply_tx)
                }));
            }
            drop(reply_tx); // the driver only receives

            let driven = drive_batches(
                &net_lock, optimizer, options, order, total, free_grads, pending, &queue, &reply_rx,
            );

            // Close the task queue so every worker drains and exits, then
            // fold their per-worker activity accumulators (integer counters:
            // fold order cannot affect the result).
            queue.close();
            let mut activity: Option<ForwardActivity> = None;
            for handle in handles {
                if let Some(worker_activity) = handle.join().expect("training worker panicked") {
                    match &mut activity {
                        None => activity = Some(worker_activity),
                        Some(acc) => acc.merge(&worker_activity)?,
                    }
                }
            }
            Ok((driven?, activity))
        },
    )
    .expect("training pool scope panicked");
    outcome
}

/// The per-batch dispatch/merge loop of the pooled epoch.
#[allow(clippy::too_many_arguments)]
fn drive_batches(
    net_lock: &RwLock<&mut Network>,
    optimizer: &mut Optimizer,
    options: &TrainOptions,
    order: &[usize],
    total: &mut Gradients,
    free_grads: &mut Vec<Gradients>,
    pending: &mut Vec<Option<(f32, Gradients)>>,
    queue: &TaskQueue,
    reply_rx: &mpsc::Receiver<TaskReply>,
) -> Result<f32, SnnError> {
    let mut loss_sum = 0.0f32;
    for batch in order.chunks(options.batch_size) {
        total.zero_fill();
        pending.clear();
        pending.resize_with(batch.len(), || None);
        let mut dispatched = 0usize;
        let mut next_merge = 0usize;
        let mut batch_loss = 0.0f32;

        while next_merge < batch.len() {
            // Dispatch while recycled buffers are available; backpressure
            // otherwise (in-flight tasks hold the missing buffers).
            while dispatched < batch.len() {
                let Some(grads) = free_grads.pop() else {
                    break;
                };
                queue.push(Task {
                    pos: dispatched,
                    sample_idx: batch[dispatched],
                    grads,
                });
                dispatched += 1;
            }
            let reply = reply_rx.recv().map_err(|_| pool_hangup())?;
            let (pos, loss, grads) = reply?;
            pending[pos] = Some((loss, grads));
            // Merge every result that is next in batch order.
            while let Some(slot) = pending.get_mut(next_merge).and_then(Option::take) {
                let (loss, grads) = slot;
                batch_loss += loss;
                total.accumulate(&grads)?;
                free_grads.push(grads);
                next_merge += 1;
            }
        }

        let mut net = net_lock.write();
        optimizer.step_scaled(&mut net, total, 1.0 / batch.len() as f32)?;
        drop(net);
        loss_sum += batch_loss;
    }
    Ok(loss_sum)
}

/// Shared work queue the pool workers pull from: any idle worker takes
/// the oldest queued task (no per-worker pinning, so a slow worker never
/// blocks work that an idle one could do). Determinism is unaffected —
/// the driver merges replies strictly in batch order regardless of which
/// worker computed them.
struct TaskQueue {
    state: std::sync::Mutex<TaskQueueState>,
    ready: std::sync::Condvar,
}

struct TaskQueueState {
    tasks: std::collections::VecDeque<Task>,
    closed: bool,
}

impl TaskQueue {
    fn new() -> Self {
        TaskQueue {
            state: std::sync::Mutex::new(TaskQueueState {
                tasks: std::collections::VecDeque::new(),
                closed: false,
            }),
            ready: std::sync::Condvar::new(),
        }
    }

    fn push(&self, task: Task) {
        self.state
            .lock()
            .expect("task queue poisoned")
            .tasks
            .push_back(task);
        self.ready.notify_one();
    }

    /// Closes the queue and discards anything still enqueued (only the
    /// abort path leaves tasks behind); blocked workers wake and exit.
    fn close(&self) {
        let mut state = self.state.lock().expect("task queue poisoned");
        state.closed = true;
        state.tasks.clear();
        drop(state);
        self.ready.notify_all();
    }

    /// Blocks for the next task; `None` once the queue is closed.
    fn pop(&self) -> Option<Task> {
        let mut state = self.state.lock().expect("task queue poisoned");
        loop {
            if let Some(task) = state.tasks.pop_front() {
                return Some(task);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("task queue poisoned");
        }
    }
}

/// A pool worker: pulls tasks from the shared queue until it closes,
/// computing each sample under a read lock of the shared network (the
/// driver write-locks it only between batches, when no tasks are in
/// flight). Returns the worker's accumulated spike activity. On the
/// first error the worker reports it through the reply channel and
/// exits; its remaining queued work is picked up by the other workers.
fn worker_loop(
    net_lock: &RwLock<&mut Network>,
    samples: &[(&SpikeRaster, u16)],
    options: &TrainOptions,
    arena: &mut WorkerArena,
    queue: &TaskQueue,
    reply_tx: &mpsc::Sender<TaskReply>,
) -> Option<ForwardActivity> {
    let mut activity: Option<ForwardActivity> = None;
    while let Some(mut task) = queue.pop() {
        let guard = net_lock.read();
        let net: &Network = &guard;
        let (raster, label) = samples[task.sample_idx];
        let outcome = sample_gradient_into(
            net,
            raster,
            label,
            options,
            arena,
            &mut task.grads,
            &mut activity,
        );
        drop(guard);
        match outcome {
            Ok(loss) => {
                if reply_tx.send(Ok((task.pos, loss, task.grads))).is_err() {
                    break; // driver gone (epoch aborted)
                }
            }
            Err(e) => {
                let _ = reply_tx.send(Err(e));
                break;
            }
        }
    }
    activity
}

/// Error for the (should-be-impossible) case of every worker exiting
/// without reporting an error first.
fn pool_hangup() -> SnnError {
    SnnError::InvalidConfig {
        what: "train pool",
        detail: "all workers exited before the batch completed".into(),
    }
}

/// Seed-era per-sample gradient: a fresh threshold schedule, a fresh
/// `History` and a fresh weight-shaped `Gradients` per call.
fn reference_sample_gradient(
    net: &Network,
    raster: &SpikeRaster,
    label: u16,
    options: &TrainOptions,
) -> Result<(f32, Gradients, ForwardActivity), SnnError> {
    let base = net.config().lif.v_threshold;
    let schedule = options.threshold_mode.schedule_for(raster, base)?;
    let history = net.record_from(options.from_stage, raster, Some(&schedule))?;
    let activity = history.activity.clone();
    let (loss, grads) = bptt::backward(net, &history, label as usize)?;
    Ok((loss, grads, activity))
}

/// Seed-era batch gradient: with `parallelism > 1` the batch is chunked
/// and a **fresh crossbeam thread scope is spawned for this one batch**
/// (the per-batch spawn the persistent pool eliminates); each chunk
/// dense-accumulates per-sample `Gradients` allocations.
fn reference_batch_gradient(
    net: &Network,
    batch: &[(&SpikeRaster, u16)],
    options: &TrainOptions,
) -> Result<(f32, Gradients, Option<ForwardActivity>), SnnError> {
    type Partial = (f32, Gradients, Option<ForwardActivity>);
    let accumulate_chunk = |part: &[(&SpikeRaster, u16)]| -> Result<Partial, SnnError> {
        let mut total = Gradients::zeros(net, options.from_stage)?;
        let mut loss_sum = 0.0f32;
        let mut activity: Option<ForwardActivity> = None;
        for &(raster, label) in part {
            let (loss, grads, sample_activity) =
                reference_sample_gradient(net, raster, label, options)?;
            loss_sum += loss;
            total.accumulate(&grads)?;
            match &mut activity {
                None => activity = Some(sample_activity),
                Some(acc) => acc.merge(&sample_activity)?,
            }
        }
        Ok((loss_sum, total, activity))
    };

    let workers = options.parallelism.min(batch.len()).max(1);
    if workers == 1 {
        return accumulate_chunk(batch);
    }
    let chunk = batch.len().div_ceil(workers);
    let results = thread::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks(chunk)
            .map(|part| scope.spawn(move |_| accumulate_chunk(part)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("crossbeam scope panicked");

    let mut total = Gradients::zeros(net, options.from_stage)?;
    let mut loss_sum = 0.0f32;
    let mut activity: Option<ForwardActivity> = None;
    for result in results {
        let (loss, grads, chunk_activity) = result?;
        loss_sum += loss;
        total.accumulate(&grads)?;
        match (&mut activity, chunk_activity) {
            (None, x) => activity = x,
            (Some(acc), Some(x)) => acc.merge(&x)?,
            (Some(_), None) => {}
        }
    }
    Ok((loss_sum, total, activity))
}

/// The seed-era training loop, preserved verbatim in behavior: a fresh
/// `Gradients::zeros`, `History` and threshold schedule per sample, a
/// dense O(params) `accumulate` per sample, an O(params) `scale` sweep
/// per batch, and (with `parallelism > 1`) a crossbeam thread scope
/// **re-spawned for every batch**.
///
/// Kept for two jobs: at `parallelism = 1` it is the **bit-identity
/// oracle** the arena/pool path is tested against (byte-identical trained
/// weights at every pool worker count), and at the configured parallelism
/// it is the **pre-PR baseline** `benches/train.rs` and `ncl-train-bench`
/// measure the zero-allocation path's speedup over. (The seed's
/// `parallelism > 1` chunking groups float sums per chunk, so only its
/// serial form is bitwise comparable — that matches the seed, whose
/// parallel path was tolerance-equal, not bit-equal, to serial.)
///
/// # Errors
///
/// Returns [`SnnError`] on invalid options, shape mismatches or label
/// range violations.
pub fn train_epoch_reference(
    net: &mut Network,
    samples: &[(&SpikeRaster, u16)],
    optimizer: &mut Optimizer,
    options: &TrainOptions,
    rng: &mut Rng,
) -> Result<EpochReport, SnnError> {
    options.validate()?;
    if samples.is_empty() {
        return Ok(EpochReport {
            mean_loss: 0.0,
            samples: 0,
            activity: None,
        });
    }
    let mut order: Vec<usize> = (0..samples.len()).collect();
    rng.shuffle(&mut order);

    let mut loss_sum = 0.0f32;
    let mut activity: Option<ForwardActivity> = None;
    for batch_idx in order.chunks(options.batch_size) {
        let batch: Vec<(&SpikeRaster, u16)> = batch_idx.iter().map(|&i| samples[i]).collect();
        let (batch_loss, mut grads, batch_activity) =
            reference_batch_gradient(net, &batch, options)?;
        grads.scale(1.0 / batch.len() as f32);
        optimizer.step(net, &grads)?;
        loss_sum += batch_loss;
        match (&mut activity, batch_activity) {
            (None, x) => activity = x,
            (Some(acc), Some(x)) => acc.merge(&x)?,
            (Some(_), None) => {}
        }
    }
    Ok(EpochReport {
        mean_loss: loss_sum / samples.len() as f32,
        samples: samples.len(),
        activity,
    })
}

/// Summary of one continual-learning increment run by
/// [`IncrementalTrainer::run_increment`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementOutcome {
    /// Mean loss of each epoch, in order.
    pub epoch_losses: Vec<f32>,
    /// Samples trained on per epoch.
    pub samples: usize,
    /// Summed spike activity of every training forward pass across all
    /// epochs (`None` for an empty increment).
    pub activity: Option<ForwardActivity>,
}

/// A trainer that persists across continual-learning increments.
///
/// An online system runs many increments over the lifetime of one
/// process; allocating fresh worker arenas for each would reintroduce the
/// per-phase allocation cost the [`TrainScratch`] rework removed. This
/// wrapper owns one scratch and reuses it for every increment (arenas are
/// reshaped, not reallocated, when the stage or architecture changes),
/// while the *optimizer* is fresh per increment — Alg. 1 starts every CL
/// phase from a clean Adam state at the reduced learning rate, and
/// carrying first/second-moment estimates across increments would leak
/// one increment's gradient history into the next.
///
/// Results are byte-identical to running the same epochs through
/// [`train_epoch_with`] with a fresh scratch (the unit tests below pin
/// this), so increments remain worker-count invariant.
#[derive(Debug, Default)]
pub struct IncrementalTrainer {
    scratch: TrainScratch,
    increments: u64,
    /// Per-epoch wall-time histogram (`snn_train_epoch_us`), when an
    /// observability registry is attached.
    epoch_us: Option<std::sync::Arc<ncl_obs::Log2Histogram>>,
    /// Total epochs counter (`snn_train_epochs_total`), when attached.
    epochs_total: Option<std::sync::Arc<ncl_obs::Counter>>,
}

impl IncrementalTrainer {
    /// Fresh trainer (arenas are created on first use).
    #[must_use]
    pub fn new() -> Self {
        IncrementalTrainer::default()
    }

    /// Registers this trainer's per-epoch timing series in `registry`.
    /// Instrumentation observes wall time only — it never touches the
    /// numeric path, so trained weights stay bit-identical with or
    /// without it.
    pub fn attach_obs(&mut self, registry: &ncl_obs::Registry) {
        self.epoch_us = Some(registry.histogram(
            "snn_train_epoch_us",
            "Wall time of one training epoch in microseconds.",
        ));
        self.epochs_total = Some(registry.counter(
            "snn_train_epochs_total",
            "Training epochs run across all increments.",
        ));
    }

    /// Number of increments run so far.
    #[must_use]
    pub fn increments(&self) -> u64 {
        self.increments
    }

    /// Runs one increment: `epochs` epochs over `samples` with a fresh
    /// Adam optimizer at `lr`, reusing this trainer's arenas.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError`] on invalid options, shape mismatches or label
    /// range violations; the increment counter only advances on success.
    pub fn run_increment(
        &mut self,
        net: &mut Network,
        samples: &[(&SpikeRaster, u16)],
        lr: f32,
        epochs: usize,
        options: &TrainOptions,
        rng: &mut Rng,
    ) -> Result<IncrementOutcome, SnnError> {
        let mut optimizer = Optimizer::adam(lr);
        let mut epoch_losses = Vec::with_capacity(epochs);
        let mut activity: Option<ForwardActivity> = None;
        for _ in 0..epochs {
            let epoch_started = std::time::Instant::now();
            let report = train_epoch_with(
                net,
                samples,
                &mut optimizer,
                options,
                rng,
                &mut self.scratch,
            )?;
            if let Some(hist) = &self.epoch_us {
                hist.record(epoch_started.elapsed().as_micros() as u64);
            }
            if let Some(total) = &self.epochs_total {
                total.inc();
            }
            epoch_losses.push(report.mean_loss);
            match (&mut activity, report.activity) {
                (acc @ None, fresh) => *acc = fresh,
                (Some(acc), Some(fresh)) => acc.merge(&fresh)?,
                (Some(_), None) => {}
            }
        }
        self.increments += 1;
        Ok(IncrementOutcome {
            epoch_losses,
            samples: samples.len(),
            activity,
        })
    }
}

/// Evaluates Top-1 accuracy of the network (executed from `from_stage`)
/// over labeled rasters.
///
/// # Errors
///
/// Returns [`SnnError`] on shape mismatches.
pub fn evaluate(
    net: &Network,
    samples: &[(&SpikeRaster, u16)],
    from_stage: usize,
    threshold_mode: ThresholdMode,
) -> Result<Accuracy, SnnError> {
    let base = net.config().lif.v_threshold;
    let mut schedule = ThresholdSchedule::empty();
    let mut acc = Accuracy::default();
    for &(raster, label) in samples {
        threshold_mode.schedule_into(raster, base, &mut schedule)?;
        let logits = net.forward_from(from_stage, raster, Some(&schedule))?;
        let pred = ncl_tensor::ops::argmax(&logits).expect("non-empty logits");
        acc.total += 1;
        if pred == label as usize {
            acc.correct += 1;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;

    /// Two linearly-separated "classes": spikes in the low channels vs the
    /// high channels.
    fn toy_problem(n_per_class: usize, steps: usize) -> Vec<(SpikeRaster, u16)> {
        let mut rng = Rng::seed_from_u64(31);
        let mut out = Vec::new();
        for i in 0..n_per_class * 2 {
            let label = (i % 2) as u16;
            let raster = SpikeRaster::from_fn(8, steps, |n, _| {
                let in_band = if label == 0 { n < 4 } else { n >= 4 };
                in_band && rng.bernoulli(0.5)
            });
            out.push((raster, label));
        }
        out
    }

    fn toy_refs(data: &[(SpikeRaster, u16)]) -> Vec<(&SpikeRaster, u16)> {
        data.iter().map(|(r, l)| (r, *l)).collect()
    }

    #[test]
    fn options_validation() {
        let mut o = TrainOptions::default();
        assert!(o.validate().is_ok());
        o.batch_size = 0;
        assert!(o.validate().is_err());
        let o = TrainOptions {
            parallelism: 0,
            ..TrainOptions::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn accuracy_counter() {
        let mut a = Accuracy {
            correct: 3,
            total: 4,
        };
        assert!((a.top1() - 0.75).abs() < 1e-12);
        a.merge(Accuracy {
            correct: 1,
            total: 4,
        });
        assert_eq!(a.correct, 4);
        assert_eq!(a.total, 8);
        assert_eq!(Accuracy::default().top1(), 0.0);
    }

    #[test]
    fn empty_dataset_is_a_noop() {
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let mut opt = Optimizer::adam(1e-3);
        let mut rng = Rng::seed_from_u64(1);
        let report =
            train_epoch(&mut net, &[], &mut opt, &TrainOptions::default(), &mut rng).unwrap();
        assert_eq!(report.samples, 0);
    }

    #[test]
    fn training_learns_toy_problem() {
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let data = toy_problem(10, 15);
        let refs = toy_refs(&data);
        let mut opt = Optimizer::adam(2e-3);
        let options = TrainOptions {
            batch_size: 4,
            ..TrainOptions::default()
        };
        let mut rng = Rng::seed_from_u64(7);

        let before = evaluate(&net, &refs, 0, ThresholdMode::Constant).unwrap();
        let mut losses = Vec::new();
        for _ in 0..15 {
            let r = train_epoch(&mut net, &refs, &mut opt, &options, &mut rng).unwrap();
            losses.push(r.mean_loss);
        }
        let after = evaluate(&net, &refs, 0, ThresholdMode::Constant).unwrap();
        assert!(
            after.top1() >= before.top1().max(0.9),
            "training should solve the toy problem: {} -> {}",
            before.top1(),
            after.top1()
        );
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    /// The central determinism contract: the arena/pool path produces
    /// byte-identical trained weights and reports to the seed-era
    /// per-sample-allocation reference, at every worker count.
    #[test]
    fn pool_is_bit_identical_to_reference_at_any_worker_count() {
        let data = toy_problem(8, 12);
        let refs = toy_refs(&data);
        let base = Network::new(NetworkConfig::tiny(8, 2)).unwrap();

        let mut reference_net = base.clone();
        let mut reference_opt = Optimizer::adam(2e-3);
        let mut reference_rng = Rng::seed_from_u64(41);
        let mut reference_reports = Vec::new();
        for _ in 0..3 {
            reference_reports.push(
                train_epoch_reference(
                    &mut reference_net,
                    &refs,
                    &mut reference_opt,
                    &TrainOptions {
                        batch_size: 5,
                        parallelism: 1,
                        ..TrainOptions::default()
                    },
                    &mut reference_rng,
                )
                .unwrap(),
            );
        }

        for workers in [1usize, 2, 4] {
            let mut net = base.clone();
            let mut opt = Optimizer::adam(2e-3);
            let mut rng = Rng::seed_from_u64(41);
            let mut scratch = TrainScratch::new();
            let options = TrainOptions {
                batch_size: 5,
                parallelism: workers,
                ..TrainOptions::default()
            };
            let mut reports = Vec::new();
            for _ in 0..3 {
                reports.push(
                    train_epoch_with(&mut net, &refs, &mut opt, &options, &mut rng, &mut scratch)
                        .unwrap(),
                );
            }
            assert_eq!(
                net, reference_net,
                "{workers}-worker weights must be byte-identical to the reference path"
            );
            assert_eq!(
                reports, reference_reports,
                "{workers}-worker reports must equal the reference path"
            );
        }
    }

    /// A scratch survives a phase switch (different `from_stage`): buffers
    /// are re-shaped, results stay correct.
    #[test]
    fn scratch_reuse_across_phases() {
        let data = toy_problem(4, 10);
        let refs = toy_refs(&data);
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let mut scratch = TrainScratch::new();

        let mut opt = Optimizer::adam(1e-3);
        let mut rng = Rng::seed_from_u64(3);
        let options = TrainOptions::default();
        train_epoch_with(&mut net, &refs, &mut opt, &options, &mut rng, &mut scratch).unwrap();

        // Stage-1 phase on captured activations, same scratch.
        let acts: Vec<(SpikeRaster, u16)> = data
            .iter()
            .map(|(r, l)| (net.activations_at(1, r).unwrap(), *l))
            .collect();
        let act_refs = toy_refs(&acts);
        let frozen_before = net.layer(0).w_ff().clone();
        let mut opt1 = Optimizer::adam(1e-2);
        let options1 = TrainOptions {
            from_stage: 1,
            ..TrainOptions::default()
        };
        let report = train_epoch_with(
            &mut net,
            &act_refs,
            &mut opt1,
            &options1,
            &mut rng,
            &mut scratch,
        )
        .unwrap();
        assert!(report.mean_loss.is_finite());
        assert_eq!(
            net.layer(0).w_ff(),
            &frozen_before,
            "frozen layer untouched"
        );
    }

    #[test]
    fn incremental_trainer_matches_fresh_scratch_runs_bit_exactly() {
        let data = toy_problem(4, 10);
        let refs = toy_refs(&data);
        let options = TrainOptions {
            parallelism: 2,
            batch_size: 4,
            ..TrainOptions::default()
        };

        // Two increments through one IncrementalTrainer (arenas reused)...
        let mut incremental = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let mut trainer = IncrementalTrainer::new();
        let mut rng = Rng::seed_from_u64(17);
        let a = trainer
            .run_increment(&mut incremental, &refs, 1e-3, 3, &options, &mut rng)
            .unwrap();
        let b = trainer
            .run_increment(&mut incremental, &refs, 5e-4, 2, &options, &mut rng)
            .unwrap();
        assert_eq!(trainer.increments(), 2);
        assert_eq!(a.epoch_losses.len(), 3);
        assert_eq!(b.epoch_losses.len(), 2);
        assert_eq!(a.samples, refs.len());
        assert!(a.activity.is_some());

        // ...must be byte-identical to fresh optimizer + fresh scratch
        // epoch loops (the increment abstraction adds no drift).
        let mut manual = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let mut rng = Rng::seed_from_u64(17);
        for (lr, epochs) in [(1e-3, 3), (5e-4, 2)] {
            let mut opt = Optimizer::adam(lr);
            let mut scratch = TrainScratch::new();
            for _ in 0..epochs {
                train_epoch_with(
                    &mut manual,
                    &refs,
                    &mut opt,
                    &options,
                    &mut rng,
                    &mut scratch,
                )
                .unwrap();
            }
        }
        assert_eq!(incremental, manual);
    }

    #[test]
    fn incremental_trainer_reuses_arenas_across_stage_switches() {
        // Pretrain from stage 0, then a CL increment from stage 1 on
        // captured activations — one trainer carries both.
        let data = toy_problem(4, 10);
        let refs = toy_refs(&data);
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let mut trainer = IncrementalTrainer::new();
        let mut rng = Rng::seed_from_u64(23);
        trainer
            .run_increment(&mut net, &refs, 1e-3, 2, &TrainOptions::default(), &mut rng)
            .unwrap();
        let acts: Vec<(SpikeRaster, u16)> = data
            .iter()
            .map(|(r, l)| (net.activations_at(1, r).unwrap(), *l))
            .collect();
        let act_refs = toy_refs(&acts);
        let frozen_before = net.layer(0).w_ff().clone();
        let stage1 = TrainOptions {
            from_stage: 1,
            ..TrainOptions::default()
        };
        let outcome = trainer
            .run_increment(&mut net, &act_refs, 1e-4, 2, &stage1, &mut rng)
            .unwrap();
        assert!(outcome.epoch_losses.iter().all(|l| l.is_finite()));
        assert_eq!(net.layer(0).w_ff(), &frozen_before, "frozen layer intact");
        assert_eq!(trainer.increments(), 2);
    }

    #[test]
    fn pool_surfaces_per_sample_errors() {
        // A raster with the wrong width fails inside a worker; the error
        // must propagate out of the epoch instead of hanging the pool.
        let good = toy_problem(4, 10);
        let bad = SpikeRaster::new(5, 10);
        let mut refs = toy_refs(&good);
        refs.push((&bad, 0));
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let mut opt = Optimizer::adam(1e-3);
        let mut rng = Rng::seed_from_u64(9);
        let options = TrainOptions {
            parallelism: 2,
            batch_size: 4,
            ..TrainOptions::default()
        };
        assert!(train_epoch(&mut net, &refs, &mut opt, &options, &mut rng).is_err());
    }

    #[test]
    fn training_from_partial_stage_only_touches_learning_layers() {
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let data = toy_problem(4, 10);
        // Capture activations at stage 1, train stages 2.. on them.
        let acts: Vec<(SpikeRaster, u16)> = data
            .iter()
            .map(|(r, l)| (net.activations_at(1, r).unwrap(), *l))
            .collect();
        let refs = toy_refs(&acts);

        let frozen_before = net.layer(0).w_ff().clone();
        let learn_before = net.layer(1).w_ff().clone();
        let mut opt = Optimizer::adam(1e-2);
        let options = TrainOptions {
            from_stage: 1,
            ..TrainOptions::default()
        };
        let mut rng = Rng::seed_from_u64(9);
        train_epoch(&mut net, &refs, &mut opt, &options, &mut rng).unwrap();

        assert_eq!(
            net.layer(0).w_ff(),
            &frozen_before,
            "frozen layer untouched"
        );
        assert_ne!(net.layer(1).w_ff(), &learn_before, "learning layer updated");
    }

    #[test]
    fn adaptive_mode_trains_without_error() {
        let mut net = Network::new(NetworkConfig::tiny(8, 2)).unwrap();
        let data = toy_problem(4, 10);
        let refs = toy_refs(&data);
        let mut opt = Optimizer::adam(1e-3);
        let options = TrainOptions {
            threshold_mode: ThresholdMode::Adaptive(crate::adaptive::AdaptivePolicy::default()),
            ..TrainOptions::default()
        };
        let mut rng = Rng::seed_from_u64(11);
        let report = train_epoch(&mut net, &refs, &mut opt, &options, &mut rng).unwrap();
        assert!(report.mean_loss.is_finite());
        let acc = evaluate(
            &net,
            &refs,
            0,
            ThresholdMode::Adaptive(crate::adaptive::AdaptivePolicy::default()),
        )
        .unwrap();
        assert!(acc.total == refs.len());
    }
}
