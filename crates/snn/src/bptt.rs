//! Backpropagation through time with surrogate gradients.
//!
//! Given a recorded [`History`], [`backward`] computes exact gradients of
//! the softmax cross-entropy loss with respect to every trainable
//! parameter, under the standard surrogate-gradient conventions:
//!
//! * the spike non-linearity's derivative is replaced by the fast sigmoid
//!   (see [`crate::surrogate::FastSigmoid`]);
//! * the hard reset is *detached*: the carry factor `β(1 − s[t])` is
//!   treated as a constant with respect to `s[t]`.
//!
//! The recurrent credit assignment follows the forward equations exactly
//! (same-timestep feed-forward cascade, one-step-delayed recurrence); a
//! finite-difference check in the tests validates the implementation
//! end-to-end on the *smoothed* network surrogate.

use ncl_tensor::{ops, Matrix};

use crate::error::SnnError;
use crate::loss;
use crate::network::{History, Network};

/// Gradients of one hidden layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGradients {
    /// Feed-forward weight gradients (`inputs x neurons`).
    pub w_ff: Matrix,
    /// Recurrent weight gradients, if the layer is recurrent.
    pub w_rec: Option<Matrix>,
    /// Bias gradients.
    pub bias: Vec<f32>,
}

/// Gradients of the trainable portion of a network (stages
/// `from_stage+1..` plus the readout).
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// Stage the gradients start after.
    pub from_stage: usize,
    /// Hidden-layer gradients, ascending stage order.
    pub layers: Vec<LayerGradients>,
    /// Readout weight gradients (`inputs x outputs`).
    pub readout_w: Matrix,
    /// Readout bias gradients.
    pub readout_bias: Vec<f32>,
}

impl Gradients {
    /// Zero gradients matching the trainable portion of `net`.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidStage`] for a bad stage.
    pub fn zeros(net: &Network, from_stage: usize) -> Result<Self, SnnError> {
        net.config().stage_width(from_stage)?;
        let layers = (from_stage..net.layers())
            .map(|li| {
                let l = net.layer(li);
                LayerGradients {
                    w_ff: Matrix::zeros(l.w_ff().rows(), l.w_ff().cols()),
                    w_rec: l.w_rec().map(|w| Matrix::zeros(w.rows(), w.cols())),
                    bias: vec![0.0; l.neurons()],
                }
            })
            .collect();
        Ok(Gradients {
            from_stage,
            layers,
            readout_w: Matrix::zeros(net.readout().w().rows(), net.readout().w().cols()),
            readout_bias: vec![0.0; net.readout().outputs()],
        })
    }

    /// Accumulates another gradient set (`self += other`).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if shapes or stages differ.
    pub fn accumulate(&mut self, other: &Gradients) -> Result<(), SnnError> {
        if self.from_stage != other.from_stage || self.layers.len() != other.layers.len() {
            return Err(SnnError::ShapeMismatch {
                op: "Gradients::accumulate",
                expected: self.layers.len(),
                actual: other.layers.len(),
            });
        }
        for (a, b) in self.layers.iter_mut().zip(other.layers.iter()) {
            ops::axpy(1.0, b.w_ff.as_slice(), a.w_ff.as_mut_slice())?;
            match (&mut a.w_rec, &b.w_rec) {
                (Some(ar), Some(br)) => ops::axpy(1.0, br.as_slice(), ar.as_mut_slice())?,
                (None, None) => {}
                _ => {
                    return Err(SnnError::ShapeMismatch {
                        op: "Gradients::accumulate",
                        expected: 1,
                        actual: 0,
                    })
                }
            }
            ops::axpy(1.0, &b.bias, &mut a.bias)?;
        }
        ops::axpy(
            1.0,
            other.readout_w.as_slice(),
            self.readout_w.as_mut_slice(),
        )?;
        ops::axpy(1.0, &other.readout_bias, &mut self.readout_bias)?;
        Ok(())
    }

    /// Resets every gradient to zero in place, reusing the allocation —
    /// the arena counterpart of [`Gradients::zeros`] (a freshly-zeroed
    /// arena and a fresh `zeros` allocation are indistinguishable to every
    /// consumer, which is what keeps the arena path bit-identical).
    pub fn zero_fill(&mut self) {
        for l in &mut self.layers {
            l.w_ff.fill_zero();
            if let Some(w) = &mut l.w_rec {
                w.fill_zero();
            }
            l.bias.iter_mut().for_each(|v| *v = 0.0);
        }
        self.readout_w.fill_zero();
        self.readout_bias.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Whether this gradient set matches the trainable portion of `net`
    /// from `from_stage` (shape and stage), i.e. whether it can be reused
    /// as an accumulator for that training phase.
    #[must_use]
    pub fn matches(&self, net: &Network, from_stage: usize) -> bool {
        if self.from_stage != from_stage
            || from_stage > net.layers()
            || self.layers.len() != net.layers() - from_stage
        {
            return false;
        }
        let layers_match = self.layers.iter().enumerate().all(|(i, lg)| {
            let l = net.layer(from_stage + i);
            let rec_match = match (&lg.w_rec, l.w_rec()) {
                (Some(a), Some(b)) => a.rows() == b.rows() && a.cols() == b.cols(),
                (None, None) => true,
                _ => false,
            };
            lg.w_ff.rows() == l.w_ff().rows()
                && lg.w_ff.cols() == l.w_ff().cols()
                && rec_match
                && lg.bias.len() == l.neurons()
        });
        layers_match
            && self.readout_w.rows() == net.readout().w().rows()
            && self.readout_w.cols() == net.readout().w().cols()
            && self.readout_bias.len() == net.readout().outputs()
    }

    /// Scales every gradient by `factor` (e.g. `1/batch`).
    pub fn scale(&mut self, factor: f32) {
        for l in &mut self.layers {
            l.w_ff.map_inplace(|v| v * factor);
            if let Some(w) = &mut l.w_rec {
                w.map_inplace(|v| v * factor);
            }
            l.bias.iter_mut().for_each(|v| *v *= factor);
        }
        self.readout_w.map_inplace(|v| v * factor);
        self.readout_bias.iter_mut().for_each(|v| *v *= factor);
    }

    /// Visits every gradient slice in the same fixed order as
    /// [`Network::visit_trainable_mut`]. The slices borrow from `self`, so
    /// callers may collect them (the optimizer does, to walk gradients and
    /// parameters in lockstep without copying).
    pub fn visit<'a>(&'a self, mut f: impl FnMut(&'a [f32])) {
        for l in &self.layers {
            f(l.w_ff.as_slice());
            if let Some(w) = &l.w_rec {
                f(w.as_slice());
            }
            f(&l.bias);
        }
        f(self.readout_w.as_slice());
        f(&self.readout_bias);
    }

    /// Global L2 norm across all gradients (diagnostics, clipping).
    #[must_use]
    pub fn l2_norm(&self) -> f32 {
        let mut sq = 0.0f64;
        self.visit(|s| sq += s.iter().map(|v| (*v as f64) * (*v as f64)).sum::<f64>());
        sq.sqrt() as f32
    }
}

/// Reusable scratch vectors of the backward pass: the time-major
/// spike-credit planes (`g_s`) and every per-timestep row buffer. One
/// scratch per training worker lives for a whole epoch, so the
/// steady-state backward path performs no heap allocation per sample —
/// at paper scale the `g_s` planes alone are several hundred kilobytes
/// per sample on the allocating path.
#[derive(Debug, Default, Clone)]
pub struct BpttScratch {
    /// Ping/pong spike-credit planes (`g_s`, time-major `[t * n + i]`).
    gs_a: Vec<f32>,
    gs_b: Vec<f32>,
    /// Loss gradient w.r.t. the logits.
    dlogits: Vec<f32>,
    /// Readout membrane credit per timestep.
    du: Vec<f32>,
    /// `W · du` row buffer.
    gs_row: Vec<f32>,
    /// Next-timestep membrane credit (`g_v[t+1]`).
    gv_next: Vec<f32>,
    /// Input-current credit (`dI[t]`).
    di: Vec<f32>,
    /// `W_rec · dI` row buffer.
    rec_row: Vec<f32>,
    /// `W_ff · dI` row buffer.
    below_row: Vec<f32>,
    /// Per-timestep reset-carry factors (`0` for fired neurons, `β`
    /// otherwise), materialized so the credit loop is branchless and
    /// autovectorizes (its divisions dominate backward at small widths).
    carry_row: Vec<f32>,
}

impl BpttScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        BpttScratch::default()
    }
}

/// Clears `buf` and resizes it to `len` zeros, reusing the allocation.
#[inline]
fn zeroed(buf: &mut Vec<f32>, len: usize) {
    buf.clear();
    buf.resize(len, 0.0);
}

/// Runs the backward pass for one recorded sample, returning the loss and
/// the gradients of all trainable parameters.
///
/// This is a thin wrapper over [`backward_into`] with a freshly-zeroed
/// accumulator and transient scratch; the training hot path calls
/// [`backward_into`] directly with reused arenas.
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if `target` is out of range or the
/// history does not match the network.
pub fn backward(
    net: &Network,
    history: &History,
    target: usize,
) -> Result<(f32, Gradients), SnnError> {
    let mut grads = Gradients::zeros(net, history.from_stage)?;
    let mut scratch = BpttScratch::new();
    let loss = backward_into(net, history, target, &mut grads, &mut scratch)?;
    Ok((loss, grads))
}

/// Runs the backward pass for one recorded sample, scattering every
/// parameter gradient **into** the caller-owned accumulator `grads`
/// (`grads += dL/dθ`) and returning the loss.
///
/// The per-sample parameter updates are sparse `rows_add`s on active rows
/// (driven directly by the raster's packed `step_words`, no index
/// gathering), so accumulating into a shared arena costs O(activity) per
/// sample instead of the O(params) `Gradients::zeros` + dense
/// `accumulate` of the allocating path. On a zeroed accumulator the
/// result is bit-identical to [`backward`] — it *is* [`backward`]'s
/// implementation.
///
/// `scratch` provides the BPTT working vectors and is reused across
/// calls; contents are overwritten.
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if `target` is out of range, the
/// history does not match the network, or `grads` was built for a
/// different stage split or architecture.
pub fn backward_into(
    net: &Network,
    history: &History,
    target: usize,
    grads: &mut Gradients,
    scratch: &mut BpttScratch,
) -> Result<f32, SnnError> {
    let from_stage = history.from_stage;
    let exec_layers = net.layers() - from_stage;
    if history.layer_spikes.len() != exec_layers {
        return Err(SnnError::ShapeMismatch {
            op: "bptt::backward",
            expected: exec_layers,
            actual: history.layer_spikes.len(),
        });
    }
    if !grads.matches(net, from_stage) {
        return Err(SnnError::ShapeMismatch {
            op: "bptt::backward_into",
            expected: exec_layers,
            actual: grads.layers.len(),
        });
    }
    let steps = history.steps;
    let loss = loss::cross_entropy_into(&history.logits, target, &mut scratch.dlogits)?;
    let dlogits = &scratch.dlogits;

    // ---- Readout backward -------------------------------------------------
    // u[t] = beta_r * u[t-1] + W^T s[t] + b; logits = mean_t u[t].
    // du[t] = dlogits / T + beta_r * du[t+1].
    let readout = net.readout();
    let beta_r = readout.config().beta;
    let outputs = readout.outputs();
    let inv_t = 1.0 / steps as f32;
    let last_spikes: &ncl_spike::SpikeRaster = if exec_layers > 0 {
        &history.layer_spikes[exec_layers - 1]
    } else {
        &history.input
    };

    // g_s for the last hidden stage, time-major [t * n + i].
    let last_n = last_spikes.neurons();
    zeroed(&mut scratch.gs_a, last_n * steps);
    let mut above_is_a = true;

    zeroed(&mut scratch.du, outputs);
    zeroed(&mut scratch.gs_row, last_n);
    for t in (0..steps).rev() {
        for (j, d) in scratch.du.iter_mut().enumerate() {
            *d = dlogits[j] * inv_t + beta_r * *d;
        }
        ops::rows_add_masked(
            &mut grads.readout_w,
            last_spikes.step_words(t),
            &scratch.du,
            1.0,
        )?;
        ops::axpy(1.0, &scratch.du, &mut grads.readout_bias)?;
        // g_s[t] += W · du  (row i of W dot du).
        ops::gemv(readout.w(), &scratch.du, &mut scratch.gs_row)?;
        for (i, g) in scratch.gs_row.iter().enumerate() {
            scratch.gs_a[t * last_n + i] += g;
        }
    }

    // ---- Hidden layers, top to bottom -------------------------------------
    for li in (0..exec_layers).rev() {
        let layer = net.layer(from_stage + li);
        let n = layer.neurons();
        let pre_raster: &ncl_spike::SpikeRaster = if li == 0 {
            &history.input
        } else {
            &history.layer_spikes[li - 1]
        };
        let pre_n = pre_raster.neurons();
        let spikes = &history.layer_spikes[li];
        let membranes = &history.layer_membranes[li];
        let surrogate = layer.surrogate();
        let beta = layer.lif().beta;
        let lg = &mut grads.layers[li];

        // g_s of the current layer (filled above) and of the layer below
        // (filled while walking backward), ping-ponged between the two
        // scratch planes.
        let (gs_above, gs_below) = if above_is_a {
            (&mut scratch.gs_a, &mut scratch.gs_b)
        } else {
            (&mut scratch.gs_b, &mut scratch.gs_a)
        };
        let need_below = li > 0;
        zeroed(gs_below, if need_below { pre_n * steps } else { 0 });

        zeroed(&mut scratch.gv_next, n);
        zeroed(&mut scratch.di, n);
        zeroed(&mut scratch.rec_row, n);
        zeroed(&mut scratch.below_row, pre_n);
        let di = &mut scratch.di;

        for t in (0..steps).rev() {
            let theta = history.thresholds[t];
            let vrow = &membranes[t * n..(t + 1) * n];
            let gs_row_t = &gs_above[t * n..(t + 1) * n];
            // Materialize the reset-detach carry factors from the packed
            // spike words (sparse: fill β, zero the fired neurons), so the
            // credit loop below is pure branch-free elementwise math —
            // same per-element operations, same bits, but the divisions
            // inside the surrogate autovectorize.
            scratch.carry_row.clear();
            scratch.carry_row.resize(n, beta);
            for j in spikes.active_at(t) {
                scratch.carry_row[j] = 0.0;
            }
            for (((dij, gvj), (&vj, &gsj)), &carry) in di
                .iter_mut()
                .zip(scratch.gv_next.iter_mut())
                .zip(vrow.iter().zip(gs_row_t.iter()))
                .zip(scratch.carry_row.iter())
            {
                let surr = surrogate.grad(vj - theta);
                let gv = gsj * surr + carry * *gvj;
                *dij = gv;
                *gvj = gv;
            }
            // Parameter gradients, scattered straight into the arena.
            ops::axpy(1.0, di, &mut lg.bias)?;
            ops::rows_add_masked(&mut lg.w_ff, pre_raster.step_words(t), di, 1.0)?;
            if let (Some(w_rec_grad), Some(w_rec)) = (lg.w_rec.as_mut(), layer.w_rec()) {
                if t >= 1 {
                    ops::rows_add_masked(w_rec_grad, spikes.step_words(t - 1), di, 1.0)?;
                    // Recurrent credit: g_s[t-1] += W_rec · dI[t].
                    ops::gemv(w_rec, di, &mut scratch.rec_row)?;
                    for (k, g) in scratch.rec_row.iter().enumerate() {
                        gs_above[(t - 1) * n + k] += g;
                    }
                }
            }
            // Credit to the layer below: g_s_below[t] += W_ff · dI[t].
            if need_below {
                ops::gemv(layer.w_ff(), di, &mut scratch.below_row)?;
                for (i, g) in scratch.below_row.iter().enumerate() {
                    gs_below[t * pre_n + i] += g;
                }
            }
        }
        above_is_a = !above_is_a;
    }

    Ok(loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::ThresholdSchedule;
    use crate::config::{LifConfig, NetworkConfig};
    use ncl_spike::SpikeRaster;
    use ncl_tensor::Rng;

    fn tiny_config() -> NetworkConfig {
        NetworkConfig {
            input_size: 6,
            hidden_sizes: vec![5, 4],
            output_size: 3,
            recurrent: true,
            // A soft surrogate makes the finite-difference check of the
            // *smoothed* objective meaningful.
            lif: LifConfig {
                beta: 0.9,
                surrogate_scale: 10.0,
                ..LifConfig::default()
            },
            readout: crate::config::ReadoutConfig { beta: 0.85 },
            seed: 11,
        }
    }

    fn random_input(neurons: usize, steps: usize, seed: u64, density: f64) -> SpikeRaster {
        let mut rng = Rng::seed_from_u64(seed);
        SpikeRaster::from_fn(neurons, steps, |_, _| rng.bernoulli(density))
    }

    #[test]
    fn gradients_zeros_shapes() {
        let net = Network::new(tiny_config()).unwrap();
        let g = Gradients::zeros(&net, 0).unwrap();
        assert_eq!(g.layers.len(), 2);
        assert_eq!(g.layers[0].w_ff.rows(), 6);
        assert_eq!(g.layers[0].w_ff.cols(), 5);
        assert!(g.layers[0].w_rec.is_some());
        assert_eq!(g.readout_w.rows(), 4);
        assert_eq!(g.readout_w.cols(), 3);
        assert_eq!(g.l2_norm(), 0.0);
        let g2 = Gradients::zeros(&net, 2).unwrap();
        assert!(g2.layers.is_empty());
        assert!(Gradients::zeros(&net, 5).is_err());
    }

    #[test]
    fn accumulate_and_scale() {
        let net = Network::new(tiny_config()).unwrap();
        let input = random_input(6, 8, 1, 0.4);
        let h = net.record_from(0, &input, None).unwrap();
        let (_, g1) = backward(&net, &h, 0).unwrap();
        let mut sum = Gradients::zeros(&net, 0).unwrap();
        sum.accumulate(&g1).unwrap();
        sum.accumulate(&g1).unwrap();
        sum.scale(0.5);
        // sum should now equal g1.
        let mut max_diff = 0.0f32;
        let mut g1_flat = Vec::new();
        g1.visit(|s| g1_flat.extend_from_slice(s));
        let mut sum_flat = Vec::new();
        sum.visit(|s| sum_flat.extend_from_slice(s));
        for (a, b) in g1_flat.iter().zip(sum_flat.iter()) {
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(max_diff < 1e-6);
    }

    #[test]
    fn accumulate_rejects_mismatched_stage() {
        let net = Network::new(tiny_config()).unwrap();
        let mut a = Gradients::zeros(&net, 0).unwrap();
        let b = Gradients::zeros(&net, 1).unwrap();
        assert!(a.accumulate(&b).is_err());
    }

    #[test]
    fn backward_loss_matches_forward_loss() {
        let net = Network::new(tiny_config()).unwrap();
        let input = random_input(6, 10, 2, 0.4);
        let h = net.record_from(0, &input, None).unwrap();
        let (loss, _) = backward(&net, &h, 1).unwrap();
        let (expected, _) = loss::cross_entropy(&h.logits, 1).unwrap();
        assert!((loss - expected).abs() < 1e-6);
    }

    #[test]
    fn backward_rejects_bad_target_and_history() {
        let net = Network::new(tiny_config()).unwrap();
        let input = random_input(6, 8, 3, 0.4);
        let h = net.record_from(0, &input, None).unwrap();
        assert!(backward(&net, &h, 99).is_err());
        let mut broken = h.clone();
        broken.layer_spikes.pop();
        assert!(backward(&net, &broken, 0).is_err());
    }

    /// The readout path is exactly differentiable (no spikes), so its
    /// analytic gradients must match central finite differences of the true
    /// loss to high accuracy.
    #[test]
    fn readout_gradcheck_finite_difference() {
        let config = tiny_config();
        let net = Network::new(config).unwrap();
        let input = random_input(6, 12, 5, 0.4);
        let target = 2;

        let h = net.record_from(0, &input, None).unwrap();
        let (_, grads) = backward(&net, &h, target).unwrap();

        let eps = 1e-2f32;
        let mut worst: f32 = 0.0;
        // Probe a selection of readout weights.
        for (r, c) in [(0usize, 0usize), (1, 2), (3, 1), (2, 0)] {
            let mut plus = net.clone();
            let v = plus.readout().w().get(r, c);
            plus.readout_mut().w_mut().set(r, c, v + eps);
            let mut minus = net.clone();
            minus.readout_mut().w_mut().set(r, c, v - eps);
            let lp = loss_of(&plus, &input, target);
            let lm = loss_of(&minus, &input, target);
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.readout_w.get(r, c);
            worst = worst.max((fd - an).abs());
        }
        assert!(worst < 1e-3, "worst readout gradient error {worst}");
    }

    fn loss_of(net: &Network, input: &SpikeRaster, target: usize) -> f32 {
        let logits = net.forward(input).unwrap();
        loss::cross_entropy(&logits, target).unwrap().0
    }

    /// For hidden-layer parameters the objective is only piecewise smooth
    /// (spike flips), so instead of pointwise finite differences we verify
    /// that a small gradient-descent step on the full parameter set reduces
    /// the true loss — the property training actually relies on.
    #[test]
    fn gradient_step_descends_true_loss() {
        let net = Network::new(tiny_config()).unwrap();
        let input = random_input(6, 15, 7, 0.45);
        let target = 0;

        let h = net.record_from(0, &input, None).unwrap();
        let (loss0, grads) = backward(&net, &h, target).unwrap();

        // Try a few step sizes; at least one small step must descend.
        let mut descended = false;
        for lr in [0.02f32, 0.01, 0.005, 0.002] {
            let mut stepped = net.clone();
            let mut slices: Vec<Vec<f32>> = Vec::new();
            grads.visit(|s| slices.push(s.to_vec()));
            let mut idx = 0;
            stepped
                .visit_trainable_mut(0, |p| {
                    for (pv, gv) in p.iter_mut().zip(slices[idx].iter()) {
                        *pv -= lr * gv;
                    }
                    idx += 1;
                })
                .unwrap();
            let loss1 = loss_of(&stepped, &input, target);
            if loss1 < loss0 {
                descended = true;
                break;
            }
        }
        assert!(descended, "no gradient step reduced the loss from {loss0}");
    }

    /// Same property for the stage-split (latent replay) training path:
    /// training only the readout from stage-2 activations.
    #[test]
    fn gradient_step_descends_from_partial_stage() {
        let net = Network::new(tiny_config()).unwrap();
        let input = random_input(6, 12, 9, 0.45);
        let act = net.activations_at(2, &input).unwrap();
        let target = 1;

        let schedule = ThresholdSchedule::constant(1.0, act.steps());
        let h = net.record_from(2, &act, Some(&schedule)).unwrap();
        let (loss0, grads) = backward(&net, &h, target).unwrap();
        assert!(grads.layers.is_empty());

        let mut stepped = net.clone();
        let mut slices: Vec<Vec<f32>> = Vec::new();
        grads.visit(|s| slices.push(s.to_vec()));
        let mut idx = 0;
        stepped
            .visit_trainable_mut(2, |p| {
                for (pv, gv) in p.iter_mut().zip(slices[idx].iter()) {
                    *pv -= 0.05 * gv;
                }
                idx += 1;
            })
            .unwrap();
        let logits = stepped.forward_from(2, &act, Some(&schedule)).unwrap();
        let (loss1, _) = loss::cross_entropy(&logits, target).unwrap();
        assert!(
            loss1 < loss0,
            "readout-only step must descend ({loss0} -> {loss1})"
        );
    }

    /// Repeated gradient steps on a single sample must drive the loss to
    /// (near) zero — overfitting one sample is the canonical smoke test for
    /// a correct backward pass.
    #[test]
    fn overfits_single_sample() {
        let mut net = Network::new(tiny_config()).unwrap();
        let input = random_input(6, 15, 13, 0.5);
        let target = 2;
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            let h = net.record_from(0, &input, None).unwrap();
            let (l, grads) = backward(&net, &h, target).unwrap();
            last = l;
            let mut slices: Vec<Vec<f32>> = Vec::new();
            grads.visit(|s| slices.push(s.to_vec()));
            let mut idx = 0;
            net.visit_trainable_mut(0, |p| {
                for (pv, gv) in p.iter_mut().zip(slices[idx].iter()) {
                    *pv -= 0.05 * gv;
                }
                idx += 1;
            })
            .unwrap();
        }
        assert!(last < 0.2, "single-sample loss should collapse, got {last}");
    }
}
