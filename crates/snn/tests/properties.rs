//! Property-based tests of the SNN simulator: determinism, stage-split
//! consistency, threshold monotonicity, gradient well-formedness and
//! serialization round-trips under randomized configurations.

use ncl_snn::adaptive::{AdaptivePolicy, ThresholdSchedule};
use ncl_snn::{bptt, serialize, LifConfig, Network, NetworkConfig, ReadoutConfig};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use proptest::prelude::*;

/// Strategy: a small random-but-valid network configuration.
fn config_strategy() -> impl Strategy<Value = NetworkConfig> {
    (
        2usize..10,
        1usize..3,
        2usize..8,
        2usize..5,
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(input, depth, width, outputs, seed, recurrent)| NetworkConfig {
                input_size: input,
                hidden_sizes: vec![width; depth],
                output_size: outputs,
                recurrent,
                lif: LifConfig::default(),
                readout: ReadoutConfig::default(),
                seed,
            },
        )
}

/// Strategy: a raster matching `neurons`, with moderate density.
fn raster_for(neurons: usize, steps: usize, seed: u64) -> SpikeRaster {
    let mut rng = Rng::seed_from_u64(seed);
    SpikeRaster::from_fn(neurons, steps, |_, _| rng.bernoulli(0.35))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_is_deterministic_and_finite(config in config_strategy(), seed in any::<u64>()) {
        let net = Network::new(config.clone()).unwrap();
        let input = raster_for(config.input_size, 12, seed);
        let a = net.forward(&input).unwrap();
        let b = net.forward(&input).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), config.output_size);
        prop_assert!(a.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn stage_split_equals_full_forward(config in config_strategy(), seed in any::<u64>()) {
        let net = Network::new(config.clone()).unwrap();
        let input = raster_for(config.input_size, 10, seed);
        let full = net.forward(&input).unwrap();
        for stage in 0..=config.hidden_sizes.len() {
            let act = net.activations_at(stage, &input).unwrap();
            let split = net.forward_from(stage, &act, None).unwrap();
            for (a, b) in full.iter().zip(split.iter()) {
                prop_assert!((a - b).abs() < 1e-4,
                    "stage {stage}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gradients_are_finite(config in config_strategy(), seed in any::<u64>()) {
        let net = Network::new(config.clone()).unwrap();
        let input = raster_for(config.input_size, 10, seed);
        let history = net.record_from(0, &input, None).unwrap();
        let (loss, grads) = bptt::backward(&net, &history, 0).unwrap();
        prop_assert!(loss.is_finite() && loss >= 0.0);
        let mut all_finite = true;
        grads.visit(|s| all_finite &= s.iter().all(|v| v.is_finite()));
        prop_assert!(all_finite);
    }

    #[test]
    fn serialize_round_trips_any_config(config in config_strategy()) {
        let net = Network::new(config).unwrap();
        let restored = serialize::from_bytes(&serialize::to_bytes(&net)).unwrap();
        prop_assert_eq!(net, restored);
    }

    #[test]
    fn adaptive_schedule_is_bounded(
        steps in 1usize..80,
        density in 0.0f64..0.9,
        seed in any::<u64>()
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let raster = SpikeRaster::from_fn(8, steps, |_, _| rng.bernoulli(density));
        let policy = AdaptivePolicy::default();
        let schedule = ThresholdSchedule::adaptive(&raster, &policy).unwrap();
        prop_assert_eq!(schedule.len(), steps);
        for t in 0..steps {
            let v = schedule.value_at(t);
            // Lower bound: sigmoid decay floor (~0.5); upper bound: the
            // Alg. 1 boost formula at mean spike time 0.
            prop_assert!(v >= 0.49, "t={t}: {v}");
            prop_assert!(v <= policy.base + policy.timing_coef * steps as f32 + 1e-5);
        }
    }

    #[test]
    fn lower_threshold_never_fires_less(seed in any::<u64>()) {
        let config = NetworkConfig::tiny(10, 3);
        let net = Network::new(config).unwrap();
        let input = raster_for(10, 15, seed);
        let low = ThresholdSchedule::constant(0.4, 15);
        let high = ThresholdSchedule::constant(1.2, 15);
        let (_, a_low) = net.forward_from_traced(0, &input, Some(&low)).unwrap();
        let (_, a_high) = net.forward_from_traced(0, &input, Some(&high)).unwrap();
        // First hidden layer sees the same input spikes either way; its
        // output can only shrink with a higher threshold.
        prop_assert!(a_low.stages[0].out_spikes >= a_high.stages[0].out_spikes);
    }

    #[test]
    fn trainable_param_count_matches_visitation(config in config_strategy()) {
        let mut net = Network::new(config.clone()).unwrap();
        for stage in 0..=config.hidden_sizes.len() {
            let declared = net.trainable_params(stage).unwrap();
            let mut visited = 0usize;
            net.visit_trainable_mut(stage, |s| visited += s.len()).unwrap();
            prop_assert_eq!(declared, visited);
        }
    }

    /// The serving hot path (`forward_batch`, shared scratch buffers)
    /// must stay bit-identical to the canonical per-call forward for ANY
    /// batch — this is the guard against the two loop implementations
    /// drifting apart.
    #[test]
    fn forward_batch_equals_sequential_forward(
        seed in any::<u64>(), batch_len in 1usize..6, steps in 1usize..24
    ) {
        let net = Network::new(NetworkConfig::tiny(9, 3)).unwrap();
        let inputs: Vec<_> = (0..batch_len)
            .map(|i| raster_for(9, steps, seed.wrapping_add(i as u64)))
            .collect();
        let batched = net.forward_batch(&inputs).unwrap();
        for (input, logits) in inputs.iter().zip(batched.iter()) {
            prop_assert_eq!(logits, &net.forward(input).unwrap());
        }
    }

    /// The training hot path records into a reused `History` +
    /// `ForwardScratch` — the recording must stay bit-identical to a
    /// fresh `record_from` for ANY sequence of rasters (shapes shrink and
    /// grow across reuses), the guard against the arena path drifting.
    #[test]
    fn record_into_matches_record_from(
        config in config_strategy(), seed in any::<u64>()
    ) {
        let net = Network::new(config.clone()).unwrap();
        let mut history = ncl_snn::History::empty();
        let mut scratch = ncl_snn::ForwardScratch::new();
        // Vary steps across reuses so buffers reshape both ways.
        for (i, steps) in [12usize, 5, 9].into_iter().enumerate() {
            let input = raster_for(config.input_size, steps, seed.wrapping_add(i as u64));
            let fresh = net.record_from(0, &input, None).unwrap();
            net.record_from_into(0, &input, None, &mut history, &mut scratch).unwrap();
            prop_assert_eq!(history.from_stage, fresh.from_stage);
            prop_assert_eq!(history.steps, fresh.steps);
            prop_assert_eq!(&history.input, &fresh.input);
            prop_assert_eq!(&history.layer_spikes, &fresh.layer_spikes);
            prop_assert_eq!(&history.layer_membranes, &fresh.layer_membranes);
            prop_assert_eq!(&history.thresholds, &fresh.thresholds);
            prop_assert_eq!(&history.logits, &fresh.logits);
            prop_assert_eq!(&history.activity, &fresh.activity);
        }
    }

    /// `backward_into` on a zero-filled (reused, previously dirty) arena
    /// must be bit-identical to the allocating `backward` — arena reuse
    /// may not leak state between samples.
    #[test]
    fn backward_into_zeroed_arena_equals_backward(
        config in config_strategy(), seed in any::<u64>()
    ) {
        let net = Network::new(config.clone()).unwrap();
        let mut arena = bptt::Gradients::zeros(&net, 0).unwrap();
        let mut scratch = ncl_snn::BpttScratch::new();
        for i in 0..3u64 {
            let input = raster_for(config.input_size, 10, seed.wrapping_add(i));
            let history = net.record_from(0, &input, None).unwrap();
            let target = (i as usize) % config.output_size;
            let (loss, fresh) = bptt::backward(&net, &history, target).unwrap();
            // The arena is dirty from the previous iteration; zero_fill
            // must restore it to `zeros` exactly.
            arena.zero_fill();
            let loss_into =
                bptt::backward_into(&net, &history, target, &mut arena, &mut scratch).unwrap();
            prop_assert_eq!(loss_into, loss);
            let mut a = Vec::new();
            arena.visit(|s| a.extend_from_slice(s));
            let mut b = Vec::new();
            fresh.visit(|s| b.extend_from_slice(s));
            prop_assert_eq!(a, b, "arena backward must be bit-identical");
        }
    }

    /// Accumulating several samples through `backward_into` into one
    /// shared arena equals the seed-style `backward` + `accumulate` sum.
    /// The scattered path groups the float additions per timestep instead
    /// of per sample, so equality is to summation-reordering precision
    /// (exact up to tiny ulp drift), not bitwise.
    #[test]
    fn backward_into_accumulation_matches_backward_plus_accumulate(
        config in config_strategy(), seed in any::<u64>()
    ) {
        let net = Network::new(config.clone()).unwrap();
        let mut fused = bptt::Gradients::zeros(&net, 0).unwrap();
        let mut summed = bptt::Gradients::zeros(&net, 0).unwrap();
        let mut scratch = ncl_snn::BpttScratch::new();
        for i in 0..3u64 {
            let input = raster_for(config.input_size, 8, seed.wrapping_add(i));
            let history = net.record_from(0, &input, None).unwrap();
            let target = (i as usize) % config.output_size;
            bptt::backward_into(&net, &history, target, &mut fused, &mut scratch).unwrap();
            let (_, g) = bptt::backward(&net, &history, target).unwrap();
            summed.accumulate(&g).unwrap();
        }
        let mut a = Vec::new();
        fused.visit(|s| a.extend_from_slice(s));
        let mut b = Vec::new();
        summed.visit(|s| b.extend_from_slice(s));
        for (x, y) in a.iter().zip(b.iter()) {
            let tol = 1e-5f32.max(y.abs() * 1e-5);
            prop_assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }
}
