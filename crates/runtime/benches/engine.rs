//! Suite throughput vs worker count.
//!
//! Measures `Engine::run` on a small fixed suite with 1, 2 and 4 workers.
//! Pre-training is shared across iterations through the process-wide model
//! cache, so the measured time is the CL-phase grid itself — the part the
//! engine parallelizes.

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_runtime::{Engine, Job, Suite};
use replay4ncl::{cache, MethodSpec, ScenarioConfig};
use std::time::Duration;

fn bench_suite() -> Suite {
    let mut config = ScenarioConfig::smoke();
    config.pretrain_epochs = 2;
    config.cl_epochs = 2;
    config.seed = 0xBE4C;
    let t_star = (config.data.steps * 2 / 5).max(1);
    let mut suite = Suite::new("bench");
    for insertion in 0..=config.network.layers() {
        for method in [MethodSpec::spiking_lr(2), MethodSpec::replay4ncl(2, t_star)] {
            let mut c = config.clone();
            c.insertion_layer = insertion;
            suite.push(Job::new(format!("{}@L{insertion}", method.name), c, method));
        }
    }
    suite
}

fn bench_engine(c: &mut Criterion) {
    let suite = bench_suite();
    // Warm the shared pre-train cache outside the measured region.
    cache::pretrained_network(&suite.jobs[0].config).expect("pretrain");

    let mut group = c.benchmark_group("engine");
    group
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500));
    for workers in [1usize, 2, 4] {
        group.bench_function(&format!("suite6_workers{workers}"), |b| {
            let engine = Engine::new(workers);
            b.iter(|| {
                engine
                    .run(std::hint::black_box(&suite))
                    .expect("suite runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
