//! **ncl-runtime** — the concurrent experiment engine for the Replay4NCL
//! reproduction.
//!
//! Every figure of the paper is a grid of independent experiment cells
//! (method × insertion layer × timestep setting), and every cell pays the
//! full scenario cost. This crate makes grid execution a first-class,
//! parallel subsystem:
//!
//! * [`job::Job`] / [`job::Suite`] — one experiment cell (a
//!   [`replay4ncl::ScenarioConfig`] + [`replay4ncl::MethodSpec`] + label)
//!   and an ordered collection of them, buildable in code or loaded from a
//!   JSON file (schema in [`job`]);
//! * [`queue::ShardedQueue`] — the work-distribution substrate: one shard
//!   per worker, round-robin seeded, work-stealing once a shard runs dry;
//! * [`engine::Engine`] — the worker-pool executor. Results are keyed by
//!   job index and re-assembled in suite order, and every job's outcome
//!   depends only on its own seeded configuration, so a run is
//!   **bit-identical regardless of worker count or completion order**;
//! * [`report::SuiteReport`] — per-job results plus cross-job summaries
//!   (best/worst forgetting, latency/energy/memory totals), with
//!   deterministic JSON and text renderings;
//! * [`suites`] — the standard grids (the Fig. 8 timestep sweep and the
//!   Fig. 10 insertion sweep) as shared suite builders.
//!
//! Pre-training is shared through `replay4ncl::cache`, whose per-key
//! single-flight guard keeps concurrent workers with the same pre-train
//! configuration from training redundantly.
//!
//! # Quickstart
//!
//! ```no_run
//! use ncl_runtime::{suites, Engine};
//! use replay4ncl::{MethodSpec, ScenarioConfig};
//!
//! # fn main() -> Result<(), ncl_runtime::RuntimeError> {
//! let base = ScenarioConfig::smoke();
//! let methods = [MethodSpec::spiking_lr(4), MethodSpec::replay4ncl(4, 16)];
//! let suite = suites::insertion_sweep(&base, &methods);
//! let report = Engine::new(4).run(&suite)?;
//! println!("{}", report.render());
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod error;
pub mod job;
pub mod queue;
pub mod report;
pub mod suites;

pub use engine::{Engine, Event, EventSink, NullSink, StderrProgress};
pub use error::RuntimeError;
pub use job::{Job, Suite};
pub use queue::ShardedQueue;
pub use report::{JobRecord, SuiteReport, SuiteSummary};
