//! A sharded multi-producer/multi-consumer work queue.
//!
//! Work items are distributed round-robin across one shard per worker at
//! construction time; each worker drains its own shard FIFO and, once
//! empty, steals from the other shards (oldest item first). Sharding keeps
//! the common case uncontended — a worker touches only its own mutex —
//! while stealing keeps every worker busy until the whole queue is dry.
//!
//! Note what sharding does **not** promise: a global pop order. Engine
//! determinism therefore never depends on dequeue order — results are
//! keyed by job index and re-assembled in suite order (see
//! [`crate::engine`]).

use std::collections::VecDeque;

use parking_lot::Mutex;

/// Fixed-shard work queue; `T` is the work-item type (the engine uses job
/// indices).
#[derive(Debug)]
pub struct ShardedQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
}

impl<T> ShardedQueue<T> {
    /// Builds a queue with `shards` shards (at least 1), distributing
    /// `items` round-robin so every shard starts with an equal share.
    #[must_use]
    pub fn new(shards: usize, items: impl IntoIterator<Item = T>) -> Self {
        let shards = shards.max(1);
        let mut queues: Vec<VecDeque<T>> = (0..shards).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % shards].push_back(item);
        }
        ShardedQueue {
            shards: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total items currently queued across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Pops the next item for `worker`: its own shard first, then a steal
    /// sweep over the remaining shards. Returns `None` only when every
    /// shard was empty at the time it was visited.
    #[must_use]
    pub fn pop(&self, worker: usize) -> Option<T> {
        let own = worker % self.shards.len();
        for offset in 0..self.shards.len() {
            let shard = (own + offset) % self.shards.len();
            if let Some(item) = self.shards[shard].lock().pop_front() {
                return Some(item);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_round_robin_and_drains_fifo() {
        let q = ShardedQueue::new(2, 0..6);
        assert_eq!(q.shards(), 2);
        assert_eq!(q.len(), 6);
        // Worker 0's shard holds the even items, in order.
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(4));
        // Its own shard is dry: it steals worker 1's oldest item.
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(1), Some(3));
        assert_eq!(q.pop(1), Some(5));
        assert_eq!(q.pop(0), None);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let q = ShardedQueue::new(0, [7]);
        assert_eq!(q.shards(), 1);
        assert_eq!(q.pop(0), Some(7));
    }

    #[test]
    fn worker_index_wraps_across_shards() {
        let q = ShardedQueue::new(3, 0..3);
        // Worker 5 maps to shard 2 (item 2 went there round-robin).
        assert_eq!(q.pop(5), Some(2));
    }

    #[test]
    fn concurrent_workers_drain_every_item_exactly_once() {
        let q = ShardedQueue::new(4, 0..200);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let (q, seen) = (&q, &seen);
                scope.spawn(move || {
                    while let Some(item) = q.pop(worker) {
                        seen.lock().push(item);
                    }
                });
            }
        });
        let mut seen = seen.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }
}
