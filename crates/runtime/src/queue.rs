//! A sharded multi-producer/multi-consumer work queue.
//!
//! Work items are distributed round-robin across one shard per worker —
//! at construction time for batch workloads (the experiment engine) and
//! at [`ShardedQueue::push`] time for streaming workloads (`ncl_serve`'s
//! request scheduler). Each worker drains its own shard FIFO and, once
//! empty, steals from the other shards (oldest item first). Sharding
//! keeps the common case uncontended — a worker touches only its own
//! mutex — while stealing keeps every worker busy until the whole queue
//! is dry.
//!
//! Note what sharding does **not** promise: a global pop order. Engine
//! determinism therefore never depends on dequeue order — results are
//! keyed by job index and re-assembled in suite order (see
//! [`crate::engine`]); the serving layer tags every request with its
//! reply channel.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Fixed-shard work queue; `T` is the work-item type (the engine uses job
/// indices, the serving layer queued inference requests).
#[derive(Debug)]
pub struct ShardedQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Round-robin cursor for dynamically pushed items.
    next_shard: AtomicUsize,
}

impl<T> ShardedQueue<T> {
    /// Builds a queue with `shards` shards (at least 1), distributing
    /// `items` round-robin so every shard starts with an equal share.
    #[must_use]
    pub fn new(shards: usize, items: impl IntoIterator<Item = T>) -> Self {
        let shards = shards.max(1);
        let mut queues: Vec<VecDeque<T>> = (0..shards).map(|_| VecDeque::new()).collect();
        let mut count = 0;
        for (i, item) in items.into_iter().enumerate() {
            queues[i % shards].push_back(item);
            count = i + 1;
        }
        ShardedQueue {
            shards: queues.into_iter().map(Mutex::new).collect(),
            next_shard: AtomicUsize::new(count),
        }
    }

    /// An empty queue with `shards` shards (at least 1) — the streaming
    /// form, fed by [`ShardedQueue::push`].
    #[must_use]
    pub fn empty(shards: usize) -> Self {
        Self::new(shards, std::iter::empty())
    }

    /// Enqueues one item, continuing the round-robin distribution across
    /// shards so concurrent producers spread load evenly.
    pub fn push(&self, item: T) {
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard].lock().push_back(item);
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total items currently queued across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Pops the next item for `worker`: its own shard first, then a steal
    /// sweep over the remaining shards. Returns `None` only when every
    /// shard was empty at the time it was visited.
    #[must_use]
    pub fn pop(&self, worker: usize) -> Option<T> {
        let own = worker % self.shards.len();
        for offset in 0..self.shards.len() {
            let shard = (own + offset) % self.shards.len();
            if let Some(item) = self.shards[shard].lock().pop_front() {
                return Some(item);
            }
        }
        None
    }

    /// Pops up to `max` items for `worker` in one sweep — the
    /// micro-batching primitive: a serving worker drains its own shard
    /// first, then steals, until the batch is full or every shard was
    /// seen empty. Returns an empty vector when nothing was queued.
    #[must_use]
    pub fn pop_batch(&self, worker: usize, max: usize) -> Vec<T> {
        let mut batch = Vec::new();
        if max == 0 {
            return batch;
        }
        let own = worker % self.shards.len();
        for offset in 0..self.shards.len() {
            let shard = (own + offset) % self.shards.len();
            let mut guard = self.shards[shard].lock();
            while batch.len() < max {
                match guard.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() == max {
                break;
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_round_robin_and_drains_fifo() {
        let q = ShardedQueue::new(2, 0..6);
        assert_eq!(q.shards(), 2);
        assert_eq!(q.len(), 6);
        // Worker 0's shard holds the even items, in order.
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(4));
        // Its own shard is dry: it steals worker 1's oldest item.
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(1), Some(3));
        assert_eq!(q.pop(1), Some(5));
        assert_eq!(q.pop(0), None);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let q = ShardedQueue::new(0, [7]);
        assert_eq!(q.shards(), 1);
        assert_eq!(q.pop(0), Some(7));
    }

    #[test]
    fn worker_index_wraps_across_shards() {
        let q = ShardedQueue::new(3, 0..3);
        // Worker 5 maps to shard 2 (item 2 went there round-robin).
        assert_eq!(q.pop(5), Some(2));
    }

    #[test]
    fn dynamic_push_continues_round_robin() {
        let q = ShardedQueue::new(2, 0..2); // item 0 -> shard 0, item 1 -> shard 1
        q.push(2); // continues at shard 0
        q.push(3); // shard 1
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(1), Some(1));
        assert_eq!(q.pop(1), Some(3));
    }

    #[test]
    fn empty_queue_accepts_streamed_items() {
        let q: ShardedQueue<u32> = ShardedQueue::empty(3);
        assert!(q.is_empty());
        assert_eq!(q.shards(), 3);
        for i in 0..9 {
            q.push(i);
        }
        assert_eq!(q.len(), 9);
        // Every shard got an equal share.
        for worker in 0..3 {
            assert_eq!(q.pop_batch(worker, 3).len(), 3);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_fills_from_own_shard_then_steals() {
        let q = ShardedQueue::new(2, 0..6); // shard 0: [0,2,4], shard 1: [1,3,5]
        let batch = q.pop_batch(0, 4);
        assert_eq!(batch, vec![0, 2, 4, 1], "own shard first, then steal");
        assert_eq!(q.pop_batch(1, 10), vec![3, 5], "partial batch when dry");
        assert!(q.pop_batch(0, 5).is_empty());
        assert!(q.pop_batch(0, 0).is_empty());
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q: ShardedQueue<usize> = ShardedQueue::empty(4);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for producer in 0..4 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..50 {
                        q.push(producer * 50 + i);
                    }
                });
            }
            for worker in 0..4 {
                let (q, seen) = (&q, &seen);
                scope.spawn(move || {
                    // Spin until the full load is accounted for (producers
                    // may still be pushing when a pop comes up empty).
                    loop {
                        let batch = q.pop_batch(worker, 8);
                        let mut guard = seen.lock();
                        guard.extend(batch);
                        if guard.len() == 200 {
                            break;
                        }
                        drop(guard);
                        std::thread::yield_now();
                    }
                });
            }
        });
        let mut seen = seen.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_workers_drain_every_item_exactly_once() {
        let q = ShardedQueue::new(4, 0..200);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let (q, seen) = (&q, &seen);
                scope.spawn(move || {
                    while let Some(item) = q.pop(worker) {
                        seen.lock().push(item);
                    }
                });
            }
        });
        let mut seen = seen.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }
}
