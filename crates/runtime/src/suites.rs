//! Standard sweep-suite builders.
//!
//! The paper's two grid studies — the Fig. 8 timestep sweep and the
//! Fig. 10 insertion-layer sweep — are expressed here as suite builders so
//! the sweep logic lives in one place: the figure binaries, the `ncl-run`
//! presets and the examples all build the *same* job grids and differ only
//! in scale and rendering.

use replay4ncl::{MethodSpec, ScenarioConfig};

use crate::job::{Job, Suite};

/// The Fig. 8 timestep grid: fractions of the native step count `T`, as
/// `(fraction, steps)` pairs — 1.0, 0.6, 0.4, 0.2 (the paper's
/// 100/60/40/20), each clamped to at least one step.
#[must_use]
pub fn timestep_fractions(native_steps: usize) -> Vec<(f64, usize)> {
    let t = native_steps;
    [(1.0, t), (0.6, t * 3 / 5), (0.4, t * 2 / 5), (0.2, t / 5)]
        .into_iter()
        .map(|(f, steps)| (f, steps.max(1)))
        .collect()
}

/// The Fig. 8 sweep: SpikingLR at native `T` plus naive timestep
/// reductions at each smaller fraction, all at `per_class` stored replay
/// samples. Jobs are labelled `T=<steps>` in fraction order.
#[must_use]
pub fn timestep_sweep(config: &ScenarioConfig, per_class: usize) -> Suite {
    let native = config.data.steps;
    let mut suite = Suite::new(format!("timestep-sweep-T{native}"));
    for (_, steps) in timestep_fractions(native) {
        let method = if steps == native {
            MethodSpec::spiking_lr(per_class)
        } else {
            MethodSpec::spiking_lr_reduced(per_class, steps)
        };
        suite.push(Job::new(format!("T={steps}"), config.clone(), method));
    }
    suite
}

/// The Fig. 10 sweep: every method at every insertion layer
/// `0..=network.layers()`, insertion-major (all methods of layer 0 first).
/// Jobs are labelled `<method>@L<insertion>`.
#[must_use]
pub fn insertion_sweep(base: &ScenarioConfig, methods: &[MethodSpec]) -> Suite {
    let mut suite = Suite::new(format!("insertion-sweep-L0..{}", base.network.layers()));
    for insertion in 0..=base.network.layers() {
        for method in methods {
            let mut config = base.clone();
            config.insertion_layer = insertion;
            suite.push(Job::new(
                format!("{}@L{insertion}", method.name),
                config,
                method.clone(),
            ));
        }
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestep_fractions_match_paper_ratios() {
        assert_eq!(
            timestep_fractions(100)
                .iter()
                .map(|(_, s)| *s)
                .collect::<Vec<_>>(),
            vec![100, 60, 40, 20]
        );
        // Tiny T clamps to at least one step.
        assert!(timestep_fractions(1).iter().all(|(_, s)| *s >= 1));
    }

    #[test]
    fn timestep_sweep_uses_native_codec_then_reductions() {
        let config = ScenarioConfig::smoke(); // T = 40
        let suite = timestep_sweep(&config, 3);
        assert_eq!(suite.len(), 4);
        assert!(suite.validate().is_ok());
        assert_eq!(suite.jobs[0].label, "T=40");
        assert_eq!(suite.jobs[0].method, MethodSpec::spiking_lr(3));
        assert_eq!(suite.jobs[2].method, MethodSpec::spiking_lr_reduced(3, 16));
    }

    #[test]
    fn insertion_sweep_covers_the_full_grid() {
        let base = ScenarioConfig::smoke(); // 2 hidden layers
        let methods = [MethodSpec::spiking_lr(2), MethodSpec::replay4ncl(2, 16)];
        let suite = insertion_sweep(&base, &methods);
        assert_eq!(suite.len(), (base.network.layers() + 1) * 2);
        assert!(suite.validate().is_ok());
        assert_eq!(suite.jobs[0].label, "SpikingLR@L0");
        assert_eq!(suite.jobs[1].label, "Replay4NCL@L0");
        assert_eq!(suite.jobs[2].config.insertion_layer, 1);
        // Every job keeps the base scale, only the insertion varies.
        assert!(suite.jobs.iter().all(|j| j.config.data == base.data));
    }
}
