//! Error type for the experiment-execution engine.

use std::error::Error;
use std::fmt;

use replay4ncl::NclError;

/// Error returned by suite construction, loading and execution.
#[derive(Debug)]
pub enum RuntimeError {
    /// The suite itself is malformed (empty, invalid job, ...).
    InvalidSuite {
        /// Human-readable detail.
        detail: String,
    },
    /// A suite file could not be read.
    Io(std::io::Error),
    /// A suite file could not be parsed or did not match the schema.
    Parse {
        /// Human-readable detail (includes line/column for syntax errors).
        detail: String,
    },
    /// One job of the suite failed to execute.
    Job {
        /// Label of the failing job.
        label: String,
        /// The underlying scenario failure.
        source: NclError,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidSuite { detail } => write!(f, "invalid suite: {detail}"),
            RuntimeError::Io(e) => write!(f, "suite file i/o failure: {e}"),
            RuntimeError::Parse { detail } => write!(f, "suite file parse failure: {detail}"),
            RuntimeError::Job { label, source } => write!(f, "job '{label}' failed: {source}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Io(e) => Some(e),
            RuntimeError::Job { source, .. } => Some(source),
            RuntimeError::InvalidSuite { .. } | RuntimeError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

impl From<serde_json::Error> for RuntimeError {
    fn from(e: serde_json::Error) -> Self {
        RuntimeError::Parse {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = RuntimeError::InvalidSuite {
            detail: "no jobs".into(),
        };
        assert!(e.to_string().contains("no jobs"));
        assert!(e.source().is_none());

        let e: RuntimeError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("i/o"));
        assert!(e.source().is_some());

        let e: RuntimeError = serde_json::from_str("{").unwrap_err().into();
        assert!(e.to_string().contains("parse"));

        let e = RuntimeError::Job {
            label: "r4ncl@L2".into(),
            source: NclError::InvalidConfig {
                what: "epochs",
                detail: "zero".into(),
            },
        };
        assert!(e.to_string().contains("r4ncl@L2"));
        assert!(e.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<RuntimeError>();
    }
}
