//! Job and suite specifications.
//!
//! A [`Job`] is one fully-specified experiment cell: a scenario
//! configuration, a method, and a display label. A [`Suite`] is an ordered
//! list of jobs — the unit the [`crate::engine::Engine`] executes. Suites
//! are built in code (see [`crate::suites`] for the standard grids) or
//! loaded from a JSON file via [`Suite::from_json_str`].
//!
//! # Suite JSON schema
//!
//! ```json
//! {
//!   "name": "my-sweep",
//!   "base": "smoke",
//!   "jobs": [
//!     {
//!       "label": "r4ncl@L2",
//!       "base": "paper",
//!       "seed": 7,
//!       "insertion_layer": 2,
//!       "cl_epochs": 10,
//!       "pretrain_epochs": 4,
//!       "method": { "kind": "replay4ncl", "per_class": 5, "t_star": 24,
//!                   "lr_divisor": 2.0 }
//!     }
//!   ]
//! }
//! ```
//!
//! `base` names a configuration preset (the built-in resolver knows
//! `"smoke"` and `"paper"`; binaries may register more via
//! [`Suite::from_json_str_with`]); the per-job fields override it. Method
//! `kind` is one of `baseline`, `spiking_lr`, `spiking_lr_reduced`,
//! `replay4ncl`; replay kinds need `per_class`, reduced kinds need
//! `t_star`, and `lr_divisor` optionally rescales the CL learning rate.

use serde::{Deserialize, Serialize};
use serde_json::Value;

use replay4ncl::{MethodSpec, ScenarioConfig};

use crate::error::RuntimeError;

/// One experiment cell: a scenario configuration plus a method, labelled
/// for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Display label (unique within a suite by convention, not enforced).
    pub label: String,
    /// Scenario configuration the job runs under.
    pub config: ScenarioConfig,
    /// Method under test.
    pub method: MethodSpec,
}

impl Job {
    /// Creates a labelled job.
    #[must_use]
    pub fn new(label: impl Into<String>, config: ScenarioConfig, method: MethodSpec) -> Self {
        Job {
            label: label.into(),
            config,
            method,
        }
    }

    /// Validates the job's configuration and method.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidSuite`] naming the job and the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        self.config
            .validate()
            .and_then(|()| self.method.validate())
            .map_err(|e| RuntimeError::InvalidSuite {
                detail: format!("job '{}': {e}", self.label),
            })
    }
}

/// An ordered collection of jobs executed as one run.
///
/// Job order is the report order: results are always assembled in suite
/// order, regardless of which worker finishes which job first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suite {
    /// Suite display name.
    pub name: String,
    /// The jobs, in report order.
    pub jobs: Vec<Job>,
}

impl Suite {
    /// Creates an empty suite.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Suite {
            name: name.into(),
            jobs: Vec::new(),
        }
    }

    /// Appends a job, builder-style.
    #[must_use]
    pub fn with_job(mut self, job: Job) -> Self {
        self.jobs.push(job);
        self
    }

    /// Appends a job.
    pub fn push(&mut self, job: Job) {
        self.jobs.push(job);
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the suite has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Validates every job; a suite must be non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidSuite`] for an empty suite or the
    /// first invalid job.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        if self.jobs.is_empty() {
            return Err(RuntimeError::InvalidSuite {
                detail: format!("suite '{}' has no jobs", self.name),
            });
        }
        for job in &self.jobs {
            job.validate()?;
        }
        Ok(())
    }

    /// `n` copies of a job with per-replicate derived seeds (for variance
    /// studies): replicate `i` gets `derive_seed(job.config.seed, i)` and a
    /// `#i` label suffix. Replicate 0 keeps the original seed so the base
    /// run stays reproducible by itself.
    #[must_use]
    pub fn seed_replicates(job: &Job, n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| {
                let mut replica = job.clone();
                if i > 0 {
                    replica.config.seed = derive_seed(job.config.seed, i as u64);
                }
                replica.label = format!("{}#{i}", job.label);
                replica
            })
            .collect()
    }

    /// Parses a suite from JSON using the built-in base-config resolver
    /// (`"smoke"` and `"paper"`).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Parse`] for syntax or schema violations and
    /// [`RuntimeError::InvalidSuite`] if a decoded job fails validation.
    pub fn from_json_str(json: &str) -> Result<Self, RuntimeError> {
        Suite::from_json_str_with(json, &builtin_base)
    }

    /// Parses a suite from JSON with a custom base-config resolver; the
    /// resolver maps a `base` preset name to a [`ScenarioConfig`] (return
    /// `None` for unknown names, which surfaces as a parse error).
    ///
    /// # Errors
    ///
    /// Same as [`Suite::from_json_str`].
    pub fn from_json_str_with(
        json: &str,
        resolve_base: &dyn Fn(&str) -> Option<ScenarioConfig>,
    ) -> Result<Self, RuntimeError> {
        let doc = serde_json::from_str(json)?;
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| schema_err("suite needs a string \"name\""))?
            .to_owned();
        let suite_base = match doc.get("base") {
            None => "smoke".to_owned(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| schema_err("\"base\" must be a string"))?
                .to_owned(),
        };
        let jobs_json = doc
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or_else(|| schema_err("suite needs a \"jobs\" array"))?;

        let mut suite = Suite::new(name);
        for (index, job_json) in jobs_json.iter().enumerate() {
            suite
                .jobs
                .push(decode_job(job_json, index, &suite_base, resolve_base)?);
        }
        suite.validate()?;
        Ok(suite)
    }

    /// Reads and parses a suite file (see [`Suite::from_json_str_with`]).
    ///
    /// # Errors
    ///
    /// Adds [`RuntimeError::Io`] for unreadable files to the parse errors.
    pub fn from_json_file_with(
        path: &std::path::Path,
        resolve_base: &dyn Fn(&str) -> Option<ScenarioConfig>,
    ) -> Result<Self, RuntimeError> {
        let json = std::fs::read_to_string(path)?;
        Suite::from_json_str_with(&json, resolve_base)
    }
}

/// The built-in base-config resolver: the two presets every binary knows.
#[must_use]
pub fn builtin_base(name: &str) -> Option<ScenarioConfig> {
    match name {
        "smoke" => Some(ScenarioConfig::smoke()),
        "paper" => Some(ScenarioConfig::paper()),
        _ => None,
    }
}

/// Deterministically mixes a salt into a base seed (splitmix64 finalizer),
/// for suites that want distinct-but-reproducible per-job seeds.
#[must_use]
pub fn derive_seed(base: u64, salt: u64) -> u64 {
    let mut z = base
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn schema_err(detail: &str) -> RuntimeError {
    RuntimeError::Parse {
        detail: detail.to_owned(),
    }
}

fn field_usize(json: &Value, key: &str) -> Result<Option<usize>, RuntimeError> {
    match json.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .map(Some)
            .ok_or_else(|| schema_err(&format!("\"{key}\" must be a non-negative integer"))),
    }
}

fn decode_job(
    json: &Value,
    index: usize,
    suite_base: &str,
    resolve_base: &dyn Fn(&str) -> Option<ScenarioConfig>,
) -> Result<Job, RuntimeError> {
    let base_name = match json.get("base") {
        None => suite_base,
        Some(v) => v
            .as_str()
            .ok_or_else(|| schema_err(&format!("job {index}: \"base\" must be a string")))?,
    };
    let mut config = resolve_base(base_name)
        .ok_or_else(|| schema_err(&format!("job {index}: unknown base preset \"{base_name}\"")))?;

    if let Some(seed) = json.get("seed") {
        config.seed = seed
            .as_u64()
            .ok_or_else(|| schema_err(&format!("job {index}: \"seed\" must be a u64")))?;
    }
    if let Some(v) = field_usize(json, "insertion_layer")? {
        config.insertion_layer = v;
    }
    if let Some(v) = field_usize(json, "cl_epochs")? {
        config.cl_epochs = v;
    }
    if let Some(v) = field_usize(json, "pretrain_epochs")? {
        config.pretrain_epochs = v;
    }

    let method_json = json
        .get("method")
        .ok_or_else(|| schema_err(&format!("job {index}: needs a \"method\" object")))?;
    let method = decode_method(method_json, index)?;

    let label = match json.get("label") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| schema_err(&format!("job {index}: \"label\" must be a string")))?
            .to_owned(),
        None => format!("{}@L{}#{index}", method.name, config.insertion_layer),
    };
    Ok(Job::new(label, config, method))
}

fn decode_method(json: &Value, index: usize) -> Result<MethodSpec, RuntimeError> {
    let kind = json
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| schema_err(&format!("job {index}: method needs a string \"kind\"")))?;
    let per_class = |what: &str| {
        field_usize(json, "per_class")?.ok_or_else(|| {
            schema_err(&format!(
                "job {index}: method kind \"{what}\" needs \"per_class\""
            ))
        })
    };
    let t_star = |what: &str| {
        field_usize(json, "t_star")?.ok_or_else(|| {
            schema_err(&format!(
                "job {index}: method kind \"{what}\" needs \"t_star\""
            ))
        })
    };
    let mut method = match kind {
        "baseline" => MethodSpec::baseline(),
        "spiking_lr" => MethodSpec::spiking_lr(per_class(kind)?),
        "spiking_lr_reduced" => MethodSpec::spiking_lr_reduced(per_class(kind)?, t_star(kind)?),
        "replay4ncl" => MethodSpec::replay4ncl(per_class(kind)?, t_star(kind)?),
        other => {
            return Err(schema_err(&format!(
                "job {index}: unknown method kind \"{other}\""
            )))
        }
    };
    if let Some(divisor) = json.get("lr_divisor") {
        let divisor = divisor
            .as_f64()
            .ok_or_else(|| schema_err(&format!("job {index}: \"lr_divisor\" must be a number")))?;
        method = method.with_lr_divisor(divisor as f32);
    }
    Ok(method)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_builds_and_validates() {
        let config = ScenarioConfig::smoke();
        let suite = Suite::new("s")
            .with_job(Job::new("base", config.clone(), MethodSpec::baseline()))
            .with_job(Job::new("r4", config, MethodSpec::replay4ncl(2, 16)));
        assert_eq!(suite.len(), 2);
        assert!(!suite.is_empty());
        assert!(suite.validate().is_ok());
        assert!(Suite::new("empty").validate().is_err());
    }

    #[test]
    fn invalid_job_is_named_in_the_error() {
        let mut config = ScenarioConfig::smoke();
        config.cl_epochs = 0;
        let suite = Suite::new("s").with_job(Job::new("broken", config, MethodSpec::baseline()));
        let err = suite.validate().unwrap_err().to_string();
        assert!(err.contains("broken"), "{err}");
    }

    #[test]
    fn json_decodes_presets_overrides_and_all_method_kinds() {
        let suite = Suite::from_json_str(
            r#"{
              "name": "grid",
              "base": "smoke",
              "jobs": [
                {"label": "b", "method": {"kind": "baseline"}},
                {"label": "slr", "seed": 42, "cl_epochs": 3,
                 "method": {"kind": "spiking_lr", "per_class": 4}},
                {"label": "slr-r", "insertion_layer": 2,
                 "method": {"kind": "spiking_lr_reduced", "per_class": 4, "t_star": 16}},
                {"pretrain_epochs": 2,
                 "method": {"kind": "replay4ncl", "per_class": 4, "t_star": 16,
                            "lr_divisor": 2.0}}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(suite.name, "grid");
        assert_eq!(suite.len(), 4);
        assert_eq!(suite.jobs[0].method, MethodSpec::baseline());
        assert_eq!(suite.jobs[1].config.seed, 42);
        assert_eq!(suite.jobs[1].config.cl_epochs, 3);
        assert_eq!(suite.jobs[2].config.insertion_layer, 2);
        assert_eq!(suite.jobs[3].config.pretrain_epochs, 2);
        assert_eq!(suite.jobs[3].method.lr_divisor, 2.0);
        // Default labels name the method and insertion layer.
        assert_eq!(suite.jobs[3].label, "Replay4NCL@L1#3");
        // Everything else is the smoke preset.
        assert_eq!(suite.jobs[0].config.data, ScenarioConfig::smoke().data);
    }

    #[test]
    fn json_custom_resolver_and_per_job_base() {
        let custom = |name: &str| match name {
            "tiny" => {
                let mut c = ScenarioConfig::smoke();
                c.cl_epochs = 1;
                Some(c)
            }
            other => builtin_base(other),
        };
        let suite = Suite::from_json_str_with(
            r#"{"name": "s", "base": "tiny", "jobs": [
                 {"label": "a", "method": {"kind": "baseline"}},
                 {"label": "b", "base": "paper", "method": {"kind": "baseline"}}
               ]}"#,
            &custom,
        )
        .unwrap();
        assert_eq!(suite.jobs[0].config.cl_epochs, 1);
        assert_eq!(suite.jobs[1].config.data.channels, 700);
    }

    #[test]
    fn json_schema_violations_are_parse_errors() {
        let cases = [
            r#"{"jobs": []}"#,                                          // no name
            r#"{"name": "s"}"#,                                         // no jobs
            r#"{"name": "s", "jobs": [{"method": {"kind": "nope"}}]}"#, // bad kind
            r#"{"name": "s", "jobs": [{"label": "x"}]}"#,               // no method
            r#"{"name": "s", "base": "mars", "jobs": [{"method": {"kind": "baseline"}}]}"#,
            r#"{"name": "s", "jobs": [{"method": {"kind": "spiking_lr"}}]}"#, // no per_class
            r#"{"name": "s", "jobs": [{"seed": -3, "method": {"kind": "baseline"}}]}"#,
        ];
        for json in cases {
            assert!(
                matches!(Suite::from_json_str(json), Err(RuntimeError::Parse { .. })),
                "{json} should be a parse error"
            );
        }
        // An empty jobs array is a suite-level validation error.
        assert!(matches!(
            Suite::from_json_str(r#"{"name": "s", "jobs": []}"#),
            Err(RuntimeError::InvalidSuite { .. })
        ));
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        assert_eq!(derive_seed(7, 1), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 1), derive_seed(7, 2));
        assert_ne!(derive_seed(7, 1), derive_seed(8, 1));
    }

    #[test]
    fn seed_replicates_keep_base_and_derive_rest() {
        let job = Job::new("j", ScenarioConfig::smoke(), MethodSpec::baseline());
        let reps = Suite::seed_replicates(&job, 3);
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0].config.seed, job.config.seed);
        assert_eq!(reps[0].label, "j#0");
        assert_ne!(reps[1].config.seed, reps[2].config.seed);
        assert_eq!(reps[1].config.seed, derive_seed(job.config.seed, 1));
    }
}
