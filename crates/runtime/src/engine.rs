//! The worker-pool experiment executor.
//!
//! [`Engine::run`] executes every job of a [`Suite`] on a pool of worker
//! threads fed by a [`ShardedQueue`] of job indices. Each worker pops an
//! index, runs the job's scenario end to end (pre-training through the
//! shared single-flight cache in `replay4ncl::cache`, then the CL phase),
//! and records the result under that index. Results are re-assembled in
//! suite order, so the produced [`SuiteReport`] is **bit-identical
//! regardless of worker count or completion order** — the determinism
//! contract the workspace's seeded-RNG tests extend to the engine level.
//!
//! Progress is streamed to an [`EventSink`] as jobs start and finish;
//! sinks must be `Sync` because workers emit concurrently.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use replay4ncl::{cache, scenario, NclError, ScenarioResult};

use crate::error::RuntimeError;
use crate::job::{Job, Suite};
use crate::queue::ShardedQueue;
use crate::report::{JobRecord, SuiteReport};

/// A progress event emitted while a suite executes.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The suite started; `workers` is the effective pool size.
    SuiteStarted {
        /// Suite name.
        suite: String,
        /// Number of jobs queued.
        jobs: usize,
        /// Worker threads actually spawned.
        workers: usize,
    },
    /// A worker picked up a job.
    JobStarted {
        /// Index of the job in suite order.
        index: usize,
        /// Job label.
        label: String,
        /// Worker that runs it.
        worker: usize,
    },
    /// A job completed successfully.
    JobFinished {
        /// Index of the job in suite order.
        index: usize,
        /// Job label.
        label: String,
        /// Worker that ran it.
        worker: usize,
        /// Catastrophic-forgetting measure of the result.
        forgetting: f64,
        /// Final new-task accuracy of the result.
        new_acc: f64,
    },
    /// A job failed; the suite still drains the queue before reporting
    /// the (first, in suite order) failure.
    JobFailed {
        /// Index of the job in suite order.
        index: usize,
        /// Job label.
        label: String,
        /// Worker that ran it.
        worker: usize,
        /// Rendered failure.
        error: String,
    },
    /// All jobs finished.
    SuiteFinished {
        /// Suite name.
        suite: String,
        /// Number of jobs run.
        jobs: usize,
    },
}

/// Receiver of engine progress events. Workers emit concurrently, so
/// implementations must be `Sync`.
pub trait EventSink: Sync {
    /// Called once per event, in emission order per worker (no global
    /// ordering across workers).
    fn event(&self, event: &Event);
}

/// Sink that discards every event (the [`Engine::run`] default).
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&self, _event: &Event) {}
}

/// Sink that prints one progress line per event to stderr, with a running
/// `done/total` counter.
#[derive(Debug, Default)]
pub struct StderrProgress {
    completed: AtomicUsize,
}

impl EventSink for StderrProgress {
    fn event(&self, event: &Event) {
        match event {
            Event::SuiteStarted {
                suite,
                jobs,
                workers,
            } => eprintln!("suite '{suite}': {jobs} jobs on {workers} workers"),
            Event::JobStarted { label, worker, .. } => {
                eprintln!("  [worker {worker}] {label} ...");
            }
            Event::JobFinished {
                label,
                forgetting,
                new_acc,
                ..
            } => {
                let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "  [{done} done] {label}: new acc {:.2}%, forgetting {:.2}%",
                    100.0 * new_acc,
                    100.0 * forgetting,
                );
            }
            Event::JobFailed { label, error, .. } => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                eprintln!("  FAILED {label}: {error}");
            }
            Event::SuiteFinished { suite, jobs } => {
                eprintln!("suite '{suite}': {jobs} jobs finished");
            }
        }
    }
}

/// The concurrent experiment executor.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    workers: usize,
}

impl Engine {
    /// Creates an engine with the given worker-pool size (clamped to at
    /// least 1). The pool is additionally capped to the job count per run,
    /// so an over-provisioned engine never spawns idle threads.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Engine {
            workers: workers.max(1),
        }
    }

    /// Configured pool size.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job of the suite and assembles the report in suite
    /// order. Equivalent to [`Engine::run_with_events`] with a
    /// [`NullSink`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidSuite`] for malformed suites and
    /// [`RuntimeError::Job`] (the first failing job in suite order) if a
    /// scenario fails.
    pub fn run(&self, suite: &Suite) -> Result<SuiteReport, RuntimeError> {
        self.run_with_events(suite, &NullSink)
    }

    /// Runs the suite, streaming progress events to `sink`.
    ///
    /// Every queued job is attempted even if one fails (so a long sweep
    /// surfaces *all* progress before erroring); the first failure in
    /// suite order is then returned.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_with_events(
        &self,
        suite: &Suite,
        sink: &dyn EventSink,
    ) -> Result<SuiteReport, RuntimeError> {
        suite.validate()?;
        let workers = self.workers.min(suite.len());
        sink.event(&Event::SuiteStarted {
            suite: suite.name.clone(),
            jobs: suite.len(),
            workers,
        });

        let queue = ShardedQueue::new(workers, 0..suite.len());
        let slots: Vec<Mutex<Option<Result<ScenarioResult, NclError>>>> =
            (0..suite.len()).map(|_| Mutex::new(None)).collect();

        let scope_result = crossbeam::thread::scope(|scope| {
            for worker in 0..workers {
                let (queue, slots) = (&queue, &slots);
                scope.spawn(move |_| {
                    while let Some(index) = queue.pop(worker) {
                        let job = &suite.jobs[index];
                        sink.event(&Event::JobStarted {
                            index,
                            label: job.label.clone(),
                            worker,
                        });
                        let outcome = run_job(job);
                        match &outcome {
                            Ok(result) => sink.event(&Event::JobFinished {
                                index,
                                label: job.label.clone(),
                                worker,
                                forgetting: result.forgetting(),
                                new_acc: result.final_new_acc(),
                            }),
                            Err(e) => sink.event(&Event::JobFailed {
                                index,
                                label: job.label.clone(),
                                worker,
                                error: e.to_string(),
                            }),
                        }
                        *slots[index].lock() = Some(outcome);
                    }
                });
            }
        });
        if let Err(payload) = scope_result {
            std::panic::resume_unwind(payload);
        }

        sink.event(&Event::SuiteFinished {
            suite: suite.name.clone(),
            jobs: suite.len(),
        });

        assemble_report(suite, slots.into_iter().map(Mutex::into_inner))
    }
}

/// Assembles per-job outcomes (in suite order) into a report, or the
/// first failure *in suite order* — not completion order — wrapped with
/// its job label.
fn assemble_report(
    suite: &Suite,
    outcomes: impl IntoIterator<Item = Option<Result<ScenarioResult, NclError>>>,
) -> Result<SuiteReport, RuntimeError> {
    let mut records = Vec::with_capacity(suite.len());
    for (job, outcome) in suite.jobs.iter().zip(outcomes) {
        match outcome {
            Some(Ok(result)) => records.push(JobRecord {
                label: job.label.clone(),
                result,
            }),
            Some(Err(source)) => {
                return Err(RuntimeError::Job {
                    label: job.label.clone(),
                    source,
                })
            }
            None => unreachable!("queue drained but job {} never ran", job.label),
        }
    }
    Ok(SuiteReport::new(suite.name.clone(), records))
}

/// Runs one job end to end: pre-training (through the shared cache, which
/// single-flights concurrent workers with the same pre-train key) plus the
/// CL scenario.
fn run_job(job: &Job) -> Result<ScenarioResult, NclError> {
    let (network, pretrain_acc) = cache::pretrained_network(&job.config)?;
    scenario::run_method(&job.config, &job.method, &network, pretrain_acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use replay4ncl::{MethodSpec, ScenarioConfig};

    fn tiny_config(seed: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::smoke();
        c.pretrain_epochs = 2;
        c.cl_epochs = 2;
        c.seed = seed;
        c
    }

    fn tiny_suite() -> Suite {
        let config = tiny_config(0xE46);
        let t_star = (config.data.steps * 2 / 5).max(1);
        Suite::new("engine-smoke")
            .with_job(Job::new("baseline", config.clone(), MethodSpec::baseline()))
            .with_job(Job::new(
                "spikinglr",
                config.clone(),
                MethodSpec::spiking_lr(2),
            ))
            .with_job(Job::new(
                "replay4ncl",
                config,
                MethodSpec::replay4ncl(2, t_star),
            ))
    }

    /// Sink that records every event (order-insensitive assertions only).
    #[derive(Default)]
    struct Recorder(Mutex<Vec<Event>>);

    impl EventSink for Recorder {
        fn event(&self, event: &Event) {
            self.0.lock().push(event.clone());
        }
    }

    #[test]
    fn runs_jobs_and_reports_in_suite_order() {
        let suite = tiny_suite();
        let recorder = Recorder::default();
        let report = Engine::new(2)
            .run_with_events(&suite, &recorder)
            .expect("suite runs");
        let labels: Vec<&str> = report.jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(labels, ["baseline", "spikinglr", "replay4ncl"]);
        assert_eq!(report.jobs[0].result.method, "Baseline");
        assert_eq!(report.jobs[2].result.method, "Replay4NCL");

        let events = recorder.0.into_inner();
        let started = events
            .iter()
            .filter(|e| matches!(e, Event::JobStarted { .. }))
            .count();
        let finished = events
            .iter()
            .filter(|e| matches!(e, Event::JobFinished { .. }))
            .count();
        assert_eq!(started, 3);
        assert_eq!(finished, 3);
        assert!(matches!(
            events.first(),
            Some(Event::SuiteStarted { workers: 2, .. })
        ));
        assert!(matches!(events.last(), Some(Event::SuiteFinished { .. })));
    }

    #[test]
    fn worker_pool_caps_to_job_count() {
        let suite = tiny_suite();
        let recorder = Recorder::default();
        Engine::new(64)
            .run_with_events(&suite, &recorder)
            .expect("suite runs");
        let events = recorder.0.into_inner();
        assert!(matches!(
            events.first(),
            Some(Event::SuiteStarted { workers: 3, .. })
        ));
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(Engine::new(0).workers(), 1);
    }

    #[test]
    fn invalid_suite_is_rejected_before_spawning() {
        let err = Engine::new(2).run(&Suite::new("empty")).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidSuite { .. }));
    }

    #[test]
    fn invalid_job_is_caught_by_suite_validation_before_spawning() {
        let mut bad = MethodSpec::replay4ncl(2, 16);
        bad.replay.as_mut().unwrap().per_class = 0;
        let config = tiny_config(0xBAD);
        let suite = Suite::new("fails")
            .with_job(Job::new("ok", config.clone(), MethodSpec::baseline()))
            .with_job(Job::new("broken", config, bad));
        let err = Engine::new(2).run(&suite).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidSuite { .. }), "{err}");
    }

    fn fake_result() -> replay4ncl::ScenarioResult {
        use ncl_hw::memory::MemoryFootprint;
        use ncl_hw::{HardwareProfile, OpCounts};
        replay4ncl::ScenarioResult {
            method: "Fake".into(),
            insertion_layer: 0,
            operating_steps: 8,
            pretrain_acc: 0.9,
            epochs: vec![replay4ncl::EpochRecord {
                epoch: 0,
                mean_loss: 0.1,
                old_acc: 0.8,
                new_acc: 0.7,
                ops: OpCounts::default(),
            }],
            prep_ops: OpCounts::default(),
            memory: MemoryFootprint {
                samples: 0,
                payload_bits_per_sample: 0,
                total_bits: 0,
            },
            profile: HardwareProfile::embedded(),
        }
    }

    fn runtime_failure() -> NclError {
        NclError::InvalidConfig {
            what: "simulated",
            detail: "runtime failure".into(),
        }
    }

    #[test]
    fn assembly_reports_the_first_failure_in_suite_order() {
        // Runtime job failures (past suite validation) cannot be provoked
        // from a valid config, so the drain-then-report contract is tested
        // on the assembly step directly: jobs 1 *and* 2 failed, and the
        // error must name job 1 — suite order, not completion order.
        let config = tiny_config(0xFA11);
        let suite = Suite::new("partial")
            .with_job(Job::new("a", config.clone(), MethodSpec::baseline()))
            .with_job(Job::new("b", config.clone(), MethodSpec::baseline()))
            .with_job(Job::new("c", config, MethodSpec::baseline()));
        let outcomes = vec![
            Some(Ok(fake_result())),
            Some(Err(runtime_failure())),
            Some(Err(runtime_failure())),
        ];
        match assemble_report(&suite, outcomes) {
            Err(RuntimeError::Job { label, .. }) => assert_eq!(label, "b"),
            other => panic!("expected Job error, got {other:?}"),
        }
        // All-success assembly keeps suite order.
        let ok = assemble_report(
            &suite,
            (0..3).map(|_| Some(Ok(fake_result()))).collect::<Vec<_>>(),
        )
        .expect("assembles");
        assert_eq!(ok.jobs.len(), 3);
        assert_eq!(ok.jobs[2].label, "c");
    }
}
