//! Aggregated suite reports.
//!
//! A [`SuiteReport`] holds every job's [`ScenarioResult`] in suite order
//! plus the cross-job summaries the sweep binaries print: best/worst
//! forgetting and latency/energy/memory totals. The JSON encoding
//! ([`SuiteReport::to_json`]) is a deterministic function of the results —
//! object keys are sorted and floats use their shortest round-trip
//! rendering — so two reports from the same suite compare byte-identical,
//! which is how the worker-count-invariance tests check the engine.

use serde::{Deserialize, Serialize};
use serde_json::Value;

use replay4ncl::{report as text, ScenarioResult};

/// One job's outcome, labelled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job's label.
    pub label: String,
    /// The full scenario result.
    pub result: ScenarioResult,
}

/// Cross-job summary statistics of a suite run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteSummary {
    /// Number of jobs.
    pub jobs: usize,
    /// Label and value of the lowest (best) forgetting.
    pub best_forgetting: (String, f64),
    /// Label and value of the highest (worst) forgetting.
    pub worst_forgetting: (String, f64),
    /// Sum of per-job CL latency, seconds.
    pub total_latency_s: f64,
    /// Sum of per-job CL energy, joules.
    pub total_energy_j: f64,
    /// Sum of per-job latent-memory footprints, bits.
    pub total_memory_bits: u64,
    /// Sum of per-job synaptic operations.
    pub total_synaptic_ops: u64,
}

/// The aggregated outcome of one suite run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Suite name.
    pub suite: String,
    /// Per-job outcomes, in suite order.
    pub jobs: Vec<JobRecord>,
}

impl SuiteReport {
    /// Assembles a report from per-job records (already in suite order).
    #[must_use]
    pub fn new(suite: String, jobs: Vec<JobRecord>) -> Self {
        SuiteReport { suite, jobs }
    }

    /// Looks a job's result up by label (first match).
    #[must_use]
    pub fn job(&self, label: &str) -> Option<&ScenarioResult> {
        self.jobs
            .iter()
            .find(|j| j.label == label)
            .map(|j| &j.result)
    }

    /// Computes the cross-job summary. Totals are accumulated in suite
    /// order so the floating-point sums are deterministic.
    #[must_use]
    pub fn summary(&self) -> SuiteSummary {
        let mut best: Option<(String, f64)> = None;
        let mut worst: Option<(String, f64)> = None;
        let (mut latency, mut energy) = (0.0f64, 0.0f64);
        let (mut memory, mut synops) = (0u64, 0u64);
        for job in &self.jobs {
            let f = job.result.forgetting();
            if best.as_ref().is_none_or(|(_, b)| f < *b) {
                best = Some((job.label.clone(), f));
            }
            if worst.as_ref().is_none_or(|(_, w)| f > *w) {
                worst = Some((job.label.clone(), f));
            }
            let cost = job.result.total_cost();
            latency += cost.latency.seconds();
            energy += cost.energy.joules();
            memory += job.result.memory.total_bits;
            synops += job.result.total_ops().synaptic_ops;
        }
        let zero = || ("-".to_owned(), 0.0);
        SuiteSummary {
            jobs: self.jobs.len(),
            best_forgetting: best.unwrap_or_else(zero),
            worst_forgetting: worst.unwrap_or_else(zero),
            total_latency_s: latency,
            total_energy_j: energy,
            total_memory_bits: memory,
            total_synaptic_ops: synops,
        }
    }

    /// Deterministic JSON encoding of the full report (jobs + summary).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let summary = self.summary();
        Value::Object(
            [
                ("suite".to_owned(), Value::from(self.suite.as_str())),
                (
                    "jobs".to_owned(),
                    self.jobs
                        .iter()
                        .map(|j| {
                            Value::Object(
                                [
                                    ("label".to_owned(), Value::from(j.label.as_str())),
                                    ("result".to_owned(), result_to_json(&j.result)),
                                ]
                                .into_iter()
                                .collect(),
                            )
                        })
                        .collect(),
                ),
                (
                    "summary".to_owned(),
                    Value::Object(
                        [
                            ("jobs".to_owned(), Value::from(summary.jobs)),
                            (
                                "best_forgetting".to_owned(),
                                stat_to_json(&summary.best_forgetting),
                            ),
                            (
                                "worst_forgetting".to_owned(),
                                stat_to_json(&summary.worst_forgetting),
                            ),
                            (
                                "total_latency_s".to_owned(),
                                Value::from(summary.total_latency_s),
                            ),
                            (
                                "total_energy_j".to_owned(),
                                Value::from(summary.total_energy_j),
                            ),
                            (
                                "total_memory_bits".to_owned(),
                                Value::from(summary.total_memory_bits),
                            ),
                            (
                                "total_synaptic_ops".to_owned(),
                                Value::from(summary.total_synaptic_ops),
                            ),
                        ]
                        .into_iter()
                        .collect(),
                    ),
                ),
            ]
            .into_iter()
            .collect(),
        )
    }

    /// Renders the report as the standard text table plus summary lines.
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .jobs
            .iter()
            .map(|j| {
                let r = &j.result;
                let cost = r.total_cost();
                vec![
                    j.label.clone(),
                    r.method.clone(),
                    format!("{}", r.insertion_layer),
                    format!("{}", r.operating_steps),
                    text::pct(r.final_old_acc()),
                    text::pct(r.final_new_acc()),
                    text::pct(r.forgetting()),
                    format!("{}", cost.latency),
                    format!("{}", cost.energy),
                    format!("{:.2}", r.memory.kib()),
                ]
            })
            .collect();
        let table = text::render_table(
            &[
                "job",
                "method",
                "ins",
                "T",
                "old acc",
                "new acc",
                "forgetting",
                "latency",
                "energy",
                "mem KiB",
            ],
            &rows,
        );
        let s = self.summary();
        format!(
            "=== suite '{}': {} jobs ===\n{table}\n\
             best forgetting : {} ({})\n\
             worst forgetting: {} ({})\n\
             totals          : latency {:.6} s, energy {:.9} J, latent memory {} bits",
            self.suite,
            s.jobs,
            text::pct(s.best_forgetting.1),
            s.best_forgetting.0,
            text::pct(s.worst_forgetting.1),
            s.worst_forgetting.0,
            s.total_latency_s,
            s.total_energy_j,
            s.total_memory_bits,
        )
    }
}

fn stat_to_json(stat: &(String, f64)) -> Value {
    Value::Object(
        [
            ("label".to_owned(), Value::from(stat.0.as_str())),
            ("value".to_owned(), Value::from(stat.1)),
        ]
        .into_iter()
        .collect(),
    )
}

/// Encodes a full [`ScenarioResult`] — accuracy curve, op counts, memory
/// and modeled cost — as a deterministic JSON tree.
#[must_use]
pub fn result_to_json(result: &ScenarioResult) -> Value {
    let cost = result.total_cost();
    Value::Object(
        [
            ("method".to_owned(), Value::from(result.method.as_str())),
            (
                "insertion_layer".to_owned(),
                Value::from(result.insertion_layer),
            ),
            (
                "operating_steps".to_owned(),
                Value::from(result.operating_steps),
            ),
            ("pretrain_acc".to_owned(), Value::from(result.pretrain_acc)),
            (
                "final_old_acc".to_owned(),
                Value::from(result.final_old_acc()),
            ),
            (
                "final_new_acc".to_owned(),
                Value::from(result.final_new_acc()),
            ),
            ("forgetting".to_owned(), Value::from(result.forgetting())),
            (
                "epochs".to_owned(),
                result
                    .epochs
                    .iter()
                    .map(|e| {
                        Value::Object(
                            [
                                ("epoch".to_owned(), Value::from(e.epoch)),
                                ("mean_loss".to_owned(), Value::from(e.mean_loss)),
                                ("old_acc".to_owned(), Value::from(e.old_acc)),
                                ("new_acc".to_owned(), Value::from(e.new_acc)),
                                ("synaptic_ops".to_owned(), Value::from(e.ops.synaptic_ops)),
                                (
                                    "neuron_updates".to_owned(),
                                    Value::from(e.ops.neuron_updates),
                                ),
                            ]
                            .into_iter()
                            .collect(),
                        )
                    })
                    .collect(),
            ),
            (
                "memory".to_owned(),
                Value::Object(
                    [
                        ("samples".to_owned(), Value::from(result.memory.samples)),
                        (
                            "payload_bits_per_sample".to_owned(),
                            Value::from(result.memory.payload_bits_per_sample),
                        ),
                        (
                            "total_bits".to_owned(),
                            Value::from(result.memory.total_bits),
                        ),
                    ]
                    .into_iter()
                    .collect(),
                ),
            ),
            (
                "cost".to_owned(),
                Value::Object(
                    [
                        ("latency_s".to_owned(), Value::from(cost.latency.seconds())),
                        ("energy_j".to_owned(), Value::from(cost.energy.joules())),
                        (
                            "synaptic_ops".to_owned(),
                            Value::from(cost.ops.synaptic_ops),
                        ),
                        (
                            "weight_updates".to_owned(),
                            Value::from(cost.ops.weight_updates),
                        ),
                        (
                            "mem_read_bits".to_owned(),
                            Value::from(cost.ops.mem_read_bits),
                        ),
                        (
                            "mem_write_bits".to_owned(),
                            Value::from(cost.ops.mem_write_bits),
                        ),
                    ]
                    .into_iter()
                    .collect(),
                ),
            ),
        ]
        .into_iter()
        .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_hw::memory::MemoryFootprint;
    use ncl_hw::{HardwareProfile, OpCounts};
    use replay4ncl::EpochRecord;

    fn fake(label: &str, old: f64, ops: u64, bits: u64) -> JobRecord {
        JobRecord {
            label: label.into(),
            result: ScenarioResult {
                method: "Fake".into(),
                insertion_layer: 1,
                operating_steps: 16,
                pretrain_acc: 0.9,
                epochs: vec![EpochRecord {
                    epoch: 0,
                    mean_loss: 0.5,
                    old_acc: old,
                    new_acc: 0.7,
                    ops: OpCounts {
                        synaptic_ops: ops,
                        ..OpCounts::default()
                    },
                }],
                prep_ops: OpCounts::default(),
                memory: MemoryFootprint {
                    samples: 3,
                    payload_bits_per_sample: bits / 3,
                    total_bits: bits,
                },
                profile: HardwareProfile::embedded(),
            },
        }
    }

    fn report() -> SuiteReport {
        SuiteReport::new(
            "s".into(),
            vec![fake("good", 0.88, 1000, 600), fake("bad", 0.5, 3000, 900)],
        )
    }

    #[test]
    fn summary_finds_extremes_and_totals() {
        let s = report().summary();
        assert_eq!(s.jobs, 2);
        assert_eq!(s.best_forgetting.0, "good");
        assert!((s.best_forgetting.1 - 0.02).abs() < 1e-12);
        assert_eq!(s.worst_forgetting.0, "bad");
        assert!((s.worst_forgetting.1 - 0.4).abs() < 1e-12);
        assert_eq!(s.total_memory_bits, 1500);
        assert_eq!(s.total_synaptic_ops, 4000);
        assert!(s.total_latency_s > 0.0);
        assert!(s.total_energy_j > 0.0);
    }

    #[test]
    fn empty_report_summary_is_well_defined() {
        let s = SuiteReport::new("empty".into(), Vec::new()).summary();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.best_forgetting.0, "-");
        assert_eq!(s.total_memory_bits, 0);
    }

    #[test]
    fn job_lookup_by_label() {
        let r = report();
        assert!(r.job("good").is_some());
        assert!((r.job("bad").unwrap().final_old_acc() - 0.5).abs() < 1e-12);
        assert!(r.job("missing").is_none());
    }

    #[test]
    fn json_is_deterministic_and_parseable() {
        let a = report().to_json().to_json();
        let b = report().to_json().to_json();
        assert_eq!(a, b);
        let parsed = serde_json::from_str(&a).expect("valid JSON");
        assert_eq!(parsed.get("suite").and_then(Value::as_str), Some("s"));
        assert_eq!(
            parsed.get("jobs").and_then(Value::as_array).map(Vec::len),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("summary")
                .and_then(|s| s.get("jobs"))
                .and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn render_contains_labels_and_summary() {
        let text = report().render();
        assert!(text.contains("good"));
        assert!(text.contains("bad"));
        assert!(text.contains("best forgetting"));
        assert!(text.contains("2 jobs"));
    }
}
