//! Property-based tests of the hardware cost models: additivity,
//! monotonicity and profile-invariant orderings.

use ncl_hw::{energy, latency, CostReport, HardwareProfile, OpCounts};
use proptest::prelude::*;

fn ops_strategy() -> impl Strategy<Value = OpCounts> {
    (
        0u64..1_000_000,
        0u64..100_000,
        0u64..50_000,
        0u64..10_000,
        0u64..500_000,
        0u64..500_000,
    )
        .prop_map(|(s, n, w, c, r, wr)| OpCounts {
            synaptic_ops: s,
            neuron_updates: n,
            weight_updates: w,
            codec_frames: c,
            mem_read_bits: r,
            mem_write_bits: wr,
        })
}

fn profiles() -> [HardwareProfile; 3] {
    [
        HardwareProfile::embedded(),
        HardwareProfile::loihi_like(),
        HardwareProfile::edge_gpu_like(),
    ]
}

proptest! {
    #[test]
    fn cost_is_additive(a in ops_strategy(), b in ops_strategy()) {
        for profile in profiles() {
            let la = latency::latency_of(&a, &profile).seconds();
            let lb = latency::latency_of(&b, &profile).seconds();
            let lsum = latency::latency_of(&(a + b), &profile).seconds();
            prop_assert!((lsum - (la + lb)).abs() <= 1e-9 * lsum.max(1e-30));

            let ea = energy::energy_of(&a, &profile).joules();
            let eb = energy::energy_of(&b, &profile).joules();
            let esum = energy::energy_of(&(a + b), &profile).joules();
            prop_assert!((esum - (ea + eb)).abs() <= 1e-9 * esum.max(1e-30));
        }
    }

    #[test]
    fn more_work_never_costs_less(a in ops_strategy(), extra in ops_strategy()) {
        for profile in profiles() {
            let base = CostReport::of(&a, &profile);
            let more = CostReport::of(&(a + extra), &profile);
            prop_assert!(more.latency >= base.latency);
            prop_assert!(more.energy >= base.energy);
        }
    }

    #[test]
    fn latency_ordering_is_profile_invariant_for_scaled_work(
        a in ops_strategy(), scale in 2u64..10
    ) {
        // Same op mix at different scales orders identically under every
        // profile (scaling preserves the mix).
        let scaled = OpCounts {
            synaptic_ops: a.synaptic_ops * scale,
            neuron_updates: a.neuron_updates * scale,
            weight_updates: a.weight_updates * scale,
            codec_frames: a.codec_frames * scale,
            mem_read_bits: a.mem_read_bits * scale,
            mem_write_bits: a.mem_write_bits * scale,
        };
        for profile in profiles() {
            let small = CostReport::of(&a, &profile);
            let big = CostReport::of(&scaled, &profile);
            prop_assert!(big.latency >= small.latency);
            if !a.is_zero() {
                let ratio = big.latency.ratio_to(small.latency);
                prop_assert!((ratio - scale as f64).abs() < 1e-6,
                    "scaling must be exact: {ratio} vs {scale}");
            }
        }
    }

    #[test]
    fn zero_work_costs_nothing_everywhere(_x in 0u8..1) {
        for profile in profiles() {
            let r = CostReport::of(&OpCounts::default(), &profile);
            prop_assert_eq!(r.latency.seconds(), 0.0);
            prop_assert_eq!(r.energy.joules(), 0.0);
        }
    }

    #[test]
    fn normalization_identities(a in ops_strategy()) {
        prop_assume!(!a.is_zero());
        for profile in profiles() {
            let r = CostReport::of(&a, &profile);
            prop_assert!((r.normalized_latency(&r) - 1.0).abs() < 1e-12);
            prop_assert!((r.normalized_energy(&r) - 1.0).abs() < 1e-12);
            prop_assert!((r.speedup_vs(&r) - 1.0).abs() < 1e-12);
            prop_assert!(r.energy_saving_vs(&r).abs() < 1e-12);
        }
    }
}
