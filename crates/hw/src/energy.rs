//! Energy model: counted events × per-event energies.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

use crate::ops::OpCounts;
use crate::profile::HardwareProfile;

/// An energy quantity in joules (newtype for unit safety).
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Constructs from joules.
    #[must_use]
    pub fn from_joules(j: f64) -> Self {
        Energy(j)
    }

    /// Constructs from microjoules.
    #[must_use]
    pub fn from_microjoules(uj: f64) -> Self {
        Energy(uj * 1e-6)
    }

    /// Value in joules.
    #[must_use]
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Value in microjoules.
    #[must_use]
    pub fn microjoules(self) -> f64 {
        self.0 * 1e6
    }

    /// Ratio `self / other`; `f64::INFINITY` if `other` is zero.
    #[must_use]
    pub fn ratio_to(self, other: Energy) -> f64 {
        if other.0 == 0.0 {
            f64::INFINITY
        } else {
            self.0 / other.0
        }
    }
}

impl Add for Energy {
    type Output = Energy;

    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0;
        if j >= 1.0 {
            write!(f, "{j:.3} J")
        } else if j >= 1e-3 {
            write!(f, "{:.3} mJ", j * 1e3)
        } else if j >= 1e-6 {
            write!(f, "{:.3} uJ", j * 1e6)
        } else {
            write!(f, "{:.3} nJ", j * 1e9)
        }
    }
}

/// Computes the energy of counted work under a hardware profile.
#[must_use]
pub fn energy_of(ops: &OpCounts, profile: &HardwareProfile) -> Energy {
    let pj = ops.synaptic_ops as f64 * profile.e_synop_pj
        + ops.neuron_updates as f64 * profile.e_neuron_pj
        + ops.weight_updates as f64 * profile.e_weight_update_pj
        + ops.codec_frames as f64 * profile.e_codec_pj_per_frame
        + (ops.mem_read_bits + ops.mem_write_bits) as f64 * profile.e_mem_pj_per_bit;
    Energy(pj * 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_zero_energy() {
        let e = energy_of(&OpCounts::default(), &HardwareProfile::embedded());
        assert_eq!(e, Energy::ZERO);
    }

    #[test]
    fn known_value() {
        let profile = HardwareProfile::embedded();
        let ops = OpCounts {
            synaptic_ops: 1000,
            ..OpCounts::default()
        };
        let e = energy_of(&ops, &profile);
        assert!((e.joules() - 1000.0 * profile.e_synop_pj * 1e-12).abs() < 1e-18);
    }

    #[test]
    fn all_counters_contribute() {
        let profile = HardwareProfile::embedded();
        let base = OpCounts {
            synaptic_ops: 10,
            ..OpCounts::default()
        };
        let e0 = energy_of(&base, &profile);
        for f in [
            |o: &mut OpCounts| o.neuron_updates = 5,
            |o: &mut OpCounts| o.weight_updates = 5,
            |o: &mut OpCounts| o.codec_frames = 5,
            |o: &mut OpCounts| o.mem_read_bits = 100,
            |o: &mut OpCounts| o.mem_write_bits = 100,
        ] as [fn(&mut OpCounts); 5]
        {
            let mut o = base;
            f(&mut o);
            assert!(energy_of(&o, &profile) > e0);
        }
    }

    #[test]
    fn units_and_display() {
        assert!((Energy::from_microjoules(2.0).joules() - 2e-6).abs() < 1e-15);
        assert!((Energy::from_joules(1.0).microjoules() - 1e6).abs() < 1e-3);
        assert_eq!(Energy::from_joules(2.5).to_string(), "2.500 J");
        assert_eq!(Energy::from_joules(2.5e-3).to_string(), "2.500 mJ");
        assert_eq!(Energy::from_joules(2.5e-6).to_string(), "2.500 uJ");
        assert_eq!(Energy::from_joules(2.5e-9).to_string(), "2.500 nJ");
    }

    #[test]
    fn ratio_and_add() {
        let a = Energy::from_joules(3.0);
        let b = Energy::from_joules(1.5);
        assert!((a.ratio_to(b) - 2.0).abs() < 1e-12);
        assert!((a + b).joules() > a.joules());
        assert_eq!(a.ratio_to(Energy::ZERO), f64::INFINITY);
    }
}
