//! Hardware profiles: per-event energies and throughput figures.
//!
//! Default constants are 45/28 nm-class values in the range used by the
//! neuromorphic-accelerator literature (e.g. Loihi-class synaptic-op
//! energies of a few pJ, SRAM access fractions of a pJ per bit). Absolute
//! numbers only set the scale of reports; every claim reproduced from the
//! paper is a *ratio* between two runs under the same profile.

use serde::{Deserialize, Serialize};

/// Energy, throughput and clock parameters of an execution target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Human-readable profile name.
    pub name: String,
    /// Energy per synaptic accumulate, picojoule.
    pub e_synop_pj: f64,
    /// Energy per neuron/integrator update, picojoule.
    pub e_neuron_pj: f64,
    /// Energy per weight update, picojoule.
    pub e_weight_update_pj: f64,
    /// Energy per bit of latent-memory traffic, picojoule.
    pub e_mem_pj_per_bit: f64,
    /// Energy per codec frame operation, picojoule.
    pub e_codec_pj_per_frame: f64,
    /// Parallel compute lanes (events retired per cycle).
    pub lanes: f64,
    /// Cycles per synaptic op (per lane).
    pub cycles_per_synop: f64,
    /// Cycles per neuron update (per lane).
    pub cycles_per_neuron_update: f64,
    /// Cycles per weight update (per lane).
    pub cycles_per_weight_update: f64,
    /// Cycles per codec frame (per lane).
    pub cycles_per_codec_frame: f64,
    /// Memory bandwidth, bits per cycle.
    pub mem_bits_per_cycle: f64,
    /// Core clock, Hz.
    pub clock_hz: f64,
}

impl HardwareProfile {
    /// Embedded neuromorphic edge device (the paper's deployment target):
    /// modest clock, few lanes, SRAM-class memory energy.
    #[must_use]
    pub fn embedded() -> Self {
        HardwareProfile {
            name: "embedded-edge".into(),
            e_synop_pj: 2.0,
            e_neuron_pj: 8.0,
            e_weight_update_pj: 12.0,
            e_mem_pj_per_bit: 0.3,
            e_codec_pj_per_frame: 4.0,
            lanes: 8.0,
            cycles_per_synop: 1.0,
            cycles_per_neuron_update: 2.0,
            cycles_per_weight_update: 4.0,
            cycles_per_codec_frame: 2.0,
            mem_bits_per_cycle: 64.0,
            clock_hz: 200e6,
        }
    }

    /// Loihi-like manycore: very low synaptic-op energy, high parallelism.
    #[must_use]
    pub fn loihi_like() -> Self {
        HardwareProfile {
            name: "loihi-like".into(),
            e_synop_pj: 0.4,
            e_neuron_pj: 2.0,
            e_weight_update_pj: 6.0,
            e_mem_pj_per_bit: 0.15,
            e_codec_pj_per_frame: 2.0,
            lanes: 128.0,
            cycles_per_synop: 1.0,
            cycles_per_neuron_update: 1.0,
            cycles_per_weight_update: 2.0,
            cycles_per_codec_frame: 1.0,
            mem_bits_per_cycle: 512.0,
            clock_hz: 100e6,
        }
    }

    /// Edge-GPU-like device: high clock and bandwidth, but much higher
    /// per-event energy (dense execution does not exploit sparsity).
    #[must_use]
    pub fn edge_gpu_like() -> Self {
        HardwareProfile {
            name: "edge-gpu-like".into(),
            e_synop_pj: 20.0,
            e_neuron_pj: 20.0,
            e_weight_update_pj: 30.0,
            e_mem_pj_per_bit: 1.2,
            e_codec_pj_per_frame: 10.0,
            lanes: 1024.0,
            cycles_per_synop: 1.0,
            cycles_per_neuron_update: 1.0,
            cycles_per_weight_update: 1.0,
            cycles_per_codec_frame: 1.0,
            mem_bits_per_cycle: 4096.0,
            clock_hz: 1.2e9,
        }
    }

    /// Whether all parameters are positive and finite.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let vals = [
            self.e_synop_pj,
            self.e_neuron_pj,
            self.e_weight_update_pj,
            self.e_mem_pj_per_bit,
            self.e_codec_pj_per_frame,
            self.lanes,
            self.cycles_per_synop,
            self.cycles_per_neuron_update,
            self.cycles_per_weight_update,
            self.cycles_per_codec_frame,
            self.mem_bits_per_cycle,
            self.clock_hz,
        ];
        vals.iter().all(|v| v.is_finite() && *v > 0.0)
    }
}

impl Default for HardwareProfile {
    fn default() -> Self {
        HardwareProfile::embedded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(HardwareProfile::embedded().is_valid());
        assert!(HardwareProfile::loihi_like().is_valid());
        assert!(HardwareProfile::edge_gpu_like().is_valid());
        assert!(HardwareProfile::default().is_valid());
        assert_eq!(HardwareProfile::default().name, "embedded-edge");
    }

    #[test]
    fn invalid_detected() {
        let mut p = HardwareProfile::embedded();
        p.clock_hz = 0.0;
        assert!(!p.is_valid());
        p.clock_hz = f64::NAN;
        assert!(!p.is_valid());
    }

    #[test]
    fn neuromorphic_is_more_efficient_per_event_than_gpu() {
        let loihi = HardwareProfile::loihi_like();
        let gpu = HardwareProfile::edge_gpu_like();
        assert!(loihi.e_synop_pj < gpu.e_synop_pj);
        assert!(loihi.e_mem_pj_per_bit < gpu.e_mem_pj_per_bit);
    }
}
