//! Operation counting: the bridge from simulated SNN activity to hardware
//! cost.

use ncl_snn::ForwardActivity;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Counted work of a (part of a) computation.
///
/// All fields are raw event counts; the [`crate::profile::HardwareProfile`]
/// assigns them costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Synaptic accumulate operations (one per spike per fan-out target).
    pub synaptic_ops: u64,
    /// Membrane/integrator update operations (one per neuron per step).
    pub neuron_updates: u64,
    /// Parameter update operations (one per trained weight per optimizer
    /// step).
    pub weight_updates: u64,
    /// Codec frame operations (one per raster frame compressed or
    /// re-expanded).
    pub codec_frames: u64,
    /// Bits read from latent/replay memory.
    pub mem_read_bits: u64,
    /// Bits written to latent/replay memory.
    pub mem_write_bits: u64,
}

impl OpCounts {
    /// Work of one *inference* forward pass, derived from the simulator's
    /// activity trace.
    ///
    /// Per executed hidden stage: every incoming spike touches all `n`
    /// feed-forward weights; with recurrence enabled, every own spike of
    /// the previous step touches all `n` recurrent weights (counted via
    /// `out_spikes`, exact up to the final step's boundary). Neuron updates
    /// are dense (`n · steps`), including the readout integrators.
    #[must_use]
    pub fn forward(activity: &ForwardActivity, recurrent: bool) -> Self {
        let mut synaptic = 0u64;
        for stage in &activity.stages {
            synaptic += stage.in_spikes * stage.neurons as u64;
            if recurrent {
                synaptic += stage.out_spikes * stage.neurons as u64;
            }
        }
        synaptic += activity.readout_in_spikes * activity.outputs as u64;
        OpCounts {
            synaptic_ops: synaptic,
            neuron_updates: activity.neuron_updates(),
            ..OpCounts::default()
        }
    }

    /// Work of one *training* pass over the same activity: forward plus a
    /// backward sweep modeled at `2x` the forward compute (the standard
    /// flop accounting for reverse-mode differentiation), plus one update
    /// op per trained parameter.
    #[must_use]
    pub fn training(activity: &ForwardActivity, recurrent: bool, trained_params: u64) -> Self {
        let fwd = OpCounts::forward(activity, recurrent);
        OpCounts {
            synaptic_ops: fwd.synaptic_ops * 3,
            neuron_updates: fwd.neuron_updates * 3,
            weight_updates: trained_params,
            ..OpCounts::default()
        }
    }

    /// Work of compressing or decompressing `frames` raster frames of
    /// `neurons` bits each, including the implied memory traffic.
    #[must_use]
    pub fn codec(frames: u64, neurons: u64, write: bool) -> Self {
        let bits = frames * neurons;
        OpCounts {
            codec_frames: frames,
            mem_read_bits: if write { 0 } else { bits },
            mem_write_bits: if write { bits } else { 0 },
            ..OpCounts::default()
        }
    }

    /// Total of all compute-class counters (used in tests/diagnostics).
    #[must_use]
    pub fn compute_events(&self) -> u64 {
        self.synaptic_ops + self.neuron_updates + self.weight_updates + self.codec_frames
    }

    /// Whether every counter is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == OpCounts::default()
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            synaptic_ops: self.synaptic_ops + rhs.synaptic_ops,
            neuron_updates: self.neuron_updates + rhs.neuron_updates,
            weight_updates: self.weight_updates + rhs.weight_updates,
            codec_frames: self.codec_frames + rhs.codec_frames,
            mem_read_bits: self.mem_read_bits + rhs.mem_read_bits,
            mem_write_bits: self.mem_write_bits + rhs.mem_write_bits,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_snn::{Network, NetworkConfig};
    use ncl_spike::SpikeRaster;

    fn traced_activity(steps: usize) -> (ForwardActivity, Network) {
        let net = Network::new(NetworkConfig::tiny(8, 3)).unwrap();
        let input = SpikeRaster::from_fn(8, steps, |n, t| (n + t) % 2 == 0);
        let (_, activity) = net.forward_from_traced(0, &input, None).unwrap();
        (activity, net)
    }

    #[test]
    fn forward_counts_scale_with_steps() {
        let (a10, _) = traced_activity(10);
        let (a40, _) = traced_activity(40);
        let f10 = OpCounts::forward(&a10, true);
        let f40 = OpCounts::forward(&a40, true);
        assert!(
            f40.synaptic_ops > 2 * f10.synaptic_ops,
            "more steps, more spikes"
        );
        assert_eq!(
            f40.neuron_updates,
            4 * f10.neuron_updates,
            "dense updates scale linearly"
        );
    }

    #[test]
    fn recurrence_adds_ops() {
        let (a, _) = traced_activity(20);
        let with_rec = OpCounts::forward(&a, true);
        let without = OpCounts::forward(&a, false);
        assert!(with_rec.synaptic_ops > without.synaptic_ops);
        assert_eq!(with_rec.neuron_updates, without.neuron_updates);
    }

    #[test]
    fn training_is_3x_forward_plus_updates() {
        let (a, net) = traced_activity(20);
        let params = net.trainable_params(0).unwrap() as u64;
        let fwd = OpCounts::forward(&a, true);
        let train = OpCounts::training(&a, true, params);
        assert_eq!(train.synaptic_ops, 3 * fwd.synaptic_ops);
        assert_eq!(train.neuron_updates, 3 * fwd.neuron_updates);
        assert_eq!(train.weight_updates, params);
    }

    #[test]
    fn codec_traffic_direction() {
        let w = OpCounts::codec(50, 200, true);
        assert_eq!(w.mem_write_bits, 10_000);
        assert_eq!(w.mem_read_bits, 0);
        assert_eq!(w.codec_frames, 50);
        let r = OpCounts::codec(50, 200, false);
        assert_eq!(r.mem_read_bits, 10_000);
        assert_eq!(r.mem_write_bits, 0);
    }

    #[test]
    fn add_and_zero() {
        let (a, _) = traced_activity(10);
        let f = OpCounts::forward(&a, true);
        let mut sum = OpCounts::default();
        assert!(sum.is_zero());
        sum += f;
        sum += f;
        assert_eq!(sum.synaptic_ops, 2 * f.synaptic_ops);
        assert_eq!((f + f).neuron_updates, sum.neuron_updates);
        assert!(!sum.is_zero());
        assert!(sum.compute_events() > 0);
    }
}
