//! Latent-memory sizing (re-exported accounting plus report helpers).
//!
//! The bit-exact footprint model lives in [`ncl_spike::memory`]; this
//! module adds the store-level summary used by the Fig. 12 reproduction.

use ncl_spike::memory::{self, Alignment};
use serde::{Deserialize, Serialize};

/// Size summary of a latent-replay store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Number of stored samples.
    pub samples: usize,
    /// Payload bits per sample (`neurons x stored frames`).
    pub payload_bits_per_sample: u64,
    /// Total bits including metadata and alignment.
    pub total_bits: u64,
}

impl MemoryFootprint {
    /// Computes the footprint of `samples` equal-shaped latent entries.
    #[must_use]
    pub fn of(samples: usize, payload_bits_per_sample: u64, alignment: Alignment) -> Self {
        MemoryFootprint {
            samples,
            payload_bits_per_sample,
            total_bits: memory::store_bits(samples, payload_bits_per_sample, alignment),
        }
    }

    /// Total size in KiB.
    #[must_use]
    pub fn kib(&self) -> f64 {
        memory::bits_to_kib(self.total_bits)
    }

    /// Fractional saving of `self` relative to `baseline`
    /// (`1 − self/baseline`); negative when `self` is larger.
    #[must_use]
    pub fn saving_vs(&self, baseline: &MemoryFootprint) -> f64 {
        if baseline.total_bits == 0 {
            return 0.0;
        }
        1.0 - self.total_bits as f64 / baseline.total_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig12_headline_band() {
        // SpikingLR at insertion 3: 19 samples/class-count aside, 50
        // neurons x 50 frames; Replay4NCL: 50 x 40.
        let sota = MemoryFootprint::of(19, 50 * 50, Alignment::Byte);
        let ours = MemoryFootprint::of(19, 50 * 40, Alignment::Byte);
        let saving = ours.saving_vs(&sota);
        assert!((0.18..=0.23).contains(&saving), "saving {saving}");
        assert!(ours.kib() < sota.kib());
    }

    #[test]
    fn later_layers_are_smaller() {
        // Widths 200 / 100 / 50 at the same frame count.
        let l1 = MemoryFootprint::of(19, 200 * 50, Alignment::Byte);
        let l2 = MemoryFootprint::of(19, 100 * 50, Alignment::Byte);
        let l3 = MemoryFootprint::of(19, 50 * 50, Alignment::Byte);
        assert!(l1.total_bits > l2.total_bits);
        assert!(l2.total_bits > l3.total_bits);
    }

    #[test]
    fn saving_vs_degenerate_baseline() {
        let a = MemoryFootprint::of(0, 100, Alignment::Bit);
        let b = MemoryFootprint::of(1, 100, Alignment::Bit);
        assert_eq!(b.saving_vs(&a), 0.0);
        assert!(a.saving_vs(&b) > 0.99);
    }
}
