//! Combined cost reports: latency + energy (+ optional memory), with the
//! ratio helpers the figure reproductions print.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::energy::{self, Energy};
use crate::latency::{self, Latency};
use crate::ops::OpCounts;
use crate::profile::HardwareProfile;

/// Latency and energy of a counted workload under one profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Modeled execution latency.
    pub latency: Latency,
    /// Modeled energy.
    pub energy: Energy,
    /// The raw counted work.
    pub ops: OpCounts,
}

impl CostReport {
    /// Evaluates the cost of `ops` under `profile`.
    #[must_use]
    pub fn of(ops: &OpCounts, profile: &HardwareProfile) -> Self {
        CostReport {
            latency: latency::latency_of(ops, profile),
            energy: energy::energy_of(ops, profile),
            ops: *ops,
        }
    }

    /// Speed-up of `self` relative to `baseline`
    /// (`baseline.latency / self.latency`; > 1 means `self` is faster).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &CostReport) -> f64 {
        baseline.latency.ratio_to(self.latency)
    }

    /// Fractional energy saving of `self` relative to `baseline`
    /// (`1 − self/baseline`).
    #[must_use]
    pub fn energy_saving_vs(&self, baseline: &CostReport) -> f64 {
        if baseline.energy.joules() == 0.0 {
            return 0.0;
        }
        1.0 - self.energy.joules() / baseline.energy.joules()
    }

    /// Latency normalized to a baseline (`self / baseline`, the
    /// normalization the paper's bar charts use).
    #[must_use]
    pub fn normalized_latency(&self, baseline: &CostReport) -> f64 {
        self.latency.ratio_to(baseline.latency)
    }

    /// Energy normalized to a baseline.
    #[must_use]
    pub fn normalized_energy(&self, baseline: &CostReport) -> f64 {
        self.energy.ratio_to(baseline.energy)
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency {} | energy {} | {} synops, {} neuron updates",
            self.latency, self.energy, self.ops.synaptic_ops, self.ops.neuron_updates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(scale: u64) -> OpCounts {
        OpCounts {
            synaptic_ops: 1000 * scale,
            neuron_updates: 100 * scale,
            mem_read_bits: 640 * scale,
            ..OpCounts::default()
        }
    }

    #[test]
    fn ratios_behave() {
        let p = HardwareProfile::embedded();
        let slow = CostReport::of(&work(5), &p);
        let fast = CostReport::of(&work(1), &p);
        assert!((fast.speedup_vs(&slow) - 5.0).abs() < 1e-9);
        assert!((fast.energy_saving_vs(&slow) - 0.8).abs() < 1e-9);
        assert!((fast.normalized_latency(&slow) - 0.2).abs() < 1e-9);
        assert!((fast.normalized_energy(&slow) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn degenerate_baseline() {
        let p = HardwareProfile::embedded();
        let zero = CostReport::of(&OpCounts::default(), &p);
        let one = CostReport::of(&work(1), &p);
        assert_eq!(one.energy_saving_vs(&zero), 0.0);
        assert_eq!(zero.speedup_vs(&one), f64::INFINITY);
    }

    #[test]
    fn display_mentions_units() {
        let p = HardwareProfile::embedded();
        let r = CostReport::of(&work(1), &p);
        let s = r.to_string();
        assert!(s.contains("latency"));
        assert!(s.contains("energy"));
        assert!(s.contains("synops"));
    }

    #[test]
    fn profile_choice_changes_absolute_but_not_relative() {
        let a = HardwareProfile::embedded();
        let b = HardwareProfile::loihi_like();
        let r1a = CostReport::of(&work(1), &a);
        let r5a = CostReport::of(&work(5), &a);
        let r1b = CostReport::of(&work(1), &b);
        let r5b = CostReport::of(&work(5), &b);
        // Absolute numbers differ across profiles...
        assert_ne!(r1a.latency, r1b.latency);
        // ...but the 5x workload ratio is profile-invariant.
        assert!((r1a.speedup_vs(&r5a) - r1b.speedup_vs(&r5b)).abs() < 1e-9);
    }
}
