//! Analytic hardware cost models for embedded neuromorphic execution.
//!
//! The paper measures latency with GPU wall-clock and energy with the
//! machine's power draw. Neither exists here, so — per the standard
//! methodology of the neuromorphic-hardware literature — this crate maps
//! *counted work* (synaptic accumulates, neuron updates, weight updates,
//! codec frames, latent-memory traffic) through a parameterized
//! [`profile::HardwareProfile`] to latency and energy. All comparative
//! claims of the paper are driven by differences in counted work
//! (timesteps, spikes, stored bits), which this model captures directly.
//!
//! # Example
//!
//! ```
//! use ncl_hw::{ops::OpCounts, profile::HardwareProfile, report::CostReport};
//!
//! let profile = HardwareProfile::embedded();
//! let mut work = OpCounts::default();
//! work.synaptic_ops = 1_000_000;
//! work.neuron_updates = 50_000;
//! let report = CostReport::of(&work, &profile);
//! assert!(report.latency.seconds() > 0.0);
//! assert!(report.energy.joules() > 0.0);
//! ```

pub mod energy;
pub mod latency;
pub mod memory;
pub mod ops;
pub mod profile;
pub mod report;

pub use energy::Energy;
pub use latency::Latency;
pub use ops::OpCounts;
pub use profile::HardwareProfile;
pub use report::CostReport;
