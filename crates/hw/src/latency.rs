//! Latency model: counted events × cycle costs, divided by parallelism and
//! clock.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

use crate::ops::OpCounts;
use crate::profile::HardwareProfile;

/// A latency quantity in seconds (newtype for unit safety).
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Latency(f64);

impl Latency {
    /// Zero latency.
    pub const ZERO: Latency = Latency(0.0);

    /// Constructs from seconds.
    #[must_use]
    pub fn from_seconds(s: f64) -> Self {
        Latency(s)
    }

    /// Constructs from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Latency(ms * 1e-3)
    }

    /// Value in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Value in milliseconds.
    #[must_use]
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Ratio `self / other` (speed-up of `other` over `self` when > 1);
    /// `f64::INFINITY` if `other` is zero.
    #[must_use]
    pub fn ratio_to(self, other: Latency) -> f64 {
        if other.0 == 0.0 {
            f64::INFINITY
        } else {
            self.0 / other.0
        }
    }
}

impl Add for Latency {
    type Output = Latency;

    fn add(self, rhs: Latency) -> Latency {
        Latency(self.0 + rhs.0)
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3} s")
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3} us", s * 1e6)
        } else {
            write!(f, "{:.3} ns", s * 1e9)
        }
    }
}

/// Computes the latency of counted work under a hardware profile.
///
/// Compute events are retired at `lanes` per cycle with per-class cycle
/// weights; memory traffic is overlapped-but-bounded by the profile's
/// bandwidth (modeled additively, a conservative upper bound).
#[must_use]
pub fn latency_of(ops: &OpCounts, profile: &HardwareProfile) -> Latency {
    let compute_cycles = (ops.synaptic_ops as f64 * profile.cycles_per_synop
        + ops.neuron_updates as f64 * profile.cycles_per_neuron_update
        + ops.weight_updates as f64 * profile.cycles_per_weight_update
        + ops.codec_frames as f64 * profile.cycles_per_codec_frame)
        / profile.lanes;
    let mem_cycles = (ops.mem_read_bits + ops.mem_write_bits) as f64 / profile.mem_bits_per_cycle;
    Latency((compute_cycles + mem_cycles) / profile.clock_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_zero_latency() {
        let l = latency_of(&OpCounts::default(), &HardwareProfile::embedded());
        assert_eq!(l, Latency::ZERO);
    }

    #[test]
    fn known_value() {
        let p = HardwareProfile::embedded();
        let ops = OpCounts {
            synaptic_ops: 1600,
            ..OpCounts::default()
        };
        // 1600 synops * 1 cycle / 8 lanes = 200 cycles @ 200 MHz = 1 us.
        let l = latency_of(&ops, &p);
        assert!((l.seconds() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn latency_scales_linearly_in_work() {
        let p = HardwareProfile::embedded();
        let one = OpCounts {
            synaptic_ops: 1000,
            neuron_updates: 100,
            ..OpCounts::default()
        };
        let two = one + one;
        let l1 = latency_of(&one, &p);
        let l2 = latency_of(&two, &p);
        assert!((l2.seconds() - 2.0 * l1.seconds()).abs() < 1e-15);
    }

    #[test]
    fn memory_traffic_adds_latency() {
        let p = HardwareProfile::embedded();
        let compute = OpCounts {
            synaptic_ops: 1000,
            ..OpCounts::default()
        };
        let with_mem = OpCounts {
            mem_read_bits: 100_000,
            ..compute
        };
        assert!(latency_of(&with_mem, &p) > latency_of(&compute, &p));
    }

    #[test]
    fn more_lanes_is_faster() {
        let slow = HardwareProfile::embedded();
        let mut fast = HardwareProfile::embedded();
        fast.lanes *= 4.0;
        let ops = OpCounts {
            synaptic_ops: 10_000,
            ..OpCounts::default()
        };
        assert!(latency_of(&ops, &fast) < latency_of(&ops, &slow));
    }

    #[test]
    fn units_display_and_ratio() {
        assert_eq!(Latency::from_seconds(1.5).to_string(), "1.500 s");
        assert_eq!(Latency::from_millis(2.0).to_string(), "2.000 ms");
        assert_eq!(Latency::from_seconds(3e-6).to_string(), "3.000 us");
        assert_eq!(Latency::from_seconds(5e-9).to_string(), "5.000 ns");
        let a = Latency::from_seconds(4.0);
        let b = Latency::from_seconds(2.0);
        assert!((a.ratio_to(b) - 2.0).abs() < 1e-12);
        assert_eq!(a.ratio_to(Latency::ZERO), f64::INFINITY);
        assert!(((a + b).seconds() - 6.0).abs() < 1e-12);
        assert!((b.millis() - 2000.0).abs() < 1e-9);
    }
}
