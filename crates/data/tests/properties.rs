//! Property-based tests of the synthetic dataset and task splits.

use ncl_data::generator::{self, ClassPrototype, ShdLikeConfig};
use ncl_data::split::{replay_subset, ClassIncrementalSplit};
use ncl_tensor::Rng;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = ShdLikeConfig> {
    (8usize..40, 2u16..6, 8usize..30, 1usize..5, any::<u64>()).prop_map(
        |(channels, classes, steps, per_class, seed)| {
            let mut c = ShdLikeConfig::smoke_test();
            c.channels = channels;
            c.classes = classes;
            c.steps = steps;
            c.train_per_class = per_class;
            c.test_per_class = 1;
            c.bump_sigma = (channels as f32 / 12.0).max(0.5);
            c.channel_jitter = 1.0;
            c.seed = seed;
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_deterministic(config in config_strategy()) {
        let a = generator::generate_pair(&config).unwrap();
        let b = generator::generate_pair(&config).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn generated_shapes_and_labels_are_valid(config in config_strategy()) {
        let data = generator::generate_pair(&config).unwrap();
        prop_assert_eq!(data.train.len(), config.train_per_class * config.classes as usize);
        for s in &data.train {
            prop_assert_eq!(s.raster.neurons(), config.channels);
            prop_assert_eq!(s.raster.steps(), config.steps);
            prop_assert!(s.label < config.classes);
        }
        // Train/test draws differ (independent streams).
        if !data.train.is_empty() && !data.test.is_empty() {
            prop_assert!(data.train.samples()[0] != data.test.samples()[0]);
        }
    }

    #[test]
    fn prototypes_are_inside_the_channel_range(config in config_strategy()) {
        for class in 0..config.classes {
            let p = ClassPrototype::derive(&config, class);
            for i in 0..=20 {
                let c = p.center_at(i as f32 / 20.0);
                prop_assert!(c >= 0.0 && c < config.channels as f32);
            }
        }
    }

    #[test]
    fn replay_subset_is_balanced_and_leak_free(
        config in config_strategy(), per_class in 1usize..4, seed in any::<u64>()
    ) {
        prop_assume!(config.classes >= 2);
        let data = generator::generate(&config).unwrap();
        let split = ClassIncrementalSplit::hold_out_last(config.classes).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        let replay = replay_subset(&data, &split, per_class, &mut rng).unwrap();
        let expected_per_class = per_class.min(config.train_per_class);
        for class in split.pretrain_classes() {
            prop_assert_eq!(replay.indices_of_class(*class).len(), expected_per_class);
        }
        let new_class = config.classes - 1;
        prop_assert!(replay.indices_of_class(new_class).is_empty(),
            "replay must never contain the held-out class");
    }

    #[test]
    fn splits_partition_without_overlap(classes in 2u16..10) {
        let split = ClassIncrementalSplit::hold_out_last(classes).unwrap();
        let mut all: Vec<u16> = split
            .pretrain_classes()
            .iter()
            .chain(split.continual_classes())
            .copied()
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..classes).collect::<Vec<_>>());
    }
}
