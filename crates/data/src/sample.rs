//! Labeled spike samples and datasets.

use ncl_spike::SpikeRaster;
use serde::{Deserialize, Serialize};

use crate::error::DataError;

/// A spike raster with its class label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledSample {
    /// Input spike raster (`channels x steps`).
    pub raster: SpikeRaster,
    /// Class label in `0..classes`.
    pub label: u16,
}

impl LabeledSample {
    /// Creates a labeled sample.
    #[must_use]
    pub fn new(raster: SpikeRaster, label: u16) -> Self {
        LabeledSample { raster, label }
    }
}

/// An in-memory event dataset: a list of labeled rasters with shared shape
/// metadata.
///
/// # Example
///
/// ```
/// use ncl_data::{Dataset, LabeledSample};
/// use ncl_spike::SpikeRaster;
///
/// # fn main() -> Result<(), ncl_data::DataError> {
/// let samples = vec![LabeledSample::new(SpikeRaster::new(4, 10), 0)];
/// let ds = Dataset::new(samples, 2, 4, 10)?;
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds.classes(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<LabeledSample>,
    classes: u16,
    channels: usize,
    steps: usize,
}

impl Dataset {
    /// Creates a dataset, validating that every sample matches the declared
    /// shape and label range.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if any sample has the wrong
    /// raster shape, or [`DataError::UnknownClass`] if a label is out of
    /// range.
    pub fn new(
        samples: Vec<LabeledSample>,
        classes: u16,
        channels: usize,
        steps: usize,
    ) -> Result<Self, DataError> {
        for s in &samples {
            if s.raster.neurons() != channels || s.raster.steps() != steps {
                return Err(DataError::InvalidConfig {
                    what: "sample shape",
                    detail: format!(
                        "expected {channels}x{steps}, got {}x{}",
                        s.raster.neurons(),
                        s.raster.steps()
                    ),
                });
            }
            if s.label >= classes {
                return Err(DataError::UnknownClass {
                    label: s.label,
                    classes,
                });
            }
        }
        Ok(Dataset {
            samples,
            classes,
            channels,
            steps,
        })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Declared number of classes.
    #[must_use]
    pub fn classes(&self) -> u16 {
        self.classes
    }

    /// Number of input channels (raster neurons).
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of timesteps per sample.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Borrow of all samples.
    #[must_use]
    pub fn samples(&self) -> &[LabeledSample] {
        &self.samples
    }

    /// Iterator over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, LabeledSample> {
        self.samples.iter()
    }

    /// Sample at `index`.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&LabeledSample> {
        self.samples.get(index)
    }

    /// A new dataset containing only samples whose labels satisfy `keep`.
    /// Shape metadata and the class count are preserved (labels keep their
    /// global meaning, as the class-incremental protocol requires).
    #[must_use]
    pub fn filter_classes(&self, keep: impl Fn(u16) -> bool) -> Dataset {
        let samples = self
            .samples
            .iter()
            .filter(|s| keep(s.label))
            .cloned()
            .collect();
        Dataset {
            samples,
            classes: self.classes,
            channels: self.channels,
            steps: self.steps,
        }
    }

    /// Indices of samples with the given label.
    #[must_use]
    pub fn indices_of_class(&self, label: u16) -> Vec<usize> {
        self.samples
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (s.label == label).then_some(i))
            .collect()
    }

    /// Builds a dataset holding the given samples with this dataset's
    /// metadata (used for subset selection).
    #[must_use]
    pub fn with_samples(&self, samples: Vec<LabeledSample>) -> Dataset {
        Dataset {
            samples,
            classes: self.classes,
            channels: self.channels,
            steps: self.steps,
        }
    }

    /// A new dataset with every raster transformed by `f` (e.g. temporal
    /// resampling); `new_steps` declares the transformed step count.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by `f`.
    pub fn map_rasters<E>(
        &self,
        new_steps: usize,
        mut f: impl FnMut(&SpikeRaster) -> Result<SpikeRaster, E>,
    ) -> Result<Dataset, E> {
        let mut samples = Vec::with_capacity(self.samples.len());
        for s in &self.samples {
            samples.push(LabeledSample::new(f(&s.raster)?, s.label));
        }
        Ok(Dataset {
            samples,
            classes: self.classes,
            channels: self.channels,
            steps: new_steps,
        })
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a LabeledSample;
    type IntoIter = std::slice::Iter<'a, LabeledSample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_dataset() -> Dataset {
        let samples = (0..6)
            .map(|i| LabeledSample::new(SpikeRaster::new(4, 8), (i % 3) as u16))
            .collect();
        Dataset::new(samples, 3, 4, 8).unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        let bad = vec![LabeledSample::new(SpikeRaster::new(5, 8), 0)];
        assert!(matches!(
            Dataset::new(bad, 3, 4, 8),
            Err(DataError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn construction_validates_labels() {
        let bad = vec![LabeledSample::new(SpikeRaster::new(4, 8), 7)];
        assert!(matches!(
            Dataset::new(bad, 3, 4, 8),
            Err(DataError::UnknownClass { .. })
        ));
    }

    #[test]
    fn accessors() {
        let ds = mini_dataset();
        assert_eq!(ds.len(), 6);
        assert!(!ds.is_empty());
        assert_eq!(ds.classes(), 3);
        assert_eq!(ds.channels(), 4);
        assert_eq!(ds.steps(), 8);
        assert!(ds.get(0).is_some());
        assert!(ds.get(6).is_none());
        assert_eq!(ds.iter().count(), 6);
        assert_eq!((&ds).into_iter().count(), 6);
    }

    #[test]
    fn filter_classes_keeps_metadata() {
        let ds = mini_dataset();
        let only0 = ds.filter_classes(|l| l == 0);
        assert_eq!(only0.len(), 2);
        assert_eq!(only0.classes(), 3, "class count keeps global meaning");
        let none = ds.filter_classes(|_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn indices_of_class() {
        let ds = mini_dataset();
        assert_eq!(ds.indices_of_class(1), vec![1, 4]);
        assert!(ds.indices_of_class(9).is_empty());
    }

    #[test]
    fn map_rasters_transforms_shape() {
        let ds = mini_dataset();
        let halved = ds
            .map_rasters(4, |r| {
                ncl_spike::resample::resample(r, 4, ncl_spike::resample::ResampleStrategy::OrBins)
            })
            .unwrap();
        assert_eq!(halved.steps(), 4);
        assert_eq!(halved.len(), ds.len());
        assert_eq!(halved.samples()[0].raster.steps(), 4);
    }

    #[test]
    fn with_samples_reuses_metadata() {
        let ds = mini_dataset();
        let sub = ds.with_samples(ds.samples()[..2].to_vec());
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.classes(), 3);
    }
}
