//! Shuffled mini-batch iteration over datasets.

use ncl_tensor::Rng;

use crate::error::DataError;
use crate::sample::{Dataset, LabeledSample};

/// Yields shuffled mini-batches of sample references, reshuffling on every
/// [`BatchLoader::epoch`] call.
///
/// # Example
///
/// ```
/// use ncl_data::{generator, loader::BatchLoader, ShdLikeConfig};
/// use ncl_tensor::Rng;
///
/// # fn main() -> Result<(), ncl_data::DataError> {
/// let dataset = generator::generate(&ShdLikeConfig::smoke_test())?;
/// let mut loader = BatchLoader::new(8)?;
/// let mut rng = Rng::seed_from_u64(1);
/// let mut seen = 0;
/// for batch in loader.epoch(&dataset, &mut rng) {
///     assert!(batch.len() <= 8);
///     seen += batch.len();
/// }
/// assert_eq!(seen, dataset.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchLoader {
    batch_size: usize,
}

impl BatchLoader {
    /// Creates a loader with the given batch size.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `batch_size == 0`.
    pub fn new(batch_size: usize) -> Result<Self, DataError> {
        if batch_size == 0 {
            return Err(DataError::InvalidConfig {
                what: "batch_size",
                detail: "must be at least 1".into(),
            });
        }
        Ok(BatchLoader { batch_size })
    }

    /// The configured batch size.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// An iterator over shuffled batches for one epoch. Every sample
    /// appears exactly once; the final batch may be smaller.
    pub fn epoch<'d>(&mut self, dataset: &'d Dataset, rng: &mut Rng) -> Batches<'d> {
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        rng.shuffle(&mut order);
        Batches {
            dataset,
            order,
            batch_size: self.batch_size,
            cursor: 0,
        }
    }
}

/// Iterator over the batches of one epoch; produced by
/// [`BatchLoader::epoch`].
#[derive(Debug)]
pub struct Batches<'d> {
    dataset: &'d Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'d> Iterator for Batches<'d> {
    type Item = Vec<&'d LabeledSample>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end]
            .iter()
            .map(|&i| &self.dataset.samples()[i])
            .collect();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_spike::SpikeRaster;

    fn dataset(n: usize) -> Dataset {
        let samples = (0..n)
            .map(|i| LabeledSample::new(SpikeRaster::new(2, 2), (i % 3) as u16))
            .collect();
        Dataset::new(samples, 3, 2, 2).unwrap()
    }

    #[test]
    fn zero_batch_size_rejected() {
        assert!(BatchLoader::new(0).is_err());
        assert_eq!(BatchLoader::new(4).unwrap().batch_size(), 4);
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let ds = dataset(10);
        let mut loader = BatchLoader::new(3).unwrap();
        let mut rng = Rng::seed_from_u64(5);
        let batches: Vec<_> = loader.epoch(&ds, &mut rng).collect();
        assert_eq!(batches.len(), 4); // 3+3+3+1
        assert_eq!(batches.last().unwrap().len(), 1);
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn epochs_are_shuffled_differently() {
        let ds = dataset(20);
        let mut loader = BatchLoader::new(20).unwrap();
        let mut rng = Rng::seed_from_u64(5);
        let first: Vec<*const LabeledSample> = loader
            .epoch(&ds, &mut rng)
            .next()
            .unwrap()
            .iter()
            .map(|s| *s as *const _)
            .collect();
        let second: Vec<*const LabeledSample> = loader
            .epoch(&ds, &mut rng)
            .next()
            .unwrap()
            .iter()
            .map(|s| *s as *const _)
            .collect();
        assert_ne!(first, second, "two epochs should visit in different orders");
    }

    #[test]
    fn empty_dataset_yields_no_batches() {
        let ds = dataset(0);
        let mut loader = BatchLoader::new(4).unwrap();
        let mut rng = Rng::seed_from_u64(5);
        assert_eq!(loader.epoch(&ds, &mut rng).count(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset(12);
        let collect = |seed: u64| -> Vec<u16> {
            let mut loader = BatchLoader::new(5).unwrap();
            let mut rng = Rng::seed_from_u64(seed);
            loader
                .epoch(&ds, &mut rng)
                .flatten()
                .map(|s| s.label)
                .collect()
        };
        assert_eq!(collect(3), collect(3));
    }
}
