//! Dataset-level descriptive statistics (used in reports and sanity
//! checks).

use serde::{Deserialize, Serialize};

use crate::sample::Dataset;

/// Summary statistics of a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of samples.
    pub samples: usize,
    /// Samples per class label (indexed by label).
    pub per_class: Vec<usize>,
    /// Mean spikes per sample.
    pub mean_spikes: f64,
    /// Mean raster density (fraction of set bits).
    pub mean_density: f64,
}

impl DatasetStats {
    /// Computes statistics for a dataset.
    #[must_use]
    pub fn of(dataset: &Dataset) -> Self {
        let mut per_class = vec![0usize; dataset.classes() as usize];
        let mut spikes = 0u64;
        for s in dataset {
            per_class[s.label as usize] += 1;
            spikes += s.raster.total_spikes() as u64;
        }
        let n = dataset.len().max(1) as f64;
        let cells = (dataset.channels() * dataset.steps()).max(1) as f64;
        DatasetStats {
            samples: dataset.len(),
            per_class,
            mean_spikes: spikes as f64 / n,
            mean_density: spikes as f64 / n / cells,
        }
    }

    /// Whether every class has the same number of samples.
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        match self.per_class.iter().find(|&&c| c > 0) {
            None => true,
            Some(&first) => self.per_class.iter().all(|&c| c == first || c == 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{self, ShdLikeConfig};
    use crate::sample::{Dataset, LabeledSample};
    use ncl_spike::SpikeRaster;

    #[test]
    fn stats_of_generated_data() {
        let config = ShdLikeConfig::smoke_test();
        let ds = generator::generate(&config).unwrap();
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.samples, ds.len());
        assert!(stats.is_balanced());
        assert!(stats.mean_spikes > 0.0);
        assert!(stats.mean_density > 0.0 && stats.mean_density < 1.0);
    }

    #[test]
    fn imbalance_detected() {
        let mut samples = vec![LabeledSample::new(SpikeRaster::new(2, 2), 0)];
        samples.push(LabeledSample::new(SpikeRaster::new(2, 2), 0));
        samples.push(LabeledSample::new(SpikeRaster::new(2, 2), 1));
        let ds = Dataset::new(samples, 2, 2, 2).unwrap();
        let stats = DatasetStats::of(&ds);
        assert!(!stats.is_balanced());
        assert_eq!(stats.per_class, vec![2, 1]);
    }

    #[test]
    fn empty_dataset_stats() {
        let ds = Dataset::new(vec![], 3, 2, 2).unwrap();
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.samples, 0);
        assert!(stats.is_balanced());
        assert_eq!(stats.mean_spikes, 0.0);
    }
}
