//! Synthetic SHD-like event dataset and class-incremental task splits.
//!
//! The paper evaluates on the Spiking Heidelberg Digits (SHD) dataset:
//! 700-channel cochlea-model event streams of 20 spoken-digit classes.
//! That dataset is not available offline, so this crate generates a
//! *synthetic SHD-like* workload with the same interface properties
//! (700 channels, 20 classes, ~1 s of events binned into T timesteps,
//! within-class variability) — see DESIGN.md §3 for the substitution
//! rationale.
//!
//! Class identity is carried by a *channel trajectory*: each class is a
//! sequence of waypoint channels interpolated over time (a caricature of a
//! formant sweep). Classes share the same channel range and similar total
//! spike counts, so coarse time-collapsed statistics are weakly
//! discriminative and the temporal structure matters — which is exactly
//! what makes the paper's timestep reduction a real trade-off.
//!
//! # Example
//!
//! ```
//! use ncl_data::{ShdLikeConfig, generator};
//!
//! # fn main() -> Result<(), ncl_data::DataError> {
//! let config = ShdLikeConfig::smoke_test();
//! let dataset = generator::generate(&config)?;
//! assert_eq!(dataset.classes(), config.classes);
//! assert!(dataset.len() > 0);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod generator;
pub mod loader;
pub mod rate_coded;
pub mod sample;
pub mod split;
pub mod stats;

pub use error::DataError;
pub use generator::ShdLikeConfig;
pub use sample::{Dataset, LabeledSample};
pub use split::ClassIncrementalSplit;
