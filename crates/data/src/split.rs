//! Class-incremental task splits and replay-subset selection.
//!
//! The paper's protocol (Section IV): pre-train on 19 of the 20 SHD
//! classes, then learn the held-out class in the continual-learning phase.
//! [`ClassIncrementalSplit`] captures that partition; [`replay_subset`]
//! draws the `TS_replay ⊆ TS_pre` rehearsal samples of Alg. 1.

use ncl_tensor::Rng;
use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::sample::Dataset;

/// A partition of class labels into pre-training classes and classes
/// introduced during the continual-learning phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassIncrementalSplit {
    pretrain: Vec<u16>,
    continual: Vec<u16>,
}

impl ClassIncrementalSplit {
    /// The paper's split: classes `0..classes-1` are pre-trained, the last
    /// class arrives in the CL phase.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `classes < 2`.
    pub fn hold_out_last(classes: u16) -> Result<Self, DataError> {
        if classes < 2 {
            return Err(DataError::InvalidConfig {
                what: "classes",
                detail: "class-incremental split needs at least 2 classes".into(),
            });
        }
        Ok(ClassIncrementalSplit {
            pretrain: (0..classes - 1).collect(),
            continual: vec![classes - 1],
        })
    }

    /// A custom split.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if either side is empty or the
    /// sides overlap.
    pub fn new(pretrain: Vec<u16>, continual: Vec<u16>) -> Result<Self, DataError> {
        if pretrain.is_empty() || continual.is_empty() {
            return Err(DataError::InvalidConfig {
                what: "split",
                detail: "both pretrain and continual class sets must be non-empty".into(),
            });
        }
        if pretrain.iter().any(|c| continual.contains(c)) {
            return Err(DataError::InvalidConfig {
                what: "split",
                detail: "pretrain and continual class sets overlap".into(),
            });
        }
        Ok(ClassIncrementalSplit {
            pretrain,
            continual,
        })
    }

    /// Labels of the pre-training classes (the paper's "old tasks").
    #[must_use]
    pub fn pretrain_classes(&self) -> &[u16] {
        &self.pretrain
    }

    /// Labels of the continual-learning classes (the paper's "new task").
    #[must_use]
    pub fn continual_classes(&self) -> &[u16] {
        &self.continual
    }

    /// Whether `label` belongs to the pre-training set.
    #[must_use]
    pub fn is_pretrain(&self, label: u16) -> bool {
        self.pretrain.contains(&label)
    }

    /// Samples of `dataset` belonging to the pre-training classes
    /// (`TS_pre`).
    #[must_use]
    pub fn pretrain_subset(&self, dataset: &Dataset) -> Dataset {
        dataset.filter_classes(|l| self.pretrain.contains(&l))
    }

    /// Samples of `dataset` belonging to the continual classes (`TS_cl`).
    #[must_use]
    pub fn continual_subset(&self, dataset: &Dataset) -> Dataset {
        dataset.filter_classes(|l| self.continual.contains(&l))
    }
}

/// Draws `per_class` samples of each pre-training class (uniform, without
/// replacement) — the replay set `TS_replay ⊆ TS_pre` of Alg. 1.
///
/// Classes with fewer than `per_class` samples contribute everything they
/// have.
///
/// # Errors
///
/// Returns [`DataError::EmptySelection`] if the resulting subset would be
/// empty, or [`DataError::InvalidConfig`] if `per_class == 0`.
pub fn replay_subset(
    dataset: &Dataset,
    split: &ClassIncrementalSplit,
    per_class: usize,
    rng: &mut Rng,
) -> Result<Dataset, DataError> {
    if per_class == 0 {
        return Err(DataError::InvalidConfig {
            what: "per_class",
            detail: "replay subset needs at least 1 sample per class".into(),
        });
    }
    let mut picked = Vec::new();
    for &class in split.pretrain_classes() {
        let idx = dataset.indices_of_class(class);
        let chosen = rng.sample_indices(idx.len(), per_class);
        for c in chosen {
            picked.push(dataset.samples()[idx[c]].clone());
        }
    }
    if picked.is_empty() {
        return Err(DataError::EmptySelection {
            op: "replay_subset",
        });
    }
    Ok(dataset.with_samples(picked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::LabeledSample;
    use ncl_spike::SpikeRaster;

    fn dataset(classes: u16, per_class: usize) -> Dataset {
        let mut samples = Vec::new();
        for c in 0..classes {
            for _ in 0..per_class {
                samples.push(LabeledSample::new(SpikeRaster::new(4, 4), c));
            }
        }
        Dataset::new(samples, classes, 4, 4).unwrap()
    }

    #[test]
    fn hold_out_last_matches_paper_protocol() {
        let split = ClassIncrementalSplit::hold_out_last(20).unwrap();
        assert_eq!(split.pretrain_classes().len(), 19);
        assert_eq!(split.continual_classes(), &[19]);
        assert!(split.is_pretrain(0));
        assert!(!split.is_pretrain(19));
        assert!(ClassIncrementalSplit::hold_out_last(1).is_err());
    }

    #[test]
    fn custom_split_validation() {
        assert!(ClassIncrementalSplit::new(vec![0, 1], vec![2]).is_ok());
        assert!(ClassIncrementalSplit::new(vec![], vec![1]).is_err());
        assert!(ClassIncrementalSplit::new(vec![0], vec![]).is_err());
        assert!(ClassIncrementalSplit::new(vec![0, 1], vec![1]).is_err());
    }

    #[test]
    fn subsets_partition_dataset() {
        let ds = dataset(4, 3);
        let split = ClassIncrementalSplit::hold_out_last(4).unwrap();
        let pre = split.pretrain_subset(&ds);
        let cl = split.continual_subset(&ds);
        assert_eq!(pre.len(), 9);
        assert_eq!(cl.len(), 3);
        assert!(pre.iter().all(|s| s.label < 3));
        assert!(cl.iter().all(|s| s.label == 3));
    }

    #[test]
    fn replay_subset_draws_per_class() {
        let ds = dataset(4, 5);
        let split = ClassIncrementalSplit::hold_out_last(4).unwrap();
        let mut rng = Rng::seed_from_u64(3);
        let replay = replay_subset(&ds, &split, 2, &mut rng).unwrap();
        assert_eq!(replay.len(), 6); // 3 pretrain classes x 2
        for c in 0..3 {
            assert_eq!(replay.indices_of_class(c).len(), 2);
        }
        assert!(
            replay.indices_of_class(3).is_empty(),
            "no new-class leakage"
        );
    }

    #[test]
    fn replay_subset_clamps_to_available() {
        let ds = dataset(3, 2);
        let split = ClassIncrementalSplit::hold_out_last(3).unwrap();
        let mut rng = Rng::seed_from_u64(3);
        let replay = replay_subset(&ds, &split, 10, &mut rng).unwrap();
        assert_eq!(replay.len(), 4); // 2 classes x all 2 samples
    }

    #[test]
    fn replay_subset_errors() {
        let ds = dataset(3, 2);
        let split = ClassIncrementalSplit::hold_out_last(3).unwrap();
        let mut rng = Rng::seed_from_u64(3);
        assert!(replay_subset(&ds, &split, 0, &mut rng).is_err());
        let empty = ds.filter_classes(|_| false);
        assert!(matches!(
            replay_subset(&empty, &split, 2, &mut rng),
            Err(DataError::EmptySelection { .. })
        ));
    }

    #[test]
    fn replay_subset_is_deterministic_per_seed() {
        let ds = dataset(4, 6);
        let split = ClassIncrementalSplit::hold_out_last(4).unwrap();
        let a = replay_subset(&ds, &split, 3, &mut Rng::seed_from_u64(9)).unwrap();
        let b = replay_subset(&ds, &split, 3, &mut Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
