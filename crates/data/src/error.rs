//! Error type for dataset construction and splitting.

use std::error::Error;
use std::fmt;

/// Error returned by dataset generation and task splitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A generator or split parameter was invalid.
    InvalidConfig {
        /// Which parameter failed validation.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A requested class label does not exist in the dataset.
    UnknownClass {
        /// The offending label.
        label: u16,
        /// Number of classes in the dataset.
        classes: u16,
    },
    /// An operation needed a non-empty selection but got none.
    EmptySelection {
        /// Name of the operation.
        op: &'static str,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig { what, detail } => {
                write!(f, "invalid {what}: {detail}")
            }
            DataError::UnknownClass { label, classes } => {
                write!(f, "unknown class {label} (dataset has {classes} classes)")
            }
            DataError::EmptySelection { op } => {
                write!(f, "{op}: selection is empty")
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::InvalidConfig {
            what: "channels",
            detail: "zero".into()
        }
        .to_string()
        .contains("channels"));
        assert!(DataError::UnknownClass {
            label: 25,
            classes: 20
        }
        .to_string()
        .contains("25"));
        assert!(DataError::EmptySelection {
            op: "replay_subset"
        }
        .to_string()
        .contains("replay_subset"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DataError>();
    }
}
