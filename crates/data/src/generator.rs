//! Synthetic SHD-like event-stream generator.
//!
//! Each class is a *channel trajectory*: a sequence of waypoint channels
//! interpolated across the sample duration, mimicking the formant sweeps
//! that distinguish spoken digits in the real SHD. At every timestep a
//! Gaussian bump of channels around the trajectory fires stochastically;
//! background Poisson noise and per-sample jitter (time warp, channel
//! shift, amplitude) provide within-class variability.
//!
//! Because all classes draw waypoints from the same channel range, the
//! time-collapsed channel histogram is only weakly discriminative — the
//! class is encoded in *when* the trajectory visits which channels. This is
//! the property that makes the paper's timestep reduction a genuine
//! accuracy/efficiency trade-off (Figs. 2(b) and 8).

use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::sample::{Dataset, LabeledSample};

/// Configuration of the synthetic SHD-like generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShdLikeConfig {
    /// Number of input channels (SHD: 700).
    pub channels: usize,
    /// Number of classes (SHD: 20).
    pub classes: u16,
    /// Timesteps per sample at the native temporal resolution (paper: 100).
    pub steps: usize,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples generated per class.
    pub test_per_class: usize,
    /// Number of trajectory waypoints per class.
    pub waypoints: usize,
    /// Standard deviation of the channel bump around the trajectory.
    pub bump_sigma: f32,
    /// Peak firing probability at the bump center.
    pub peak_rate: f64,
    /// Background noise rate (per channel per timestep).
    pub noise_rate: f64,
    /// Std-dev of the per-sample channel shift (jitter).
    pub channel_jitter: f32,
    /// Std-dev of the per-sample time-warp factor around 1.0.
    pub speed_jitter: f32,
    /// Master seed; train/test/class streams are forked from it.
    pub seed: u64,
}

impl ShdLikeConfig {
    /// Paper-scale configuration: 700 channels, 20 classes, 100 timesteps.
    ///
    /// Sample counts are kept moderate (CPU training); scale them up with
    /// the fields directly if needed.
    #[must_use]
    pub fn paper() -> Self {
        ShdLikeConfig {
            channels: 700,
            classes: 20,
            steps: 100,
            train_per_class: 24,
            test_per_class: 10,
            waypoints: 5,
            bump_sigma: 9.0,
            peak_rate: 0.85,
            noise_rate: 0.004,
            channel_jitter: 10.0,
            speed_jitter: 0.08,
            seed: 0x5EED_5EED,
        }
    }

    /// Tiny configuration for unit tests and doc examples: fast to
    /// generate, still structurally faithful (multiple classes, temporal
    /// trajectories, jitter).
    #[must_use]
    pub fn smoke_test() -> Self {
        ShdLikeConfig {
            channels: 48,
            classes: 4,
            steps: 40,
            train_per_class: 6,
            test_per_class: 3,
            waypoints: 4,
            bump_sigma: 2.5,
            peak_rate: 0.9,
            noise_rate: 0.005,
            channel_jitter: 1.5,
            speed_jitter: 0.05,
            seed: 7,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.channels == 0 {
            return Err(DataError::InvalidConfig {
                what: "channels",
                detail: "must be at least 1".into(),
            });
        }
        if self.classes == 0 {
            return Err(DataError::InvalidConfig {
                what: "classes",
                detail: "must be at least 1".into(),
            });
        }
        if self.steps < 2 {
            return Err(DataError::InvalidConfig {
                what: "steps",
                detail: "must be at least 2".into(),
            });
        }
        if self.waypoints < 2 {
            return Err(DataError::InvalidConfig {
                what: "waypoints",
                detail: "must be at least 2".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.peak_rate) {
            return Err(DataError::InvalidConfig {
                what: "peak_rate",
                detail: format!("must be in [0, 1], got {}", self.peak_rate),
            });
        }
        if !(0.0..=1.0).contains(&self.noise_rate) {
            return Err(DataError::InvalidConfig {
                what: "noise_rate",
                detail: format!("must be in [0, 1], got {}", self.noise_rate),
            });
        }
        if self.bump_sigma <= 0.0 {
            return Err(DataError::InvalidConfig {
                what: "bump_sigma",
                detail: "must be positive".into(),
            });
        }
        Ok(())
    }
}

/// The trajectory prototype of one class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassPrototype {
    waypoints: Vec<f32>,
}

impl ClassPrototype {
    /// Derives the prototype of `class` deterministically from the config
    /// seed. Waypoints are drawn from the central 80 % of the channel range
    /// so jittered bumps rarely clip at the borders.
    #[must_use]
    pub fn derive(config: &ShdLikeConfig, class: u16) -> Self {
        let mut rng = Rng::seed_from_u64(
            config.seed ^ 0xC1A5_5000u64.wrapping_add(u64::from(class).wrapping_mul(0x9E37)),
        );
        let lo = 0.1 * config.channels as f32;
        let hi = 0.9 * config.channels as f32;
        let waypoints = (0..config.waypoints)
            .map(|_| rng.uniform_range(lo, hi))
            .collect();
        ClassPrototype { waypoints }
    }

    /// Trajectory center channel at normalized time `u` in `[0, 1]`
    /// (piecewise-linear interpolation between waypoints).
    #[must_use]
    pub fn center_at(&self, u: f32) -> f32 {
        let u = u.clamp(0.0, 1.0);
        let segments = self.waypoints.len() - 1;
        let x = u * segments as f32;
        let i = (x.floor() as usize).min(segments - 1);
        let frac = x - i as f32;
        self.waypoints[i] * (1.0 - frac) + self.waypoints[i + 1] * frac
    }

    /// Borrow of the waypoint channels.
    #[must_use]
    pub fn waypoints(&self) -> &[f32] {
        &self.waypoints
    }
}

/// Draws one sample of `class` using the caller's RNG stream.
#[must_use]
pub fn draw_sample(
    config: &ShdLikeConfig,
    prototype: &ClassPrototype,
    rng: &mut Rng,
) -> SpikeRaster {
    let mut raster = SpikeRaster::new(config.channels, config.steps);

    // Per-sample jitter: channel offset, time-warp speed, slight rate scale.
    let channel_shift = rng.normal_f32(0.0, config.channel_jitter);
    let speed = (1.0 + rng.normal_f32(0.0, config.speed_jitter)).clamp(0.7, 1.3);
    let rate_scale = (1.0 + rng.normal_f32(0.0, 0.1)).clamp(0.6, 1.4) as f64;

    let sigma = config.bump_sigma;
    let reach = (3.0 * sigma).ceil() as isize;
    let steps = config.steps as f32;

    for t in 0..config.steps {
        // Warped normalized time; clamped inside [0,1] by center_at.
        let u = (t as f32 / (steps - 1.0)) * speed;
        let center = prototype.center_at(u) + channel_shift;
        let c0 = center.round() as isize;
        for dc in -reach..=reach {
            let ch = c0 + dc;
            if ch < 0 || ch >= config.channels as isize {
                continue;
            }
            let dist = ch as f32 - center;
            let p = config.peak_rate
                * rate_scale
                * f64::from((-0.5 * (dist / sigma) * (dist / sigma)).exp());
            if p > 0.0 && rng.bernoulli(p) {
                raster.set(ch as usize, t, true);
            }
        }
    }

    // Background noise: expected count placed uniformly (fast equivalent of
    // per-cell Bernoulli at low rates).
    let cells = (config.channels * config.steps) as f64;
    let noise_spikes = rng.poisson(config.noise_rate * cells);
    for _ in 0..noise_spikes {
        let n = rng.below(config.channels as u64) as usize;
        let t = rng.below(config.steps as u64) as usize;
        raster.set(n, t, true);
    }

    raster
}

/// Generated train/test pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedData {
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
}

/// Generates the training split only (see [`generate_pair`] for both).
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] if the config fails validation.
pub fn generate(config: &ShdLikeConfig) -> Result<Dataset, DataError> {
    Ok(generate_pair(config)?.train)
}

/// Generates deterministic train and test splits.
///
/// The train and test streams are forked from the master seed, so the two
/// splits are disjoint draws from the same class distributions; the same
/// config always produces bit-identical data.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] if the config fails validation.
pub fn generate_pair(config: &ShdLikeConfig) -> Result<GeneratedData, DataError> {
    config.validate()?;
    let prototypes: Vec<ClassPrototype> = (0..config.classes)
        .map(|k| ClassPrototype::derive(config, k))
        .collect();

    let mut master = Rng::seed_from_u64(config.seed);
    let mut train_rng = master.fork(1);
    let mut test_rng = master.fork(2);

    let make = |per_class: usize, rng: &mut Rng| -> Result<Dataset, DataError> {
        let mut samples = Vec::with_capacity(per_class * config.classes as usize);
        for class in 0..config.classes {
            let proto = &prototypes[class as usize];
            for _ in 0..per_class {
                samples.push(LabeledSample::new(draw_sample(config, proto, rng), class));
            }
        }
        Dataset::new(samples, config.classes, config.channels, config.steps)
    };

    Ok(GeneratedData {
        train: make(config.train_per_class, &mut train_rng)?,
        test: make(config.test_per_class, &mut test_rng)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_is_valid() {
        assert!(ShdLikeConfig::smoke_test().validate().is_ok());
        assert!(ShdLikeConfig::paper().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let base = ShdLikeConfig::smoke_test();
        for f in [
            &mut |c: &mut ShdLikeConfig| c.channels = 0,
            &mut |c: &mut ShdLikeConfig| c.classes = 0,
            &mut |c: &mut ShdLikeConfig| c.steps = 1,
            &mut |c: &mut ShdLikeConfig| c.waypoints = 1,
            &mut |c: &mut ShdLikeConfig| c.peak_rate = 1.5,
            &mut |c: &mut ShdLikeConfig| c.noise_rate = -0.1,
            &mut |c: &mut ShdLikeConfig| c.bump_sigma = 0.0,
        ] as [&mut dyn FnMut(&mut ShdLikeConfig); 7]
        {
            let mut c = base.clone();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = ShdLikeConfig::smoke_test();
        let a = generate_pair(&config).unwrap();
        let b = generate_pair(&config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = ShdLikeConfig::smoke_test();
        let a = generate_pair(&config).unwrap();
        config.seed += 1;
        let b = generate_pair(&config).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn shapes_and_counts() {
        let config = ShdLikeConfig::smoke_test();
        let data = generate_pair(&config).unwrap();
        assert_eq!(
            data.train.len(),
            config.train_per_class * config.classes as usize
        );
        assert_eq!(
            data.test.len(),
            config.test_per_class * config.classes as usize
        );
        assert_eq!(data.train.channels(), config.channels);
        assert_eq!(data.train.steps(), config.steps);
        for class in 0..config.classes {
            assert_eq!(
                data.train.indices_of_class(class).len(),
                config.train_per_class
            );
        }
    }

    #[test]
    fn samples_have_reasonable_density() {
        let config = ShdLikeConfig::smoke_test();
        let data = generate(&config).unwrap();
        for s in &data {
            let d = s.raster.density();
            assert!(d > 0.005, "sample too sparse: {d}");
            assert!(d < 0.6, "sample too dense: {d}");
        }
    }

    #[test]
    fn prototypes_stay_inside_channel_range() {
        let config = ShdLikeConfig::paper();
        for k in 0..config.classes {
            let p = ClassPrototype::derive(&config, k);
            for u in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
                let c = p.center_at(u);
                assert!(c >= 0.0 && c < config.channels as f32);
            }
            assert_eq!(p.waypoints().len(), config.waypoints);
        }
    }

    #[test]
    fn center_at_interpolates_between_waypoints() {
        let p = ClassPrototype {
            waypoints: vec![0.0, 10.0, 20.0],
        };
        assert_eq!(p.center_at(0.0), 0.0);
        assert!((p.center_at(0.25) - 5.0).abs() < 1e-5);
        assert!((p.center_at(0.5) - 10.0).abs() < 1e-5);
        assert_eq!(p.center_at(1.0), 20.0);
        // Clamped outside [0,1].
        assert_eq!(p.center_at(-1.0), 0.0);
        assert_eq!(p.center_at(2.0), 20.0);
    }

    #[test]
    fn classes_are_separable_by_trajectory_not_histogram() {
        // Same-class samples must be closer in raster space than
        // different-class samples on average (separability), measured by
        // per-timestep center-of-mass distance.
        let config = ShdLikeConfig::smoke_test();
        let data = generate(&config).unwrap();

        let com = |r: &SpikeRaster| -> Vec<f32> {
            (0..r.steps())
                .map(|t| {
                    let (mut sum, mut cnt) = (0.0f32, 0.0f32);
                    for n in r.active_at(t) {
                        sum += n as f32;
                        cnt += 1.0;
                    }
                    if cnt > 0.0 {
                        sum / cnt
                    } else {
                        -1.0
                    }
                })
                .collect()
        };
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            let mut d = 0.0;
            let mut n = 0;
            for (x, y) in a.iter().zip(b) {
                if *x >= 0.0 && *y >= 0.0 {
                    d += (x - y).abs();
                    n += 1;
                }
            }
            d / n.max(1) as f32
        };

        let traces: Vec<(u16, Vec<f32>)> = data.iter().map(|s| (s.label, com(&s.raster))).collect();
        let (mut within, mut wn, mut between, mut bn) = (0.0f32, 0, 0.0f32, 0);
        for i in 0..traces.len() {
            for j in (i + 1)..traces.len() {
                let d = dist(&traces[i].1, &traces[j].1);
                if traces[i].0 == traces[j].0 {
                    within += d;
                    wn += 1;
                } else {
                    between += d;
                    bn += 1;
                }
            }
        }
        let within = within / wn as f32;
        let between = between / bn as f32;
        assert!(
            between > 1.5 * within,
            "classes not separable: within={within}, between={between}"
        );
    }
}
