//! A second synthetic workload: rate-coded analog patterns.
//!
//! Where the SHD-like generator carries class identity in *temporal*
//! trajectories (so timestep reduction hurts), this generator produces
//! classic rate-coded data — class identity lives entirely in per-channel
//! firing *rates*, encoded through [`ncl_spike::encode::poisson_encode`].
//! It serves two purposes:
//!
//! 1. end-to-end exercise of the encoder path a released SNN library needs
//!    for non-event inputs;
//! 2. a control workload for the timestep-reduction experiments: rate
//!    codes are nearly invariant to decimation (rates survive subsampling
//!    in expectation), so the accuracy cliff of Fig. 2(b)/Fig. 8 should
//!    *not* appear here — evidence that the cliff on the SHD-like data is
//!    a property of temporal coding, not an artifact.

use ncl_spike::encode;
use ncl_tensor::Rng;
use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::sample::{Dataset, LabeledSample};

/// Configuration of the rate-coded generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateCodedConfig {
    /// Number of input channels.
    pub channels: usize,
    /// Number of classes.
    pub classes: u16,
    /// Timesteps per sample.
    pub steps: usize,
    /// Samples generated per class (per split).
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Peak firing probability per timestep.
    pub max_rate: f64,
    /// Std-dev of multiplicative per-sample rate jitter.
    pub rate_jitter: f32,
    /// Master seed.
    pub seed: u64,
}

impl RateCodedConfig {
    /// A small default suitable for tests and control experiments.
    #[must_use]
    pub fn small() -> Self {
        RateCodedConfig {
            channels: 48,
            classes: 4,
            steps: 40,
            train_per_class: 10,
            test_per_class: 5,
            max_rate: 0.35,
            rate_jitter: 0.15,
            seed: 99,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.channels == 0 || self.classes == 0 || self.steps == 0 {
            return Err(DataError::InvalidConfig {
                what: "shape",
                detail: "channels, classes and steps must all be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.max_rate) || self.max_rate == 0.0 {
            return Err(DataError::InvalidConfig {
                what: "max_rate",
                detail: format!("must be in (0, 1], got {}", self.max_rate),
            });
        }
        if self.rate_jitter < 0.0 {
            return Err(DataError::InvalidConfig {
                what: "rate_jitter",
                detail: "must be non-negative".into(),
            });
        }
        Ok(())
    }

    /// The analog rate prototype of `class`: a deterministic pattern of
    /// per-channel intensities in `[0, 1]`.
    #[must_use]
    pub fn prototype(&self, class: u16) -> Vec<f32> {
        let mut rng =
            Rng::seed_from_u64(self.seed ^ RATE_SALT ^ u64::from(class).wrapping_mul(0x9E37_79B9));
        (0..self.channels).map(|_| rng.uniform_f32()).collect()
    }
}

const RATE_SALT: u64 = 0x7A7E_C0DE;

/// Generated train/test pair of rate-coded data.
#[derive(Debug, Clone, PartialEq)]
pub struct RateCodedData {
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
}

/// Generates deterministic rate-coded train/test splits.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] if the config fails validation.
pub fn generate(config: &RateCodedConfig) -> Result<RateCodedData, DataError> {
    config.validate()?;
    let prototypes: Vec<Vec<f32>> = (0..config.classes)
        .map(|k| prototype_of(config, k))
        .collect();
    let mut master = Rng::seed_from_u64(config.seed);
    let mut train_rng = master.fork(1);
    let mut test_rng = master.fork(2);

    let make = |per_class: usize, rng: &mut Rng| -> Result<Dataset, DataError> {
        let mut samples = Vec::with_capacity(per_class * config.classes as usize);
        for class in 0..config.classes {
            for _ in 0..per_class {
                let jitter = (1.0 + rng.normal_f32(0.0, config.rate_jitter)).clamp(0.3, 1.7);
                let values: Vec<f32> = prototypes[class as usize]
                    .iter()
                    .map(|v| (v * jitter).clamp(0.0, 1.0))
                    .collect();
                let raster = encode::poisson_encode(&values, config.steps, config.max_rate, rng)
                    .map_err(|e| DataError::InvalidConfig {
                        what: "poisson encoding",
                        detail: e.to_string(),
                    })?;
                samples.push(LabeledSample::new(raster, class));
            }
        }
        Dataset::new(samples, config.classes, config.channels, config.steps)
    };

    Ok(RateCodedData {
        train: make(config.train_per_class, &mut train_rng)?,
        test: make(config.test_per_class, &mut test_rng)?,
    })
}

/// The analog rate prototype of `class` (free function used by both the
/// config method and the generator).
fn prototype_of(config: &RateCodedConfig, class: u16) -> Vec<f32> {
    let mut rng =
        Rng::seed_from_u64(config.seed ^ RATE_SALT ^ u64::from(class).wrapping_mul(0x9E37_79B9));
    (0..config.channels).map(|_| rng.uniform_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_spike::metrics::firing_rates;

    #[test]
    fn small_config_validates_and_generates() {
        let config = RateCodedConfig::small();
        assert!(config.validate().is_ok());
        let data = generate(&config).unwrap();
        assert_eq!(data.train.len(), 40);
        assert_eq!(data.test.len(), 20);
        assert_eq!(data.train.channels(), 48);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut c = RateCodedConfig::small();
        c.channels = 0;
        assert!(c.validate().is_err());
        let mut c = RateCodedConfig::small();
        c.max_rate = 0.0;
        assert!(c.validate().is_err());
        let mut c = RateCodedConfig::small();
        c.max_rate = 1.5;
        assert!(c.validate().is_err());
        let mut c = RateCodedConfig::small();
        c.rate_jitter = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let config = RateCodedConfig::small();
        assert_eq!(generate(&config).unwrap(), generate(&config).unwrap());
    }

    #[test]
    fn firing_rates_track_class_prototypes() {
        let mut config = RateCodedConfig::small();
        config.steps = 400; // long window for stable rate estimates
        config.rate_jitter = 0.0;
        let data = generate(&config).unwrap();
        // Mean firing rate of each sample correlates with its prototype.
        for class in 0..config.classes {
            let proto = config.prototype(class);
            let idx = data.train.indices_of_class(class);
            let sample = &data.train.samples()[idx[0]];
            let rates = firing_rates(&sample.raster);
            // Channels with high prototype intensity fire more.
            let hi: Vec<usize> = (0..config.channels).filter(|&c| proto[c] > 0.7).collect();
            let lo: Vec<usize> = (0..config.channels).filter(|&c| proto[c] < 0.3).collect();
            if !hi.is_empty() && !lo.is_empty() {
                let hi_mean: f32 = hi.iter().map(|&c| rates[c]).sum::<f32>() / hi.len() as f32;
                let lo_mean: f32 = lo.iter().map(|&c| rates[c]).sum::<f32>() / lo.len() as f32;
                assert!(hi_mean > lo_mean, "class {class}: {hi_mean} vs {lo_mean}");
            }
        }
    }

    #[test]
    fn rate_code_survives_decimation() {
        // The control property: OR-free decimation keeps relative rates.
        let mut config = RateCodedConfig::small();
        config.steps = 300;
        config.rate_jitter = 0.0;
        let data = generate(&config).unwrap();
        let sample = &data.train.samples()[0];
        let full_rates = firing_rates(&sample.raster);
        let reduced = ncl_spike::resample::resample(
            &sample.raster,
            60,
            ncl_spike::resample::ResampleStrategy::Decimate,
        )
        .unwrap();
        let reduced_rates = firing_rates(&reduced);
        // Rank correlation proxy: the top-rate channel stays near the top.
        let top_full = ncl_tensor::ops::argmax(&full_rates).unwrap();
        let mut sorted: Vec<usize> = (0..reduced_rates.len()).collect();
        sorted.sort_by(|&a, &b| reduced_rates[b].total_cmp(&reduced_rates[a]));
        let rank = sorted.iter().position(|&c| c == top_full).unwrap();
        assert!(
            rank < 10,
            "top channel fell to rank {rank} after decimation"
        );
    }
}
