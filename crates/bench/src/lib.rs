//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` reproduces one figure of the paper (see
//! DESIGN.md §6) and accepts the same flags:
//!
//! * `--paper` — full paper scale (700-channel data, 20 classes, T = 100,
//!   the Fig. 6 network, 50 CL epochs). Slow on small machines.
//! * default — a reduced "demo" scale with the same structure (3 hidden
//!   layers, 10 classes, T = 60) that finishes quickly while preserving
//!   every qualitative shape.
//! * `--seed <u64>` — override the scenario seed.
//! * `--insertion <k>` — override the insertion layer where applicable.
//! * `--jobs <n>` — worker threads for engine-driven sweeps (default: half
//!   the available cores, since each job additionally runs
//!   `config.parallelism` gradient workers). Results are bit-identical for
//!   any worker count.
//!
//! Pre-trained models are cached under `target/ncl-cache` (see
//! `replay4ncl::cache`), so sweeps re-use one pre-training run.

use replay4ncl::ScenarioConfig;

/// Which experiment scale to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced-scale demo (default): minutes, same shapes.
    Demo,
    /// Full paper scale: the exact protocol sizes of Section IV.
    Paper,
}

/// Parsed command-line arguments shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Selected scale.
    pub scale: Scale,
    /// Optional seed override.
    pub seed: Option<u64>,
    /// Optional insertion-layer override.
    pub insertion: Option<usize>,
    /// Optional engine worker-count override (`--jobs`).
    pub jobs: Option<usize>,
}

impl RunArgs {
    /// Parses `std::env::args()`. Unknown flags abort with usage help.
    #[must_use]
    pub fn from_env() -> Self {
        let mut args = RunArgs {
            scale: Scale::Demo,
            seed: None,
            insertion: None,
            jobs: None,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper" => args.scale = Scale::Paper,
                "--seed" => {
                    let v = iter.next().unwrap_or_else(|| usage("--seed needs a value"));
                    args.seed = Some(v.parse().unwrap_or_else(|_| usage("--seed must be a u64")));
                }
                "--insertion" => {
                    let v = iter
                        .next()
                        .unwrap_or_else(|| usage("--insertion needs a value"));
                    args.insertion = Some(
                        v.parse()
                            .unwrap_or_else(|_| usage("--insertion must be a usize")),
                    );
                }
                "--jobs" => {
                    let v = iter.next().unwrap_or_else(|| usage("--jobs needs a value"));
                    let n: usize = v
                        .parse()
                        .unwrap_or_else(|_| usage("--jobs must be a positive integer"));
                    if n == 0 {
                        usage("--jobs must be at least 1");
                    }
                    args.jobs = Some(n);
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Effective engine worker count: the `--jobs` override, or half the
    /// available cores (each job itself runs `config.parallelism` gradient
    /// threads, so a full-core pool would oversubscribe 2x).
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(default_jobs)
    }

    /// Builds the scenario configuration for the selected scale, applying
    /// overrides.
    #[must_use]
    pub fn config(&self) -> ScenarioConfig {
        let mut config = match self.scale {
            Scale::Paper => ScenarioConfig::paper(),
            Scale::Demo => demo_config(),
        };
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(insertion) = self.insertion {
            config.insertion_layer = insertion;
        }
        config
    }

    /// Human-readable scale tag for report headers.
    #[must_use]
    pub fn scale_tag(&self) -> &'static str {
        match self.scale {
            Scale::Paper => "paper scale",
            Scale::Demo => "demo scale (use --paper for full scale)",
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--paper] [--seed <u64>] [--insertion <k>] [--jobs <n>]");
    std::process::exit(2);
}

/// Default engine worker count: half the available cores, at least 1.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| (n.get() / 2).max(1))
}

/// The reduced-scale demo configuration: structurally identical to the
/// paper setup (3 recurrent hidden layers + readout, class-incremental
/// 9+1 split, T* at 2/5 of T) at roughly 1/20 of the compute.
#[must_use]
pub fn demo_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::paper();
    config.data.channels = 128;
    config.data.classes = 10;
    config.data.steps = 60;
    config.data.train_per_class = 12;
    config.data.test_per_class = 6;
    config.data.bump_sigma = 4.0;
    config.data.channel_jitter = 4.0;
    config.network.input_size = 128;
    config.network.hidden_sizes = vec![64, 48, 32];
    config.network.output_size = 10;
    config.pretrain_epochs = 16;
    config.cl_epochs = 50;
    config.batch_size = 4; // smaller batches = more optimizer steps at demo scale
    config
}

/// The shared training-benchmark problem: one definition used by both
/// `benches/train.rs` (criterion) and the `ncl-train-bench` binary, so
/// the criterion numbers and the `BENCH_train.json` datapoints always
/// measure the same workload.
pub mod train_demo {
    use ncl_snn::{LifConfig, Network, NetworkConfig, ReadoutConfig};
    use ncl_spike::SpikeRaster;
    use ncl_tensor::Rng;

    /// The demo batch size (the smoke/demo scenario setting).
    pub const BATCH_SIZE: usize = 4;

    /// The demo-scale network: the workspace's smoke/demo scenario
    /// dimensions (48 channels, 24-16 hidden, 4 classes) — the setting
    /// every `--demo` figure and CI smoke run trains at.
    #[must_use]
    pub fn network() -> Network {
        let config = NetworkConfig {
            input_size: 48,
            hidden_sizes: vec![24, 16],
            output_size: 4,
            recurrent: true,
            lif: LifConfig::default(),
            readout: ReadoutConfig::default(),
            seed: 11,
        };
        Network::new(config).expect("demo config is valid")
    }

    /// Deterministic labeled rasters of the given shape (four classes,
    /// class-banded channels plus common background activity).
    #[must_use]
    pub fn rasters(neurons: usize, steps: usize, samples: usize) -> Vec<(SpikeRaster, u16)> {
        let mut rng = Rng::seed_from_u64(5);
        (0..samples)
            .map(|i| {
                let label = (i % 4) as u16;
                let raster = SpikeRaster::from_fn(neurons, steps, |n, _| {
                    (n % 4 == label as usize || n % 7 == 0) && rng.bernoulli(0.4)
                });
                (raster, label)
            })
            .collect()
    }
}

/// The paper's T* (reduced replay timesteps) for a given native T:
/// 40 at T = 100, scaled proportionally elsewhere.
#[must_use]
pub fn t_star_of(native_steps: usize) -> usize {
    (native_steps * 2 / 5).max(1)
}

/// Replay samples stored per old class: half the train split per class —
/// a typical latent-replay budget, calibrated so SpikingLR reaches its
/// paper-reported old-task retention at the demo scale.
#[must_use]
pub fn replay_per_class(config: &ScenarioConfig) -> usize {
    (config.data.train_per_class / 2).max(1)
}

/// The CL learning-rate divisor used by the harness for Replay4NCL.
///
/// Alg. 1 prescribes `η_cl = η_pre / 100` for the authors' SHD-scale run
/// (~10⁴ optimizer steps). These reproductions take two to three orders of
/// magnitude fewer steps, so the divisor is rescaled to keep the *total
/// parameter displacement* of the careful-update mechanism comparable
/// (calibrated with the `calibrate` binary; see EXPERIMENTS.md).
#[must_use]
pub fn cl_lr_divisor(scale: Scale) -> f32 {
    match scale {
        Scale::Demo => 2.0,
        Scale::Paper => 5.0,
    }
}

/// The harness's standard Replay4NCL spec for a scenario.
#[must_use]
pub fn replay4ncl_spec(config: &ScenarioConfig, scale: Scale) -> replay4ncl::MethodSpec {
    replay4ncl::MethodSpec::replay4ncl(replay_per_class(config), t_star_of(config.data.steps))
        .with_lr_divisor(cl_lr_divisor(scale))
}

/// The harness's standard SpikingLR spec for a scenario.
#[must_use]
pub fn spiking_lr_spec(config: &ScenarioConfig) -> replay4ncl::MethodSpec {
    replay4ncl::MethodSpec::spiking_lr(replay_per_class(config))
}

/// Prints the standard figure-binary header.
pub fn print_header(figure: &str, what: &str, args: &RunArgs, config: &ScenarioConfig) {
    println!("=== {figure}: {what} ===");
    println!(
        "[{}] {} channels, {} classes, T={}, net {:?}, insertion {}, {} CL epochs",
        args.scale_tag(),
        config.data.channels,
        config.data.classes,
        config.data.steps,
        config.network.hidden_sizes,
        config.insertion_layer,
        config.cl_epochs,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_config_is_valid_and_structured_like_paper() {
        let c = demo_config();
        assert!(c.validate().is_ok());
        assert_eq!(
            c.network.hidden_sizes.len(),
            3,
            "needs insertion layers 0..=3"
        );
        assert!(c.data.classes >= 2);
    }

    #[test]
    fn t_star_matches_paper_ratio() {
        assert_eq!(t_star_of(100), 40);
        assert_eq!(t_star_of(60), 24);
        assert_eq!(t_star_of(1), 1);
    }

    #[test]
    fn args_config_applies_overrides() {
        let args = RunArgs {
            scale: Scale::Demo,
            seed: Some(99),
            insertion: Some(2),
            jobs: None,
        };
        let c = args.config();
        assert_eq!(c.seed, 99);
        assert_eq!(c.insertion_layer, 2);
        let paper = RunArgs {
            scale: Scale::Paper,
            seed: None,
            insertion: None,
            jobs: None,
        }
        .config();
        assert_eq!(paper.data.channels, 700);
    }

    #[test]
    fn jobs_default_and_override() {
        let mut args = RunArgs {
            scale: Scale::Demo,
            seed: None,
            insertion: None,
            jobs: None,
        };
        assert!(args.jobs() >= 1);
        args.jobs = Some(3);
        assert_eq!(args.jobs(), 3);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn replay_budget_positive() {
        assert!(replay_per_class(&demo_config()) >= 1);
        assert!(replay_per_class(&ScenarioConfig::paper()) >= 1);
    }
}
