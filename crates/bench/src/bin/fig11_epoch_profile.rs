//! Fig. 11: at the headline insertion layer 3 — (a) old-task accuracy per
//! epoch for SpikingLR and Replay4NCL, (b) cumulative processing time and
//! (c) energy at epoch checkpoints (the paper samples epochs 10/30/50),
//! normalized to SpikingLR at the first checkpoint.

use ncl_bench::{print_header, replay4ncl_spec, spiking_lr_spec, RunArgs};
use replay4ncl::{cache, report, scenario};

fn main() {
    let mut args = RunArgs::from_env();
    args.insertion.get_or_insert(3);
    let config = args.config();
    print_header(
        "Fig. 11",
        "epoch profiles at the headline insertion layer",
        &args,
        &config,
    );

    let (network, pretrain_acc) = cache::pretrained_network(&config).expect("pre-training failed");
    let sota = scenario::run_method(&config, &spiking_lr_spec(&config), &network, pretrain_acc)
        .expect("spikinglr failed");
    let ours = scenario::run_method(
        &config,
        &replay4ncl_spec(&config, args.scale),
        &network,
        pretrain_acc,
    )
    .expect("replay4ncl failed");

    // (a) old-task accuracy per epoch.
    println!("--- (a) old-task accuracy per epoch ---");
    let rows: Vec<Vec<String>> = sota
        .epochs
        .iter()
        .zip(ours.epochs.iter())
        .map(|(s, o)| {
            vec![
                format!("{}", s.epoch),
                report::pct(s.old_acc),
                report::pct(o.old_acc),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(&["epoch", "SpikingLR old acc", "Replay4NCL old acc"], &rows)
    );

    // (b)+(c) cumulative cost at checkpoints epochs/5, 3*epochs/5, epochs.
    let n = config.cl_epochs;
    let checkpoints = [n / 5, 3 * n / 5, n - 1];
    let reference = sota.cost_through_epoch(checkpoints[0]);
    println!();
    println!("--- (b)+(c) cumulative cost at epoch checkpoints (norm. to SOTA @ first) ---");
    let rows: Vec<Vec<String>> = checkpoints
        .iter()
        .map(|&e| {
            let s = sota.cost_through_epoch(e);
            let o = ours.cost_through_epoch(e);
            vec![
                format!("{}", e + 1),
                format!("{:.3}", s.latency.ratio_to(reference.latency)),
                format!("{:.3}", o.latency.ratio_to(reference.latency)),
                format!("{:.3}", s.energy.ratio_to(reference.energy)),
                format!("{:.3}", o.energy.ratio_to(reference.energy)),
                format!("{:.2}x", o.speedup_vs(&s)),
                report::pct(o.energy_saving_vs(&s)),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &[
                "epochs",
                "SOTA time",
                "R4NCL time",
                "SOTA energy",
                "R4NCL energy",
                "speed-up",
                "energy saving",
            ],
            &rows
        )
    );
    println!();
    println!(
        "final old-task acc: SpikingLR {} vs Replay4NCL {} \
         (paper: 86.22% vs 90.43%; 36.4% energy saving at layer 3)",
        report::pct(sota.final_old_acc()),
        report::pct(ours.final_old_acc()),
    );
}
