//! Fig. 10: SpikingLR vs Replay4NCL across LR insertion layers 0–3 —
//! (a) final old/new-task Top-1 accuracy, (b) processing time and
//! (c) energy, both normalized to SpikingLR at insertion layer 0.
//!
//! Expected shapes: comparable accuracy at every layer with new-task
//! accuracy dropping at the deepest insertion (readout-only adaptation);
//! Replay4NCL consistently faster and lower-energy, with savings growing
//! for earlier insertion layers.
//!
//! The grid itself is `ncl_runtime::suites::insertion_sweep`, executed on
//! the parallel engine — the per-cell results are bit-identical to the
//! former serial loop for any `--jobs` value.

use ncl_bench::{print_header, replay4ncl_spec, spiking_lr_spec, RunArgs};
use ncl_runtime::{suites, Engine};
use replay4ncl::{report, ScenarioResult};

fn main() {
    let args = RunArgs::from_env();
    let base_config = args.config();
    print_header(
        "Fig. 10",
        "accuracy/time/energy across insertion layers",
        &args,
        &base_config,
    );

    let layers = base_config.network.layers();
    let methods = [
        spiking_lr_spec(&base_config),
        replay4ncl_spec(&base_config, args.scale),
    ];
    let suite = suites::insertion_sweep(&base_config, &methods);
    let suite_report = Engine::new(args.jobs()).run(&suite).expect("sweep failed");

    // Suite order is insertion-major with methods in the order above.
    let mut jobs = suite_report.jobs.into_iter();
    let mut sota_results: Vec<ScenarioResult> = Vec::new();
    let mut ours_results: Vec<ScenarioResult> = Vec::new();
    for _ in 0..=layers {
        sota_results.push(jobs.next().expect("sota cell").result);
        ours_results.push(jobs.next().expect("ours cell").result);
    }

    // (a) accuracy.
    println!("--- (a) final Top-1 accuracy ---");
    let rows: Vec<Vec<String>> = (0..=layers)
        .map(|i| {
            vec![
                format!("{i}"),
                report::pct(sota_results[i].final_old_acc()),
                report::pct(ours_results[i].final_old_acc()),
                report::pct(sota_results[i].final_new_acc()),
                report::pct(ours_results[i].final_new_acc()),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &[
                "insertion",
                "SpikingLR old",
                "Replay4NCL old",
                "SpikingLR new",
                "Replay4NCL new"
            ],
            &rows
        )
    );

    // (b)+(c) cost normalized to SpikingLR at layer 0.
    let reference = sota_results[0].total_cost();
    println!();
    println!("--- (b)+(c) cost normalized to SpikingLR @ insertion 0 ---");
    let rows: Vec<Vec<String>> = (0..=layers)
        .map(|i| {
            let s = sota_results[i].total_cost();
            let o = ours_results[i].total_cost();
            vec![
                format!("{i}"),
                format!("{:.3}", s.normalized_latency(&reference)),
                format!("{:.3}", o.normalized_latency(&reference)),
                format!("{:.3}", s.normalized_energy(&reference)),
                format!("{:.3}", o.normalized_energy(&reference)),
                format!("{:.2}x", o.speedup_vs(&s)),
                report::pct(o.energy_saving_vs(&s)),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &[
                "insertion",
                "SOTA time",
                "R4NCL time",
                "SOTA energy",
                "R4NCL energy",
                "speed-up",
                "energy saving",
            ],
            &rows
        )
    );
    println!();
    println!(
        "paper shapes: comparable accuracy (new-task drops at insertion 3); \
         Replay4NCL up to ~2.3x faster and up to ~57% lower energy"
    );
}
