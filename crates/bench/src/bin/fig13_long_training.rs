//! Fig. 13: long-training comparison — new-task accuracy of SpikingLR vs
//! Replay4NCL over an extended CL run (the paper uses 150 epochs; the demo
//! scale uses 3x its normal epoch budget). Replay4NCL's lower CL learning
//! rate should yield a visibly smoother learning curve; smoothness is
//! quantified with the total-variation roughness metric.

use ncl_bench::{print_header, replay4ncl_spec, spiking_lr_spec, RunArgs, Scale};
use ncl_tensor::stats;
use replay4ncl::{cache, report, scenario};

fn main() {
    let mut args = RunArgs::from_env();
    args.insertion.get_or_insert(3);
    let mut config = args.config();
    config.cl_epochs = match args.scale {
        Scale::Paper => 150,
        Scale::Demo => 3 * config.cl_epochs,
    };
    print_header(
        "Fig. 13",
        "long-training convergence comparison",
        &args,
        &config,
    );

    let (network, pretrain_acc) = cache::pretrained_network(&config).expect("pre-training failed");
    let sota = scenario::run_method(&config, &spiking_lr_spec(&config), &network, pretrain_acc)
        .expect("spikinglr failed");
    let ours = scenario::run_method(
        &config,
        &replay4ncl_spec(&config, args.scale),
        &network,
        pretrain_acc,
    )
    .expect("replay4ncl failed");

    println!("--- new-task accuracy per epoch ---");
    let rows: Vec<Vec<String>> = sota
        .epochs
        .iter()
        .zip(ours.epochs.iter())
        .map(|(s, o)| {
            vec![
                format!("{}", s.epoch),
                report::pct(s.new_acc),
                report::pct(o.new_acc),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(&["epoch", "SpikingLR new acc", "Replay4NCL new acc"], &rows)
    );

    let sota_rough = stats::roughness(&sota.new_acc_curve());
    let ours_rough = stats::roughness(&ours.new_acc_curve());
    println!();
    println!(
        "learning-curve roughness (mean |step|, lower = smoother): \
         SpikingLR {sota_rough:.4} vs Replay4NCL {ours_rough:.4}"
    );
    println!(
        "final new-task acc: SpikingLR {} vs Replay4NCL {} | final old-task acc: {} vs {}",
        report::pct(sota.final_new_acc()),
        report::pct(ours.final_new_acc()),
        report::pct(sota.final_old_acc()),
        report::pct(ours.final_old_acc()),
    );
    println!(
        "paper shape: Replay4NCL's lower learning rate gives better convergence \
         (smoother curve) over the long run"
    );
}
