//! Fig. 2(b): aggressive timestep reduction (100 → 20, i.e. T → T/5)
//! degrades accuracy significantly when applied naively to SpikingLR —
//! the case study motivating Replay4NCL's parameter adjustments.
//!
//! Prints old-task accuracy per epoch for SpikingLR at the native T and
//! at T/5 with no enhancements.

use ncl_bench::{print_header, replay_per_class, RunArgs};
use replay4ncl::{cache, methods::MethodSpec, report, scenario};

fn main() {
    let args = RunArgs::from_env();
    let config = args.config();
    print_header(
        "Fig. 2(b)",
        "accuracy under aggressive timestep reduction",
        &args,
        &config,
    );

    let (network, pretrain_acc) = cache::pretrained_network(&config).expect("pre-training failed");
    let per_class = replay_per_class(&config);
    let t = config.data.steps;

    let native = scenario::run_method(
        &config,
        &MethodSpec::spiking_lr(per_class),
        &network,
        pretrain_acc,
    )
    .expect("native run failed");
    let reduced = scenario::run_method(
        &config,
        &MethodSpec::spiking_lr_reduced(per_class, (t / 5).max(1)),
        &network,
        pretrain_acc,
    )
    .expect("reduced run failed");

    let rows: Vec<Vec<String>> = native
        .epochs
        .iter()
        .zip(reduced.epochs.iter())
        .map(|(a, b)| {
            vec![
                format!("{}", a.epoch),
                report::pct(a.old_acc),
                report::pct(b.old_acc),
                report::pct(a.new_acc),
                report::pct(b.new_acc),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &[
                "epoch",
                &format!("old acc @ T={t}"),
                &format!("old acc @ T={}", (t / 5).max(1)),
                &format!("new acc @ T={t}"),
                &format!("new acc @ T={}", (t / 5).max(1)),
            ],
            &rows
        )
    );
    println!();
    let drop = native.final_old_acc() - reduced.final_old_acc();
    println!(
        "final old-task accuracy: {} @ T={} vs {} @ T={} (drop {})",
        report::pct(native.final_old_acc()),
        t,
        report::pct(reduced.final_old_acc()),
        (t / 5).max(1),
        report::pct(drop),
    );
    println!("paper shape: significant accuracy degradation at T/5 without enhancements");
}
