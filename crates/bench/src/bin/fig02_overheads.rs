//! Fig. 2(a): the state-of-the-art SpikingLR incurs significant latency
//! and energy overheads compared to the baseline network without NCL
//! techniques, across latent-replay insertion layers 0–3.
//!
//! Prints the SpikingLR cost normalized to the baseline per insertion
//! layer (the paper's bars range roughly 2–6x for latency and 2–8x for
//! energy).

use ncl_bench::{print_header, spiking_lr_spec, RunArgs};
use replay4ncl::{cache, methods::MethodSpec, report, scenario};

fn main() {
    let args = RunArgs::from_env();
    let base_config = args.config();
    print_header(
        "Fig. 2(a)",
        "SpikingLR overheads vs the no-NCL baseline",
        &args,
        &base_config,
    );

    let layers = base_config.network.layers();
    let mut rows = Vec::new();
    for insertion in 0..=layers {
        let mut config = base_config.clone();
        config.insertion_layer = insertion;
        let (network, pretrain_acc) =
            cache::pretrained_network(&config).expect("pre-training failed");

        let baseline =
            scenario::run_method(&config, &MethodSpec::baseline(), &network, pretrain_acc)
                .expect("baseline failed");
        let sota = scenario::run_method(&config, &spiking_lr_spec(&config), &network, pretrain_acc)
            .expect("spikinglr failed");

        let b = baseline.total_cost();
        let s = sota.total_cost();
        rows.push(vec![
            format!("{insertion}"),
            format!("{:.2}x", s.normalized_latency(&b)),
            format!("{:.2}x", s.normalized_energy(&b)),
            format!("{}", s.latency),
            format!("{}", s.energy),
        ]);
    }

    println!(
        "{}",
        report::render_table(
            &[
                "LR insertion layer",
                "SpikingLR latency (norm. to baseline)",
                "SpikingLR energy (norm. to baseline)",
                "SpikingLR latency",
                "SpikingLR energy",
            ],
            &rows
        )
    );
    println!();
    println!(
        "paper shape: SpikingLR costs a multiple of the baseline at every insertion layer \
         (Fig. 2(a): ~2-6x latency, ~2-8x energy)"
    );
}
