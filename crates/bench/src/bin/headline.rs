//! Headline numbers (the paper's abstract): old/new Top-1 accuracy,
//! latency speed-up, latent-memory saving and energy saving of Replay4NCL
//! vs SpikingLR at the headline configuration (insertion layer 3,
//! T* = 2/5 T).
//!
//! Paper reference values: old-task Top-1 90.43 % (vs 86.22 % SpikingLR),
//! 4.88x latency speed-up, 20 % latent-memory saving, 36.43 % energy
//! saving.

use ncl_bench::{print_header, replay4ncl_spec, spiking_lr_spec, RunArgs};
use replay4ncl::{cache, methods::MethodSpec, report, scenario};

fn main() {
    let args = RunArgs::from_env();
    let config = args.config();
    print_header("Headline", "abstract numbers of the paper", &args, &config);

    let (network, pretrain_acc) = cache::pretrained_network(&config).expect("pre-training failed");
    println!(
        "pre-training done: old-class test accuracy {}",
        report::pct(pretrain_acc)
    );

    let methods = [
        MethodSpec::baseline(),
        spiking_lr_spec(&config),
        replay4ncl_spec(&config, args.scale),
    ];

    let mut results = Vec::new();
    for method in &methods {
        let result =
            scenario::run_method(&config, method, &network, pretrain_acc).expect("scenario failed");
        println!("{}", report::summarize(&result));
        results.push(result);
    }

    let sota = &results[1];
    let ours = &results[2];
    let rows = vec![
        report::comparison_row(sota, sota),
        report::comparison_row(ours, sota),
    ];
    println!();
    println!(
        "{}",
        report::render_table(
            &[
                "method",
                "old top-1",
                "new top-1",
                "speed-up vs SOTA",
                "energy saving",
                "memory saving"
            ],
            &rows,
        )
    );
    println!();
    println!(
        "paper reports: old 90.43% vs 86.22%, 4.88x latency, 20% memory, 36.43% energy \
         (absolute values differ on synthetic data; see EXPERIMENTS.md)"
    );
}
