//! Surrogate-gradient ablation (extension): does the choice of surrogate
//! shape matter for the CL phase? The paper fixes the fast sigmoid
//! (Fig. 5); this bench retrains the scenario with each standard shape.

use ncl_bench::{cl_lr_divisor, print_header, replay_per_class, t_star_of, RunArgs};
use ncl_snn::surrogate::SurrogateKind;
use replay4ncl::{cache, methods::MethodSpec, report, scenario};

fn main() {
    let mut args = RunArgs::from_env();
    args.insertion.get_or_insert(1);
    let base_config = args.config();
    print_header("Ablation", "surrogate-gradient shapes", &args, &base_config);

    let kinds = [
        SurrogateKind::FastSigmoid,
        SurrogateKind::ArcTan,
        SurrogateKind::Triangular,
        SurrogateKind::Gaussian,
    ];

    let mut rows = Vec::new();
    for kind in kinds {
        let mut config = base_config.clone();
        config.network.lif.surrogate_kind = kind;
        // Distinct pre-training per surrogate (the cache keys on the
        // network config, so each shape trains its own model).
        let (network, pretrain_acc) =
            cache::pretrained_network(&config).expect("pre-training failed");
        let method =
            MethodSpec::replay4ncl(replay_per_class(&config), t_star_of(config.data.steps))
                .with_lr_divisor(cl_lr_divisor(args.scale));
        let r = scenario::run_method(&config, &method, &network, pretrain_acc)
            .expect("scenario failed");
        rows.push(vec![
            format!("{kind:?}"),
            report::pct(pretrain_acc),
            report::pct(r.final_old_acc()),
            report::pct(r.final_new_acc()),
        ]);
    }

    println!(
        "{}",
        report::render_table(
            &[
                "surrogate",
                "pretrain acc",
                "old acc after CL",
                "new acc after CL"
            ],
            &rows
        )
    );
    println!();
    println!(
        "expectation: all standard shapes train; the paper's fast sigmoid is a solid \
         default rather than a uniquely-enabling choice"
    );
}
