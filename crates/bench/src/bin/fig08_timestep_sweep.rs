//! Fig. 8: timestep-optimization case study — accuracy profiles (a) and
//! normalized processing time (b) for T ∈ {1.0, 0.6, 0.4, 0.2} × native T
//! (the paper's 100/60/40/20), using naive reduction without parameter
//! adjustments.
//!
//! Expected shapes (the paper's Observations A–C): aggressive reduction
//! (0.2 T) hurts old-task accuracy most; ≥ 0.4 T stays acceptable;
//! processing time falls roughly linearly with T.
//!
//! The grid itself is `ncl_runtime::suites::timestep_sweep`, executed on
//! the parallel engine — the per-cell results are bit-identical to the
//! former serial loop for any `--jobs` value.

use ncl_bench::{print_header, replay_per_class, RunArgs};
use ncl_runtime::{suites, Engine};
use replay4ncl::{report, ScenarioResult};

fn main() {
    let args = RunArgs::from_env();
    let config = args.config();
    print_header(
        "Fig. 8",
        "accuracy & latency across timestep settings",
        &args,
        &config,
    );

    let t = config.data.steps;
    let suite = suites::timestep_sweep(&config, replay_per_class(&config));
    let suite_report = Engine::new(args.jobs()).run(&suite).expect("sweep failed");

    let results: Vec<(usize, ScenarioResult)> = suites::timestep_fractions(t)
        .into_iter()
        .zip(suite_report.jobs)
        .map(|((_, steps), job)| (steps, job.result))
        .collect();

    // (a) accuracy profiles across epochs.
    println!("--- (a) accuracy per epoch (old task | new task) ---");
    let headers: Vec<String> = std::iter::once("epoch".to_string())
        .chain(results.iter().map(|(s, _)| format!("old@T={s}")))
        .chain(results.iter().map(|(s, _)| format!("new@T={s}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let epochs = results[0].1.epochs.len();
    let rows: Vec<Vec<String>> = (0..epochs)
        .map(|e| {
            let mut row = vec![format!("{e}")];
            row.extend(
                results
                    .iter()
                    .map(|(_, r)| report::pct(r.epochs[e].old_acc)),
            );
            row.extend(
                results
                    .iter()
                    .map(|(_, r)| report::pct(r.epochs[e].new_acc)),
            );
            row
        })
        .collect();
    println!("{}", report::render_table(&header_refs, &rows));

    // (b) processing time normalized to the native-T setting.
    println!();
    println!("--- (b) CL processing time, normalized to T={t} ---");
    let native_cost = results[0].1.total_cost();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(s, r)| {
            let c = r.total_cost();
            vec![
                format!("{s}"),
                format!("{:.3}", c.normalized_latency(&native_cost)),
                format!("{}", c.latency),
                report::pct(r.final_old_acc()),
                report::pct(r.final_new_acc()),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &[
                "timesteps",
                "normalized time",
                "absolute time",
                "final old acc",
                "final new acc"
            ],
            &rows
        )
    );
    println!();
    println!(
        "paper shapes: old-task accuracy degrades as T shrinks (worst at 0.2T); \
         processing time decreases with T (Observations A-C)"
    );
}
