//! Fig. 8: timestep-optimization case study — accuracy profiles (a) and
//! normalized processing time (b) for T ∈ {1.0, 0.6, 0.4, 0.2} × native T
//! (the paper's 100/60/40/20), using naive reduction without parameter
//! adjustments.
//!
//! Expected shapes (the paper's Observations A–C): aggressive reduction
//! (0.2 T) hurts old-task accuracy most; ≥ 0.4 T stays acceptable;
//! processing time falls roughly linearly with T.

use ncl_bench::{print_header, replay_per_class, RunArgs};
use replay4ncl::{cache, methods::MethodSpec, report, scenario, ScenarioResult};

fn main() {
    let args = RunArgs::from_env();
    let config = args.config();
    print_header(
        "Fig. 8",
        "accuracy & latency across timestep settings",
        &args,
        &config,
    );

    let (network, pretrain_acc) = cache::pretrained_network(&config).expect("pre-training failed");
    let per_class = replay_per_class(&config);
    let t = config.data.steps;
    let fractions = [
        (1.0f64, t),
        (0.6, t * 3 / 5),
        (0.4, t * 2 / 5),
        (0.2, t / 5),
    ];

    let mut results: Vec<(usize, ScenarioResult)> = Vec::new();
    for &(_, steps) in &fractions {
        let method = if steps == t {
            MethodSpec::spiking_lr(per_class)
        } else {
            MethodSpec::spiking_lr_reduced(per_class, steps.max(1))
        };
        let r = scenario::run_method(&config, &method, &network, pretrain_acc)
            .expect("scenario failed");
        results.push((steps.max(1), r));
    }

    // (a) accuracy profiles across epochs.
    println!("--- (a) accuracy per epoch (old task | new task) ---");
    let headers: Vec<String> = std::iter::once("epoch".to_string())
        .chain(results.iter().map(|(s, _)| format!("old@T={s}")))
        .chain(results.iter().map(|(s, _)| format!("new@T={s}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let epochs = results[0].1.epochs.len();
    let rows: Vec<Vec<String>> = (0..epochs)
        .map(|e| {
            let mut row = vec![format!("{e}")];
            row.extend(
                results
                    .iter()
                    .map(|(_, r)| report::pct(r.epochs[e].old_acc)),
            );
            row.extend(
                results
                    .iter()
                    .map(|(_, r)| report::pct(r.epochs[e].new_acc)),
            );
            row
        })
        .collect();
    println!("{}", report::render_table(&header_refs, &rows));

    // (b) processing time normalized to the native-T setting.
    println!();
    println!("--- (b) CL processing time, normalized to T={t} ---");
    let native_cost = results[0].1.total_cost();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(s, r)| {
            let c = r.total_cost();
            vec![
                format!("{s}"),
                format!("{:.3}", c.normalized_latency(&native_cost)),
                format!("{}", c.latency),
                report::pct(r.final_old_acc()),
                report::pct(r.final_new_acc()),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &[
                "timesteps",
                "normalized time",
                "absolute time",
                "final old acc",
                "final new acc"
            ],
            &rows
        )
    );
    println!();
    println!(
        "paper shapes: old-task accuracy degrades as T shrinks (worst at 0.2T); \
         processing time decreases with T (Observations A-C)"
    );
}
