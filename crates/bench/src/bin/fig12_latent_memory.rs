//! Fig. 12: latent-memory sizes of SpikingLR vs Replay4NCL across LR
//! insertion layers 1–3, normalized to SpikingLR at layer 1.
//!
//! Expected shapes: later layers need less memory (fewer neurons);
//! Replay4NCL saves ~20 % at every layer (40 stored frames vs the codec's
//! 50 at the paper's T = 100).

use ncl_bench::{print_header, replay4ncl_spec, spiking_lr_spec, RunArgs};
use ncl_spike::memory::bits_to_kib;
use replay4ncl::{cache, phases, report};

fn main() {
    let args = RunArgs::from_env();
    let base_config = args.config();
    print_header(
        "Fig. 12",
        "latent memory across insertion layers",
        &args,
        &base_config,
    );

    let mut rows = Vec::new();
    let mut reference_bits: Option<u64> = None;
    for insertion in 1..=base_config.network.layers() {
        let mut config = base_config.clone();
        config.insertion_layer = insertion;
        let (network, _) = cache::pretrained_network(&config).expect("pre-training failed");
        let data = phases::scenario_data(&config).expect("data");
        let split = phases::scenario_split(&config).expect("split");

        let (sota_buf, _) = phases::prepare_buffer(
            &network,
            &config,
            &spiking_lr_spec(&config),
            &data.train,
            &split,
        )
        .expect("sota buffer");
        let (ours_buf, _) = phases::prepare_buffer(
            &network,
            &config,
            &replay4ncl_spec(&config, args.scale),
            &data.train,
            &split,
        )
        .expect("ours buffer");

        let sota = sota_buf.footprint();
        let ours = ours_buf.footprint();
        let reference = *reference_bits.get_or_insert(sota.total_bits);
        rows.push(vec![
            format!("{insertion}"),
            format!("{:.3}", sota.total_bits as f64 / reference as f64),
            format!("{:.3}", ours.total_bits as f64 / reference as f64),
            format!("{:.2} KiB", bits_to_kib(sota.total_bits)),
            format!("{:.2} KiB", bits_to_kib(ours.total_bits)),
            report::pct(ours.saving_vs(&sota)),
        ]);
    }

    println!(
        "{}",
        report::render_table(
            &[
                "insertion",
                "SpikingLR (norm.)",
                "Replay4NCL (norm.)",
                "SpikingLR size",
                "Replay4NCL size",
                "saving",
            ],
            &rows
        )
    );
    println!();
    println!(
        "paper shapes: memory shrinks toward later layers; Replay4NCL saves 20%-21.88% \
         at every insertion layer"
    );
}
