//! `ncl-run` — the suite driver: loads (or presets) an experiment suite
//! and executes it on the `ncl_runtime` engine.
//!
//! ```sh
//! ncl-run [--demo | --paper | --suite <file.json>] [--jobs <n>]
//!         [--seed <u64>] [--json] [--quiet]
//! ```
//!
//! * `--demo` (default) — the demo-scale insertion grid: SpikingLR and
//!   Replay4NCL at every insertion layer 0–3 (8 jobs).
//! * `--paper` — the same grid at full paper scale. Slow on small machines.
//! * `--suite <file.json>` — load a suite file (schema: see
//!   `ncl_runtime::job`; base presets `smoke`, `demo`, `paper`).
//! * `--jobs <n>` — worker threads (default: half the cores). The report
//!   is bit-identical for any value.
//! * `--seed <u64>` — override every job's scenario seed.
//! * `--json` — print the report as JSON instead of tables.
//! * `--quiet` — suppress streaming progress on stderr.

use std::path::PathBuf;

use ncl_bench::{default_jobs, demo_config, replay4ncl_spec, spiking_lr_spec, Scale};
use ncl_runtime::{Engine, NullSink, StderrProgress, Suite};
use replay4ncl::ScenarioConfig;

struct Args {
    suite_file: Option<PathBuf>,
    scale: Scale,
    jobs: usize,
    seed: Option<u64>,
    json: bool,
    quiet: bool,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: ncl-run [--demo | --paper | --suite <file.json>] [--jobs <n>] \
         [--seed <u64>] [--json] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        suite_file: None,
        scale: Scale::Demo,
        jobs: default_jobs(),
        seed: None,
        json: false,
        quiet: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--demo" => args.scale = Scale::Demo,
            "--paper" => args.scale = Scale::Paper,
            "--suite" => {
                let v = iter.next().unwrap_or_else(|| usage("--suite needs a path"));
                args.suite_file = Some(PathBuf::from(v));
            }
            "--jobs" => {
                let v = iter.next().unwrap_or_else(|| usage("--jobs needs a value"));
                args.jobs = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => usage("--jobs must be a positive integer"),
                };
            }
            "--seed" => {
                let v = iter.next().unwrap_or_else(|| usage("--seed needs a value"));
                args.seed = Some(v.parse().unwrap_or_else(|_| usage("--seed must be a u64")));
            }
            "--json" => args.json = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

/// Base-config resolver for suite files: the built-in `smoke`/`paper`
/// presets plus the harness's `demo` scale.
fn resolve_base(name: &str) -> Option<ScenarioConfig> {
    match name {
        "demo" => Some(demo_config()),
        other => ncl_runtime::job::builtin_base(other),
    }
}

/// The preset grid: both replay methods at every insertion layer — the
/// Fig. 10 comparison as one suite (8 jobs at demo/paper scale).
fn preset_suite(scale: Scale) -> Suite {
    let base = match scale {
        Scale::Demo => demo_config(),
        Scale::Paper => ScenarioConfig::paper(),
    };
    let methods = [spiking_lr_spec(&base), replay4ncl_spec(&base, scale)];
    let mut suite = ncl_runtime::suites::insertion_sweep(&base, &methods);
    suite.name = match scale {
        Scale::Demo => "demo-insertion-grid".into(),
        Scale::Paper => "paper-insertion-grid".into(),
    };
    suite
}

fn main() {
    let args = parse_args();
    let mut suite = match &args.suite_file {
        Some(path) => match Suite::from_json_file_with(path, &resolve_base) {
            Ok(suite) => suite,
            Err(e) => {
                eprintln!("ncl-run: {e}");
                std::process::exit(2);
            }
        },
        None => preset_suite(args.scale),
    };
    if let Some(seed) = args.seed {
        for job in &mut suite.jobs {
            job.config.seed = seed;
        }
    }

    let engine = Engine::new(args.jobs);
    let started = std::time::Instant::now();
    let outcome = if args.quiet {
        engine.run_with_events(&suite, &NullSink)
    } else {
        engine.run_with_events(&suite, &StderrProgress::default())
    };
    let report = match outcome {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ncl-run: {e}");
            std::process::exit(1);
        }
    };
    if !args.quiet {
        eprintln!(
            "wall clock: {:.2} s on {} workers",
            started.elapsed().as_secs_f64(),
            engine.workers()
        );
    }

    if args.json {
        println!("{}", report.to_json().to_json_pretty());
    } else {
        println!("{}", report.render());
    }
}
