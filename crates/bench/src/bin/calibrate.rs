//! Internal calibration sweep (not a paper figure): explores CL epochs,
//! learning-rate divisors, threshold modes and T* to pick harness
//! defaults. Kept in-tree because it documents how the demo-scale knobs
//! were chosen.

use ncl_bench::{demo_config, RunArgs};
use replay4ncl::{cache, methods::MethodSpec, report, scenario};

fn main() {
    let args = RunArgs::from_env();
    let mut config = demo_config();
    config.cl_epochs = 50;
    config.batch_size = 4;
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    config.insertion_layer = args.insertion.unwrap_or(3);

    let (network, pretrain_acc) = cache::pretrained_network(&config).expect("pretrain");
    println!(
        "pretrain acc {} | insertion {}",
        report::pct(pretrain_acc),
        config.insertion_layer
    );

    let per_class = 6;
    let t = config.data.steps;
    let specs: Vec<MethodSpec> = vec![
        MethodSpec::baseline(),
        MethodSpec::spiking_lr(per_class),
        MethodSpec::spiking_lr_reduced(per_class, t * 2 / 5),
        MethodSpec::replay4ncl(per_class, t * 2 / 5).with_lr_divisor(2.0),
        MethodSpec::replay4ncl(per_class, t * 2 / 5).with_lr_divisor(3.0),
        MethodSpec::replay4ncl(per_class, t * 2 / 5).with_lr_divisor(5.0),
        MethodSpec::replay4ncl_ablation(per_class, t * 2 / 5, false, true).with_lr_divisor(3.0),
        MethodSpec::replay4ncl_ablation(per_class, t * 2 / 5, true, false),
        {
            let mut m = MethodSpec::replay4ncl(per_class, t * 2 / 5).with_lr_divisor(3.0);
            m.threshold_mode = ncl_snn::adaptive::ThresholdMode::Adaptive(
                ncl_snn::adaptive::AdaptivePolicy::literal(),
            );
            m.name = "Replay4NCL-literal".into();
            m
        },
        MethodSpec::replay4ncl(per_class, t / 5).with_lr_divisor(3.0),
    ];

    let mut rows = Vec::new();
    let mut sota_cost = None;
    for spec in &specs {
        let start = std::time::Instant::now();
        let r = scenario::run_method(&config, spec, &network, pretrain_acc).expect("scenario");
        let cost = r.total_cost();
        if spec.name == "SpikingLR" {
            sota_cost = Some(cost);
        }
        let speed_str = sota_cost.map_or("-".to_string(), |s| {
            format!("{:.2}x", s.latency.ratio_to(cost.latency))
        });
        rows.push(vec![
            spec.name.clone(),
            format!("{}", r.operating_steps),
            format!("{:.1}", spec.lr_divisor),
            report::pct(r.final_old_acc()),
            report::pct(r.final_new_acc()),
            speed_str,
            format!("{:.1}s", start.elapsed().as_secs_f32()),
        ]);
    }
    println!(
        "{}",
        report::render_table(
            &["method", "T", "div", "old acc", "new acc", "speedup", "wall"],
            &rows
        )
    );
}
