//! Control experiment (extension): is the timestep-reduction accuracy
//! cliff of Fig. 2(b)/Fig. 8 a property of *temporal* coding?
//!
//! Protocol: train identical networks on (a) the SHD-like temporal
//! dataset and (b) a rate-coded dataset of the same shape, then evaluate
//! both at the native T and at decimated T* ∈ {0.4T, 0.2T} without any
//! retraining. Rate codes survive decimation in expectation (rates are
//! subsample-invariant), so the rate-coded network should degrade far
//! less — evidence that the cliff the paper optimizes against comes from
//! the temporal structure of event data, not from simulation artifacts.

use ncl_data::generator::{self, ShdLikeConfig};
use ncl_data::rate_coded::{self, RateCodedConfig};
use ncl_data::Dataset;
use ncl_snn::adaptive::ThresholdMode;
use ncl_snn::optimizer::Optimizer;
use ncl_snn::trainer::{self, TrainOptions};
use ncl_snn::{Network, NetworkConfig};
use ncl_spike::resample::{resample, ResampleStrategy};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use replay4ncl::report;

fn train_network(train: &Dataset, epochs: usize, seed: u64) -> Network {
    let mut config = NetworkConfig::tiny(train.channels(), train.classes() as usize);
    config.hidden_sizes = vec![32, 24];
    config.seed = seed;
    let mut net = Network::new(config).expect("valid config");
    let mut opt = Optimizer::adam(2e-3);
    let options = TrainOptions {
        batch_size: 4,
        ..TrainOptions::default()
    };
    let mut rng = Rng::seed_from_u64(seed ^ 0xAB);
    let refs: Vec<(&SpikeRaster, u16)> = train.iter().map(|s| (&s.raster, s.label)).collect();
    let mut scratch = trainer::TrainScratch::new();
    for _ in 0..epochs {
        trainer::train_epoch_with(&mut net, &refs, &mut opt, &options, &mut rng, &mut scratch)
            .expect("train");
    }
    net
}

fn accuracy_at(net: &Network, test: &Dataset, steps: usize) -> f64 {
    let reduced: Vec<(SpikeRaster, u16)> = test
        .iter()
        .map(|s| {
            let r = if steps < s.raster.steps() {
                resample(&s.raster, steps, ResampleStrategy::Decimate).expect("resample")
            } else {
                s.raster.clone()
            };
            (r, s.label)
        })
        .collect();
    let refs: Vec<(&SpikeRaster, u16)> = reduced.iter().map(|(r, l)| (r, *l)).collect();
    trainer::evaluate(net, &refs, 0, ThresholdMode::Constant)
        .expect("evaluate")
        .top1()
}

fn main() {
    println!("=== Control: temporal vs rate coding under timestep reduction ===");
    let steps = 60usize;

    // Temporal workload: the SHD-like generator.
    let mut shd = ShdLikeConfig::smoke_test();
    shd.channels = 64;
    shd.classes = 5;
    shd.steps = steps;
    shd.train_per_class = 14;
    shd.test_per_class = 6;
    shd.bump_sigma = 3.0;
    shd.seed = 51;
    let temporal = generator::generate_pair(&shd).expect("shd-like data");

    // Rate workload: same shape, identity carried by channel rates only.
    let rate_config = RateCodedConfig {
        channels: 64,
        classes: 5,
        steps,
        train_per_class: 14,
        test_per_class: 6,
        max_rate: 0.3,
        rate_jitter: 0.1,
        seed: 52,
    };
    let rate = rate_coded::generate(&rate_config).expect("rate-coded data");

    let temporal_net = train_network(&temporal.train, 20, 1);
    let rate_net = train_network(&rate.train, 20, 2);

    let mut rows = Vec::new();
    for &t in &[steps, steps * 2 / 5, steps / 5] {
        rows.push(vec![
            format!("{t}"),
            report::pct(accuracy_at(&temporal_net, &temporal.test, t)),
            report::pct(accuracy_at(&rate_net, &rate.test, t)),
        ]);
    }
    println!(
        "{}",
        report::render_table(
            &[
                "eval timesteps",
                "temporal (SHD-like) acc",
                "rate-coded acc"
            ],
            &rows
        )
    );
    println!();
    println!(
        "expected: the temporal workload degrades under decimation while the rate-coded \
         workload holds up — the Fig. 2(b)/Fig. 8 cliff is a property of temporal coding"
    );
}
