//! `ncl-train-bench` — training-throughput benchmark + `BENCH_train.json`
//! emitter for the zero-allocation trainer.
//!
//! ```sh
//! ncl-train-bench [--epochs N] [--samples N] [--steps N] [--batch N]
//!                 [--quick] [--out BENCH_train.json]
//! ```
//!
//! `--quick` shrinks the run (4 epochs, 32 samples) for CI smoke; an
//! explicit `--epochs`/`--samples` wins over it regardless of flag
//! order.
//!
//! Runs whole training epochs on a demo-scale recurrent SNN through two
//! paths and reports samples/s and epoch p50 latency for each:
//!
//! * `reference` — the seed-era per-sample-allocation loop
//!   (`train_epoch_reference`): a fresh weight-shaped `Gradients`, a
//!   fresh `History` and a fresh threshold schedule per sample, a dense
//!   O(params) accumulate per sample and an O(params) scale per batch;
//! * `pool` (workers 1, 2, 4) — the arena path
//!   (`train_epoch_with` + `TrainScratch`): per-worker reusable arenas,
//!   recycled gradient buffers, a persistent per-epoch worker pool and
//!   scale-at-apply.
//!
//! Before timing, the tool verifies the two paths produce **byte-identical
//! trained weights** at every worker count (`bit_identical` in the
//! output); a benchmark of a wrong optimization would be meaningless.

use ncl_bench::train_demo;
use ncl_serve::protocol::object;
use ncl_snn::optimizer::Optimizer;
use ncl_snn::trainer::{self, TrainOptions, TrainScratch};
use ncl_snn::{serialize, Network};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use serde_json::Value;
use std::time::Instant;

struct Args {
    epochs: usize,
    samples: usize,
    steps: usize,
    batch: usize,
    out: String,
}

/// Raw flag values before defaults are resolved (`--quick` must not
/// override an explicit `--epochs`/`--samples`, in either flag order).
#[derive(Default)]
struct RawArgs {
    epochs: Option<usize>,
    samples: Option<usize>,
    steps: Option<usize>,
    batch: Option<usize>,
    quick: bool,
    out: Option<String>,
}

fn usage(problem: &str) -> ! {
    eprintln!("ncl-train-bench: {problem}");
    eprintln!(
        "usage: ncl-train-bench [--epochs N] [--samples N] [--steps N] [--quick] [--out file.json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut raw = RawArgs::default();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--epochs" => {
                raw.epochs = Some(
                    value("--epochs")
                        .parse()
                        .unwrap_or_else(|_| usage("--epochs must be a positive integer")),
                );
            }
            "--samples" => {
                raw.samples = Some(
                    value("--samples")
                        .parse()
                        .unwrap_or_else(|_| usage("--samples must be a positive integer")),
                );
            }
            "--steps" => {
                raw.steps = Some(
                    value("--steps")
                        .parse()
                        .unwrap_or_else(|_| usage("--steps must be a positive integer")),
                );
            }
            "--batch" => {
                raw.batch = Some(
                    value("--batch")
                        .parse()
                        .unwrap_or_else(|_| usage("--batch must be a positive integer")),
                );
            }
            "--quick" => raw.quick = true,
            "--out" => raw.out = Some(value("--out")),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let (quick_epochs, quick_samples) = if raw.quick { (4, 32) } else { (12, 64) };
    let args = Args {
        epochs: raw.epochs.unwrap_or(quick_epochs),
        samples: raw.samples.unwrap_or(quick_samples),
        steps: raw.steps.unwrap_or(40),
        batch: raw.batch.unwrap_or(train_demo::BATCH_SIZE),
        out: raw.out.unwrap_or_else(|| "BENCH_train.json".to_owned()),
    };
    if args.epochs == 0 || args.samples == 0 || args.steps == 0 || args.batch == 0 {
        usage("--epochs/--samples/--steps/--batch must be at least 1");
    }
    args
}

/// A benchmark scenario: which stage training starts from and the shape
/// of its input rasters.
struct Scenario {
    name: &'static str,
    description: &'static str,
    from_stage: usize,
    input_neurons: usize,
    steps: usize,
}

/// The two training workloads of the methodology: full pre-training from
/// the raw input, and the continual-learning update — learning stages
/// only, fed stage-1 latent activations at the reduced timestep T* (the
/// paper's headline latency metric, Fig. 2 / Fig. 11).
fn scenarios(steps: usize) -> [Scenario; 2] {
    [
        Scenario {
            name: "pretrain_full",
            description: "full network from raw input rasters",
            from_stage: 0,
            input_neurons: 48,
            steps,
        },
        Scenario {
            name: "cl_phase",
            description:
                "learning stages only, stage-1 latent activations at T* (Replay4NCL update)",
            from_stage: 1,
            input_neurons: 24,
            steps: (steps * 2 / 5).max(1),
        },
    ]
}

enum Path {
    /// Seed-era loop at the given parallelism (`2` is the workspace
    /// default the pre-PR trainer ran at: one thread-scope spawn and
    /// per-sample `Gradients`/`History` allocations every 4-sample batch).
    Reference {
        parallelism: usize,
    },
    Pool {
        workers: usize,
    },
}

/// Trains `epochs` epochs from a fresh copy of `net`, returning
/// (per-epoch wall times in µs, serialized trained weights).
fn run_path(
    path: &Path,
    net: &Network,
    refs: &[(&SpikeRaster, u16)],
    from_stage: usize,
    batch: usize,
    epochs: usize,
) -> (Vec<u64>, Vec<u8>) {
    let mut net = net.clone();
    let mut optimizer = Optimizer::adam(1e-3);
    let options = TrainOptions {
        from_stage,
        batch_size: batch,
        parallelism: match path {
            Path::Reference { parallelism } => *parallelism,
            Path::Pool { workers } => *workers,
        },
        ..TrainOptions::default()
    };
    let mut rng = Rng::seed_from_u64(1);
    let mut scratch = TrainScratch::new();
    let mut epoch_us = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let start = Instant::now();
        match path {
            Path::Reference { .. } => {
                trainer::train_epoch_reference(&mut net, refs, &mut optimizer, &options, &mut rng)
            }
            Path::Pool { .. } => trainer::train_epoch_with(
                &mut net,
                refs,
                &mut optimizer,
                &options,
                &mut rng,
                &mut scratch,
            ),
        }
        .expect("demo epoch trains");
        epoch_us.push(start.elapsed().as_micros() as u64);
    }
    (epoch_us, serialize::to_bytes(&net))
}

fn p50(mut us: Vec<u64>) -> u64 {
    us.sort_unstable();
    us[us.len() / 2]
}

/// Median-based throughput: robust to scheduler outliers on shared
/// machines (a handful of preempted epochs would otherwise dominate the
/// mean).
fn samples_per_sec(epoch_us: &[u64], samples: usize) -> f64 {
    let median = p50(epoch_us.to_vec());
    if median == 0 {
        return 0.0;
    }
    samples as f64 / (median as f64 / 1e6)
}

/// Benchmarks one scenario: bit-identity gate, then timed reference
/// (workspace-default parallelism 2 and serial) and pool (1/2/4 workers)
/// runs. Returns the scenario's JSON block plus (best speedup,
/// bit-identical flag).
fn bench_scenario(scenario: &Scenario, args: &Args) -> (Value, f64, bool) {
    let net = train_demo::network();
    let data = train_demo::rasters(scenario.input_neurons, scenario.steps, args.samples);
    let refs: Vec<(&SpikeRaster, u16)> = data.iter().map(|(r, l)| (r, *l)).collect();
    let pool_workers = [1usize, 2, 4];
    let stage = scenario.from_stage;
    println!(
        "== {} ({}x{} rasters, from_stage {stage}) ==",
        scenario.name, scenario.input_neurons, scenario.steps
    );

    // ---- Correctness gate: bit-identical trained weights ---------------
    // The oracle is the serial seed path (the seed's own parallel chunking
    // was tolerance-equal, not bit-equal, to its serial form).
    let (_, oracle_bytes) = run_path(
        &Path::Reference { parallelism: 1 },
        &net,
        &refs,
        stage,
        args.batch,
        2,
    );
    let bit_identical = pool_workers.iter().all(|&workers| {
        let (_, bytes) = run_path(&Path::Pool { workers }, &net, &refs, stage, args.batch, 2);
        bytes == oracle_bytes
    });
    if !bit_identical {
        eprintln!("ncl-train-bench: WARNING: pool path diverged from the reference weights");
    }

    // ---- Timed runs ----------------------------------------------------
    // Baseline: the pre-PR trainer at the workspace-default parallelism 2
    // (a thread scope spawned per batch), plus its serial form.
    let (reference_us, _) = run_path(
        &Path::Reference { parallelism: 2 },
        &net,
        &refs,
        stage,
        args.batch,
        args.epochs,
    );
    let reference_sps = samples_per_sec(&reference_us, args.samples);
    let reference_p50 = p50(reference_us);
    println!(
        "  reference w2 (alloc + per-batch spawn): {reference_sps:.0} samples/s, epoch p50 {reference_p50} us"
    );
    let (reference_serial_us, _) = run_path(
        &Path::Reference { parallelism: 1 },
        &net,
        &refs,
        stage,
        args.batch,
        args.epochs,
    );
    let reference_serial_sps = samples_per_sec(&reference_serial_us, args.samples);
    let reference_serial_p50 = p50(reference_serial_us);
    println!(
        "  reference w1 (alloc, serial): {reference_serial_sps:.0} samples/s, epoch p50 {reference_serial_p50} us"
    );

    let mut pool_entries = Vec::new();
    let mut best_speedup = 0.0f64;
    for &workers in &pool_workers {
        let (us, _) = run_path(
            &Path::Pool { workers },
            &net,
            &refs,
            stage,
            args.batch,
            args.epochs,
        );
        let sps = samples_per_sec(&us, args.samples);
        let speedup = if reference_sps > 0.0 {
            sps / reference_sps
        } else {
            0.0
        };
        best_speedup = best_speedup.max(speedup);
        println!(
            "  pool w{workers} (arena): {sps:.0} samples/s, epoch p50 {} us, {speedup:.2}x vs reference",
            p50(us.clone())
        );
        pool_entries.push(object(vec![
            ("workers", Value::from(workers)),
            ("samples_per_sec", Value::from(sps)),
            ("epoch_p50_us", Value::from(p50(us))),
            ("speedup_vs_reference", Value::from(speedup)),
        ]));
    }

    let block = object(vec![
        ("name", Value::from(scenario.name)),
        ("description", Value::from(scenario.description)),
        (
            "config",
            object(vec![
                ("network", Value::from("48-24-16-4 recurrent (demo scale)")),
                ("from_stage", Value::from(stage)),
                ("input_neurons", Value::from(scenario.input_neurons)),
                ("samples", Value::from(args.samples)),
                ("steps", Value::from(scenario.steps)),
                ("batch_size", Value::from(args.batch)),
                ("epochs_timed", Value::from(args.epochs)),
            ]),
        ),
        (
            "reference",
            object(vec![
                ("parallelism", Value::from(2u64)),
                ("samples_per_sec", Value::from(reference_sps)),
                ("epoch_p50_us", Value::from(reference_p50)),
            ]),
        ),
        (
            "reference_serial",
            object(vec![
                ("samples_per_sec", Value::from(reference_serial_sps)),
                ("epoch_p50_us", Value::from(reference_serial_p50)),
            ]),
        ),
        ("pool", Value::Array(pool_entries)),
        ("best_speedup_vs_reference", Value::from(best_speedup)),
        ("bit_identical_to_reference", Value::from(bit_identical)),
    ]);
    (block, best_speedup, bit_identical)
}

fn main() {
    let args = parse_args();
    let mut scenario_blocks = Vec::new();
    let mut best_overall = 0.0f64;
    let mut all_bit_identical = true;
    for scenario in scenarios(args.steps) {
        let (block, best, bit_identical) = bench_scenario(&scenario, &args);
        scenario_blocks.push(block);
        best_overall = best_overall.max(best);
        all_bit_identical &= bit_identical;
    }

    let report = object(vec![
        ("bench", Value::from("train")),
        ("scenarios", Value::Array(scenario_blocks)),
        ("best_speedup_vs_reference", Value::from(best_overall)),
        ("bit_identical_to_reference", Value::from(all_bit_identical)),
        (
            "allocs_note",
            Value::from(
                "reference allocates a weight-shaped Gradients + History + schedule per sample, \
                 dense-accumulates each into the batch sum, and re-spawns a thread scope per \
                 batch at parallelism > 1; the pool path reuses per-worker arenas and recycled \
                 gradient buffers through a per-epoch persistent pool (zero steady-state heap \
                 allocations per sample) and folds the 1/batch scale into the optimizer step",
            ),
        ),
    ]);
    let json = report.to_json_pretty();
    std::fs::write(&args.out, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("ncl-train-bench: cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    println!("wrote {}", args.out);
}
