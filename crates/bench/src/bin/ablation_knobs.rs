//! Ablation study (DESIGN.md §6): which of Replay4NCL's knobs contributes
//! what, at moderate (0.4 T) and aggressive (0.2 T) timestep reduction.
//!
//! Variants: naive reduction (no enhancements), +adaptive threshold only,
//! +reduced learning rate only, full Replay4NCL, and the literal-Alg.-1
//! threshold variant (see `ncl_snn::adaptive::AdaptiveVariant`).

use ncl_bench::{cl_lr_divisor, print_header, replay_per_class, RunArgs};
use ncl_snn::adaptive::{AdaptivePolicy, ThresholdMode};
use replay4ncl::{cache, methods::MethodSpec, report, scenario};

fn main() {
    let mut args = RunArgs::from_env();
    args.insertion.get_or_insert(1); // hidden layers train: all knobs active
    let config = args.config();
    print_header(
        "Ablation",
        "contribution of each Replay4NCL knob",
        &args,
        &config,
    );

    let (network, pretrain_acc) = cache::pretrained_network(&config).expect("pre-training failed");
    let per_class = replay_per_class(&config);
    let divisor = cl_lr_divisor(args.scale);
    let t = config.data.steps;

    let sota = scenario::run_method(
        &config,
        &MethodSpec::spiking_lr(per_class),
        &network,
        pretrain_acc,
    )
    .expect("sota failed");
    println!(
        "reference SpikingLR @ T={t}: old {} / new {}",
        report::pct(sota.final_old_acc()),
        report::pct(sota.final_new_acc())
    );

    let mut rows = Vec::new();
    for &t_star in &[t * 2 / 5, t / 5] {
        let variants: Vec<(&str, MethodSpec)> = vec![
            (
                "naive reduction",
                MethodSpec::spiking_lr_reduced(per_class, t_star),
            ),
            (
                "+ adaptive threshold",
                MethodSpec::replay4ncl_ablation(per_class, t_star, true, false),
            ),
            (
                "+ reduced lr",
                MethodSpec::replay4ncl_ablation(per_class, t_star, false, true)
                    .with_lr_divisor(divisor),
            ),
            (
                "full Replay4NCL",
                MethodSpec::replay4ncl(per_class, t_star).with_lr_divisor(divisor),
            ),
            ("literal Alg.1 threshold", {
                let mut m = MethodSpec::replay4ncl(per_class, t_star).with_lr_divisor(divisor);
                m.threshold_mode = ThresholdMode::Adaptive(AdaptivePolicy::literal());
                m.name = "Replay4NCL-literal".into();
                m
            }),
        ];
        for (label, method) in variants {
            let r = scenario::run_method(&config, &method, &network, pretrain_acc)
                .expect("scenario failed");
            let cost = r.total_cost();
            rows.push(vec![
                format!("{t_star}"),
                label.to_string(),
                report::pct(r.final_old_acc()),
                report::pct(r.final_new_acc()),
                format!("{:.2}x", cost.speedup_vs(&sota.total_cost())),
                report::pct(cost.energy_saving_vs(&sota.total_cost())),
            ]);
        }
    }

    println!(
        "{}",
        report::render_table(
            &[
                "T*",
                "variant",
                "old acc",
                "new acc",
                "speed-up",
                "energy saving"
            ],
            &rows
        )
    );
    println!();
    println!(
        "expected: enhancements recover accuracy lost to naive reduction, most visibly \
         at the aggressive 0.2T setting; the literal threshold variant trades the \
         efficiency gains for extra spikes"
    );
}
