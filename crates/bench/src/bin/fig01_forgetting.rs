//! Fig. 1(a): catastrophic forgetting of the no-NCL baseline.
//!
//! The baseline fine-tunes the whole network (insertion layer 0 — no
//! frozen stages, no replay) on the new class only. The paper shows
//! old-task accuracy collapsing across CL epochs while the new task is
//! learned; this binary prints both curves per epoch.

use ncl_bench::{print_header, RunArgs};
use replay4ncl::{cache, methods::MethodSpec, report, scenario};

fn main() {
    let mut args = RunArgs::from_env();
    // Fig. 1's baseline retrains the full network.
    args.insertion.get_or_insert(0);
    let config = args.config();
    print_header(
        "Fig. 1(a)",
        "catastrophic forgetting of the baseline",
        &args,
        &config,
    );

    let (network, pretrain_acc) = cache::pretrained_network(&config).expect("pre-training failed");
    println!(
        "pre-trained old-class accuracy: {}",
        report::pct(pretrain_acc)
    );

    let result = scenario::run_method(&config, &MethodSpec::baseline(), &network, pretrain_acc)
        .expect("scenario failed");

    let rows: Vec<Vec<String>> = result
        .epochs
        .iter()
        .map(|e| {
            vec![
                format!("{}", e.epoch),
                report::pct(e.old_acc),
                report::pct(e.new_acc),
                format!("{:.4}", e.mean_loss),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &[
                "epoch",
                "old-task acc (pre-trained)",
                "new-task acc",
                "train loss"
            ],
            &rows
        )
    );
    println!();
    println!(
        "forgetting after {} epochs: {} (old acc {} -> {})",
        result.epochs.len(),
        report::pct(result.forgetting()),
        report::pct(result.pretrain_acc),
        report::pct(result.final_old_acc()),
    );
    println!("paper shape: old-task accuracy drops sharply as the new task is learned (Fig. 1(a))");
}
