//! Synthetic SHD-like dataset generation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_data::generator::{self, ClassPrototype, ShdLikeConfig};
use ncl_tensor::Rng;
use std::time::Duration;

fn bench_dataset(c: &mut Criterion) {
    let config = ShdLikeConfig::paper();
    let proto = ClassPrototype::derive(&config, 0);

    let mut group = c.benchmark_group("dataset");
    group
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("draw_one_paper_sample", |b| {
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| generator::draw_sample(&config, &proto, &mut rng))
    });
    group.bench_function("generate_smoke_pair", |b| {
        let smoke = ShdLikeConfig::smoke_test();
        b.iter(|| generator::generate_pair(std::hint::black_box(&smoke)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_dataset);
criterion_main!(benches);
