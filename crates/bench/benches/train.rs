//! Wall-clock cost of the training hot path: whole epochs through the
//! zero-allocation arena/pool trainer vs the seed-era per-sample-
//! allocation reference, plus the kernels the rewrite touched.

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_bench::train_demo::{self, BATCH_SIZE};
use ncl_snn::optimizer::Optimizer;
use ncl_snn::trainer::{self, TrainOptions, TrainScratch};
use ncl_snn::{bptt, Network};
use ncl_spike::SpikeRaster;
use ncl_tensor::{ops, Matrix, Rng};
use std::time::Duration;

/// Demo-scale training problem (shared with `ncl-train-bench` via
/// `ncl_bench::train_demo`, so criterion numbers and BENCH_train.json
/// measure the same workload).
fn demo_problem() -> (Network, Vec<(SpikeRaster, u16)>) {
    (train_demo::network(), train_demo::rasters(48, 40, 64))
}

fn bench_train_epoch(c: &mut Criterion) {
    let (net, data) = demo_problem();
    let refs: Vec<(&SpikeRaster, u16)> = data.iter().map(|(r, l)| (r, *l)).collect();

    let mut group = c.benchmark_group("train_epoch");
    group
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));

    // Seed-era baseline at its two forms: serial, and the workspace
    // default parallelism 2 (thread scope spawned per batch).
    for parallelism in [1usize, 2] {
        group.bench_function(&format!("alloc_reference_w{parallelism}"), |b| {
            let mut net = net.clone();
            let mut opt = Optimizer::adam(1e-3);
            let mut rng = Rng::seed_from_u64(1);
            let options = TrainOptions {
                batch_size: BATCH_SIZE,
                parallelism,
                ..TrainOptions::default()
            };
            b.iter(|| {
                trainer::train_epoch_reference(&mut net, &refs, &mut opt, &options, &mut rng)
                    .unwrap()
            })
        });
    }

    for workers in [1usize, 2, 4] {
        group.bench_function(&format!("arena_pool_w{workers}"), |b| {
            let mut net = net.clone();
            let mut opt = Optimizer::adam(1e-3);
            let mut rng = Rng::seed_from_u64(1);
            let mut scratch = TrainScratch::new();
            let options = TrainOptions {
                batch_size: BATCH_SIZE,
                parallelism: workers,
                ..TrainOptions::default()
            };
            b.iter(|| {
                trainer::train_epoch_with(
                    &mut net,
                    &refs,
                    &mut opt,
                    &options,
                    &mut rng,
                    &mut scratch,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_backward_arena(c: &mut Criterion) {
    let (net, data) = demo_problem();
    let history = net.record_from(0, &data[0].0, None).unwrap();

    let mut group = c.benchmark_group("bptt_backward");
    group
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("alloc_per_sample", |b| {
        b.iter(|| bptt::backward(&net, std::hint::black_box(&history), 3).unwrap())
    });
    group.bench_function("arena_reuse", |b| {
        let mut grads = bptt::Gradients::zeros(&net, 0).unwrap();
        let mut scratch = ncl_snn::BpttScratch::new();
        b.iter(|| {
            grads.zero_fill();
            bptt::backward_into(
                &net,
                std::hint::black_box(&history),
                3,
                &mut grads,
                &mut scratch,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_rows_add(c: &mut Criterion) {
    // The BPTT scatter kernel across sparsity levels: gathered index list
    // (plus the gather itself, as the seed path paid it) vs the masked
    // word walk.
    let rows = 700usize;
    let cols = 200usize;
    let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.13).sin()).collect();

    let mut group = c.benchmark_group("rows_add");
    group
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    for density_pct in [2usize, 10, 30] {
        let mut rng = Rng::seed_from_u64(density_pct as u64);
        let raster =
            SpikeRaster::from_fn(rows, 1, |_, _| rng.bernoulli(density_pct as f64 / 100.0));
        let mut a = Matrix::zeros(rows, cols);
        group.bench_function(&format!("gather_d{density_pct}pct"), |b| {
            let mut active: Vec<usize> = Vec::new();
            b.iter(|| {
                active.clear();
                active.extend(raster.active_at(0));
                ops::rows_add(&mut a, &active, &x, 1.0).unwrap();
            })
        });
        group.bench_function(&format!("masked_d{density_pct}pct"), |b| {
            b.iter(|| ops::rows_add_masked(&mut a, raster.step_words(0), &x, 1.0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_train_epoch,
    bench_backward_arena,
    bench_rows_add
);
criterion_main!(benches);
