//! Throughput of the Fig. 7 compression codec and the temporal resampler
//! on paper-sized rasters.

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_spike::codec::{self, CompressionFactor};
use ncl_spike::resample::{resample, ResampleStrategy};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use std::time::Duration;

fn bench_codec(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(21);
    // A stage-1 activation at paper scale: 200 neurons x 100 steps.
    let raster = SpikeRaster::from_fn(200, 100, |_, _| rng.bernoulli(0.1));
    let factor = CompressionFactor::new(2).expect("factor 2");
    let compressed = codec::compress(&raster, factor);

    let mut group = c.benchmark_group("codec");
    group
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("compress_200x100_x2", |b| {
        b.iter(|| codec::compress(std::hint::black_box(&raster), factor))
    });
    group.bench_function("decompress_200x100_x2", |b| {
        b.iter(|| std::hint::black_box(&compressed).decompress())
    });
    group.bench_function("decimate_200x100_to_40", |b| {
        b.iter(|| {
            resample(
                std::hint::black_box(&raster),
                40,
                ResampleStrategy::Decimate,
            )
            .unwrap()
        })
    });
    group.bench_function("orbins_200x100_to_40", |b| {
        b.iter(|| resample(std::hint::black_box(&raster), 40, ResampleStrategy::OrBins).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
