//! Serving-path throughput: the batched inference entry point that
//! `ncl-serve`'s micro-batcher feeds, versus per-request forward calls,
//! plus the scheduler's end-to-end overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_serve::batcher::{BatchConfig, Batcher};
use ncl_serve::metrics::Metrics;
use ncl_serve::registry::ModelRegistry;
use ncl_snn::{Network, NetworkConfig};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use std::sync::Arc;
use std::time::Duration;

fn serving_net() -> Network {
    let mut config = NetworkConfig::tiny(48, 4);
    config.hidden_sizes = vec![24, 16];
    Network::new(config).expect("serving net")
}

fn inputs(n: usize, steps: usize) -> Vec<SpikeRaster> {
    let mut rng = Rng::seed_from_u64(7);
    (0..n)
        .map(|_| SpikeRaster::from_fn(48, steps, |_, _| rng.bernoulli(0.15)))
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let net = serving_net();
    let batch = inputs(16, 20);

    let mut group = c.benchmark_group("serve");
    group
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    // One batched pass over 16 requests (shared scratch buffers) ...
    group.bench_function("forward_batch_16", |b| {
        b.iter(|| net.forward_batch(std::hint::black_box(&batch)).unwrap())
    });
    // ... versus 16 independent forward calls (per-call allocation).
    group.bench_function("forward_sequential_16", |b| {
        b.iter(|| {
            for input in &batch {
                let _ = net.forward(std::hint::black_box(input)).unwrap();
            }
        })
    });

    // End-to-end scheduler overhead: submit 16 requests, await replies.
    let registry = Arc::new(ModelRegistry::new(serving_net(), "bench"));
    let batcher = Batcher::start(
        registry,
        Arc::new(Metrics::default()),
        BatchConfig {
            batch_size: 16,
            max_wait: Duration::from_micros(200),
            workers: 2,
        },
    )
    .unwrap();
    group.bench_function("batcher_submit_await_16", |b| {
        b.iter(|| {
            let receivers: Vec<_> = batch
                .iter()
                .map(|r| batcher.submit(r.clone()).unwrap())
                .collect();
            for rx in receivers {
                rx.recv().unwrap().unwrap();
            }
        })
    });
    group.finish();
    batcher.shutdown();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
