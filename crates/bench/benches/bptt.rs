//! Wall-clock cost of recorded forward passes and BPTT backward sweeps —
//! the dominant cost of every training epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_snn::{bptt, Network, NetworkConfig};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use std::time::Duration;

fn bench_bptt(c: &mut Criterion) {
    let net = Network::new(NetworkConfig::paper()).expect("paper net");
    let mut rng = Rng::seed_from_u64(7);
    let input = SpikeRaster::from_fn(700, 100, |_, _| rng.bernoulli(0.02));
    let history = net.record_from(0, &input, None).expect("record");

    // Readout-only training input: stage-3 activations (insertion layer 3).
    let act3 = net.activations_at(3, &input).expect("activations");
    let history3 = net.record_from(3, &act3, None).expect("record");

    let mut group = c.benchmark_group("bptt");
    group
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("record_full_t100", |b| {
        b.iter(|| {
            net.record_from(0, std::hint::black_box(&input), None)
                .unwrap()
        })
    });
    group.bench_function("backward_full_t100", |b| {
        b.iter(|| bptt::backward(&net, std::hint::black_box(&history), 5).unwrap())
    });
    group.bench_function("backward_readout_only_t100", |b| {
        b.iter(|| bptt::backward(&net, std::hint::black_box(&history3), 5).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_bptt);
criterion_main!(benches);
