//! Cost of evaluating the analytic hardware models (they run inside every
//! scenario epoch, so they must be negligible next to simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_hw::{CostReport, HardwareProfile, OpCounts};
use ncl_snn::{Network, NetworkConfig};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use std::time::Duration;

fn bench_cost_model(c: &mut Criterion) {
    let net = Network::new(NetworkConfig::paper()).expect("paper net");
    let mut rng = Rng::seed_from_u64(3);
    let input = SpikeRaster::from_fn(700, 100, |_, _| rng.bernoulli(0.02));
    let (_, activity) = net.forward_from_traced(0, &input, None).expect("traced");
    let profile = HardwareProfile::embedded();
    let ops = OpCounts::forward(&activity, true);

    let mut group = c.benchmark_group("cost_model");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    group.bench_function("ops_from_activity", |b| {
        b.iter(|| OpCounts::forward(std::hint::black_box(&activity), true))
    });
    group.bench_function("cost_report", |b| {
        b.iter(|| CostReport::of(std::hint::black_box(&ops), &profile))
    });
    group.bench_function("traced_forward_overhead", |b| {
        b.iter(|| {
            net.forward_from_traced(0, std::hint::black_box(&input), None)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
