//! Wall-clock throughput of the event-driven SNN forward pass at the
//! paper's network size (700-200-100-50-20, T = 100).

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_snn::{Network, NetworkConfig};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use std::time::Duration;

fn paper_input(density: f64, steps: usize) -> SpikeRaster {
    let mut rng = Rng::seed_from_u64(99);
    SpikeRaster::from_fn(700, steps, |_, _| rng.bernoulli(density))
}

fn bench_forward(c: &mut Criterion) {
    let net = Network::new(NetworkConfig::paper()).expect("paper net");
    let input = paper_input(0.02, 100);
    let sparse = paper_input(0.005, 100);
    let short = paper_input(0.02, 40);

    let mut group = c.benchmark_group("forward");
    group
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("paper_net_t100_d2pct", |b| {
        b.iter(|| net.forward(std::hint::black_box(&input)).unwrap())
    });
    group.bench_function("paper_net_t100_sparse", |b| {
        b.iter(|| net.forward(std::hint::black_box(&sparse)).unwrap())
    });
    group.bench_function("paper_net_t40_d2pct", |b| {
        b.iter(|| net.forward(std::hint::black_box(&short)).unwrap())
    });
    group.bench_function("frozen_stages_to_layer3", |b| {
        b.iter(|| net.activations_at(3, std::hint::black_box(&input)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
