//! Latent-replay buffer operations: storing compressed entries, sizing the
//! store and materializing replay rasters.

use criterion::{criterion_group, criterion_main, Criterion};
use ncl_spike::codec::{self, CompressionFactor};
use ncl_spike::memory::Alignment;
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use replay4ncl::buffer::{LatentEntry, LatentReplayBuffer};
use std::time::Duration;

fn filled_buffer(entries: usize) -> LatentReplayBuffer {
    let mut rng = Rng::seed_from_u64(5);
    let mut buffer = LatentReplayBuffer::new(Alignment::Byte);
    for i in 0..entries {
        let act = SpikeRaster::from_fn(50, 100, |_, _| rng.bernoulli(0.1));
        let compressed = codec::compress(&act, CompressionFactor::new(2).expect("factor"));
        buffer.push(LatentEntry::compressed(compressed, (i % 19) as u16));
    }
    buffer
}

fn bench_buffer(c: &mut Criterion) {
    let buffer = filled_buffer(152); // paper scale: 19 classes x 8

    let mut group = c.benchmark_group("replay_buffer");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    group.bench_function("fill_152_entries", |b| b.iter(|| filled_buffer(152)));
    group.bench_function("footprint", |b| {
        b.iter(|| std::hint::black_box(&buffer).footprint())
    });
    group.bench_function("replay_decompressed", |b| {
        b.iter(|| std::hint::black_box(&buffer).replay_samples(true).unwrap())
    });
    group.bench_function("replay_direct", |b| {
        b.iter(|| std::hint::black_box(&buffer).replay_samples(false).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_buffer);
criterion_main!(benches);
