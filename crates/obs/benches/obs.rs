//! Instrumentation overhead: what one counter increment, one
//! histogram record, and one span enter/exit actually cost. These are
//! the primitives sitting on the request path and inside the training
//! loop, so their cost bounds the observability tax on every
//! throughput number in BENCH_serve / BENCH_online.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ncl_obs::Registry;

fn bench_obs(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench_total", "Bench counter.");
    let gauge = registry.gauge("bench_depth", "Bench gauge.");
    let hist = registry.histogram("bench_us", "Bench histogram.");
    let stage = registry.stage("bench_stage_us", "bench");

    let mut group = c.benchmark_group("obs");
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            counter.inc();
            black_box(&counter);
        });
    });
    group.bench_function("gauge_set", |b| {
        let mut v = 0i64;
        b.iter(|| {
            v = v.wrapping_add(1);
            gauge.set(black_box(v));
        });
    });
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(977);
            hist.record(black_box(v & 0xFFFF));
        });
    });
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| {
            let span = stage.enter();
            black_box(&span);
        });
    });
    group.bench_function("render_small_registry", |b| {
        b.iter(|| black_box(registry.render().len()));
    });
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
