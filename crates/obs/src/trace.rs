//! Fleet-wide distributed tracing: deterministic trace/span ids, a
//! sharded tail-sampling trace buffer, and the pure [`stitch`] assembly
//! that merges per-node fragments into one tree per request.
//!
//! Ids derive from a seeded per-process counter (SplitMix64 over
//! `seed ^ counter`), not entropy: two runs with the same seeds and the
//! same request interleaving mint the same ids, which keeps wire
//! fixtures and smoke assertions reproducible.
//!
//! Sampling is **tail-based**: spans buffer per trace until the local
//! fragment completes (every open span guard closed), and only then is
//! the keep/drop decision made — a fragment whose root latency crosses
//! [`TraceConfig::slow_threshold_us`] is always kept, everything else
//! is kept 1-in-[`TraceConfig::sample_one_in`] (the sample counter
//! starts at zero, so the first trace a process completes is always
//! captured). Dropped traces count into `obs_traces_dropped_total`; the
//! kept store is bounded to [`TraceConfig::max_spans`] spans, evicting
//! the oldest whole traces first.
//!
//! Each process only ever sees its own **fragment** of a distributed
//! trace. [`stitch`] reassembles fragments fetched from several nodes
//! (the router's `traces` op does this, mirroring how
//! `exposition::merge` unifies metric scrapes): spans are joined by
//! trace id, cross-node parent links resolved, and — because every
//! node's `start_us` offsets count from its own process epoch — remote
//! fragments are re-based inside their parent span so child intervals
//! nest within parents by construction.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::registry::{Counter, Gauge};

/// The propagated context: which trace a request belongs to and which
/// span (on the calling node) is the parent of whatever the callee
/// records. Carried as an optional `"trace"` field on wire requests;
/// peers that predate tracing ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id, shared by every span of the trace fleet-wide.
    pub trace_id: u128,
    /// Span id (on the sending node) that parents the callee's spans.
    pub parent: Option<u64>,
}

impl TraceContext {
    /// The context a span hands to its children: same trace, this span
    /// as parent.
    #[must_use]
    pub fn child_of(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent: Some(span_id),
        }
    }
}

/// Lower-case, zero-padded 32-hex-digit encoding of a trace id.
#[must_use]
pub fn trace_id_hex(trace_id: u128) -> String {
    format!("{trace_id:032x}")
}

/// Lower-case, zero-padded 16-hex-digit encoding of a span id.
#[must_use]
pub fn span_id_hex(span_id: u64) -> String {
    format!("{span_id:016x}")
}

/// Parses a [`trace_id_hex`] string (exactly 32 hex digits).
#[must_use]
pub fn parse_trace_id(hex: &str) -> Option<u128> {
    if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u128::from_str_radix(hex, 16).ok()
}

/// Parses a [`span_id_hex`] string (exactly 16 hex digits).
#[must_use]
pub fn parse_span_id(hex: &str) -> Option<u64> {
    if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// One recorded span: the `(trace, span, parent, stage, start, duration)`
/// tuple the tentpole asks every instrumented hop to emit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u128,
    /// This span's id (unique within the trace across the fleet).
    pub span_id: u64,
    /// Parent span id; `None` for a trace root. A parent id that is not
    /// local to this process points at a span on the *calling* node.
    pub parent: Option<u64>,
    /// Stage label (`"route"`, `"accept"`, `"queue_wait"`, ...).
    pub stage: String,
    /// Start offset in µs from this process's observability epoch.
    pub start_us: u64,
    /// Wall duration in µs.
    pub duration_us: u64,
    /// Span links (batch fan-in: a forward span links the accept spans
    /// of every request co-batched with it).
    pub links: Vec<u64>,
}

/// Tail-sampling and capacity policy for a [`Tracer`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Completed fragments whose root duration reaches this are always
    /// kept.
    pub slow_threshold_us: u64,
    /// Below the threshold, keep 1 fragment in this many (the counter
    /// starts at zero, so the first completed trace is always kept).
    pub sample_one_in: u64,
    /// Bound on total spans held in the kept store; oldest whole
    /// traces are evicted first.
    pub max_spans: usize,
    /// Number of pending-trace shards (lock striping for the hot path).
    pub shards: usize,
    /// Bound on in-flight (not yet completed) traces per shard.
    pub max_pending: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            slow_threshold_us: 5_000,
            sample_one_in: 8,
            max_spans: 4_096,
            shards: 8,
            max_pending: 64,
        }
    }
}

/// One completed, kept local fragment of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFragment {
    /// Trace the fragment belongs to.
    pub trace_id: u128,
    /// Spans in completion order.
    pub spans: Vec<TraceSpanRecord>,
}

impl TraceFragment {
    /// Duration of the fragment's root: the longest span whose parent
    /// is not itself recorded in this fragment.
    #[must_use]
    pub fn root_duration_us(&self) -> u64 {
        let local: BTreeSet<u64> = self.spans.iter().map(|s| s.span_id).collect();
        self.spans
            .iter()
            .filter(|s| s.parent.is_none_or(|p| !local.contains(&p)))
            .map(|s| s.duration_us)
            .max()
            .unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct PendingTrace {
    spans: Vec<TraceSpanRecord>,
    open: u32,
    arrival: u64,
}

#[derive(Debug, Default)]
struct Shard {
    pending: BTreeMap<u128, PendingTrace>,
}

#[derive(Debug, Default)]
struct KeptStore {
    traces: VecDeque<TraceFragment>,
    total_spans: usize,
}

/// SplitMix64 — the id mixer (also used by the vendored proptest RNG
/// seeding); full-period, so distinct counters give distinct ids.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-process trace recorder: mints ids, buffers pending spans per
/// trace, and tail-samples fragments as they complete.
#[derive(Debug)]
pub struct Tracer {
    seed: AtomicU64,
    counter: AtomicU64,
    sampled: AtomicU64,
    epoch: Instant,
    config: TraceConfig,
    shards: Vec<Mutex<Shard>>,
    kept: Mutex<KeptStore>,
    traces_dropped: Arc<Counter>,
    traces_kept: Arc<Counter>,
    buffer_spans: Arc<Gauge>,
}

impl Tracer {
    /// A tracer with its process epoch at `epoch` (the registry passes
    /// its own epoch so span offsets line up with stage spans).
    #[must_use]
    pub fn new(seed: u64, config: TraceConfig, epoch: Instant) -> Tracer {
        let shard_count = config.shards.max(1);
        Tracer {
            seed: AtomicU64::new(seed),
            counter: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            epoch,
            config,
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            kept: Mutex::new(KeptStore::default()),
            traces_dropped: Arc::new(Counter::default()),
            traces_kept: Arc::new(Counter::default()),
            buffer_spans: Arc::new(Gauge::default()),
        }
    }

    /// Re-seeds the id generator (daemons call this with their port or
    /// `--seed`, so each fleet member mints from a distinct stream).
    pub fn set_seed(&self, seed: u64) {
        self.seed.store(seed, Ordering::Relaxed);
    }

    /// Traces dropped by tail-sampling or eviction
    /// (`obs_traces_dropped_total`).
    #[must_use]
    pub fn traces_dropped(&self) -> Arc<Counter> {
        Arc::clone(&self.traces_dropped)
    }

    /// Traces the sampler decided to keep (`obs_traces_kept_total`).
    #[must_use]
    pub fn traces_kept(&self) -> Arc<Counter> {
        Arc::clone(&self.traces_kept)
    }

    /// Occupancy of the kept store in spans (`obs_trace_buffer_spans`).
    #[must_use]
    pub fn buffer_spans(&self) -> Arc<Gauge> {
        Arc::clone(&self.buffer_spans)
    }

    fn next_id(&self) -> u64 {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(self.seed.load(Ordering::Relaxed) ^ n.wrapping_mul(2).wrapping_add(1));
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Mints a fresh root context (a new 128-bit trace id, no parent).
    #[must_use]
    pub fn new_trace(&self) -> TraceContext {
        let hi = u128::from(self.next_id());
        let lo = u128::from(self.next_id());
        TraceContext {
            trace_id: (hi << 64) | lo,
            parent: None,
        }
    }

    fn shard(&self, trace_id: u128) -> Option<&Mutex<Shard>> {
        let key = ((trace_id >> 64) as u64) ^ (trace_id as u64);
        let index = (key % self.shards.len() as u64) as usize;
        self.shards.get(index)
    }

    fn with_pending<R>(
        &self,
        trace_id: u128,
        apply: impl FnOnce(&mut PendingTrace) -> R,
    ) -> Option<R> {
        let shard = self.shard(trace_id)?;
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if !guard.pending.contains_key(&trace_id) && guard.pending.len() >= self.config.max_pending
        {
            // Evict the oldest in-flight trace to stay bounded; an
            // abandoned trace (a guard leaked across a dead connection)
            // must not pin memory forever.
            let oldest = guard
                .pending
                .iter()
                .min_by_key(|(_, t)| t.arrival)
                .map(|(id, _)| *id);
            if let Some(id) = oldest {
                guard.pending.remove(&id);
                self.traces_dropped.inc();
            }
        }
        let arrival = self.counter.load(Ordering::Relaxed);
        let entry = guard
            .pending
            .entry(trace_id)
            .or_insert_with(|| PendingTrace {
                arrival,
                ..PendingTrace::default()
            });
        Some(apply(entry))
    }

    /// Opens a span guard: the span records into the trace buffer when
    /// the guard drops, and the local fragment is sampled once every
    /// open guard of its trace has closed.
    #[must_use]
    pub fn start_span(self: &Arc<Self>, ctx: &TraceContext, stage: &'static str) -> TraceSpan {
        let span_id = self.next_id();
        self.with_pending(ctx.trace_id, |pending| pending.open += 1);
        TraceSpan {
            tracer: Arc::clone(self),
            trace_id: ctx.trace_id,
            span_id,
            parent: ctx.parent,
            stage,
            started: Instant::now(),
            links: Vec::new(),
        }
    }

    /// Records a span retrospectively (measured with an explicit start
    /// instant, e.g. a batcher queue wait) without opening a guard.
    /// Returns the minted span id.
    pub fn record_span(
        &self,
        ctx: &TraceContext,
        stage: &'static str,
        start: Instant,
        duration: Duration,
        links: Vec<u64>,
    ) -> u64 {
        let span_id = self.next_id();
        let record = TraceSpanRecord {
            trace_id: ctx.trace_id,
            span_id,
            parent: ctx.parent,
            stage: stage.to_owned(),
            start_us: duration_us(start.saturating_duration_since(self.epoch)),
            duration_us: duration_us(duration),
            links,
        };
        self.with_pending(ctx.trace_id, |pending| pending.spans.push(record));
        span_id
    }

    fn complete(&self, record: TraceSpanRecord) {
        let trace_id = record.trace_id;
        let finished = self.with_pending(trace_id, |pending| {
            pending.spans.push(record);
            pending.open = pending.open.saturating_sub(1);
            pending.open == 0
        });
        if finished != Some(true) {
            return;
        }
        let fragment = {
            let Some(shard) = self.shard(trace_id) else {
                return;
            };
            let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            match guard.pending.remove(&trace_id) {
                Some(pending) => TraceFragment {
                    trace_id,
                    spans: pending.spans,
                },
                None => return,
            }
        };
        self.sample(fragment);
    }

    /// The tail-sampling decision for one completed local fragment.
    fn sample(&self, fragment: TraceFragment) {
        let slow = fragment.root_duration_us() >= self.config.slow_threshold_us;
        let one_in = self.config.sample_one_in.max(1);
        let lucky = self
            .sampled
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(one_in);
        if !(slow || lucky) {
            self.traces_dropped.inc();
            return;
        }
        let mut kept = self.kept.lock().unwrap_or_else(PoisonError::into_inner);
        kept.total_spans += fragment.spans.len();
        kept.traces.push_back(fragment);
        while kept.total_spans > self.config.max_spans && kept.traces.len() > 1 {
            if let Some(evicted) = kept.traces.pop_front() {
                kept.total_spans = kept.total_spans.saturating_sub(evicted.spans.len());
                self.traces_dropped.inc();
            }
        }
        self.traces_kept.inc();
        let occupancy = i64::try_from(kept.total_spans).unwrap_or(i64::MAX);
        self.buffer_spans.set(occupancy);
    }

    /// The most recent kept fragments, newest first, filtered to those
    /// whose root duration reaches `min_duration_us`, capped at `limit`.
    #[must_use]
    pub fn recent(&self, min_duration_us: u64, limit: usize) -> Vec<TraceFragment> {
        let kept = self.kept.lock().unwrap_or_else(PoisonError::into_inner);
        kept.traces
            .iter()
            .rev()
            .filter(|t| t.root_duration_us() >= min_duration_us)
            .take(limit)
            .cloned()
            .collect()
    }
}

fn duration_us(duration: Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

/// An open span. Dropping it records the span; children created while
/// it is open parent themselves via [`TraceSpan::context`].
#[derive(Debug)]
pub struct TraceSpan {
    tracer: Arc<Tracer>,
    trace_id: u128,
    span_id: u64,
    parent: Option<u64>,
    stage: &'static str,
    started: Instant,
    links: Vec<u64>,
}

impl TraceSpan {
    /// This span's id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// Context for children of this span.
    #[must_use]
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent: Some(self.span_id),
        }
    }

    /// Re-labels the span before it records (a dispatch that failed
    /// over becomes a `"failover"` span).
    pub fn set_stage(&mut self, stage: &'static str) {
        self.stage = stage;
    }

    /// Adds a span link (batch fan-in).
    pub fn link(&mut self, span_id: u64) {
        self.links.push(span_id);
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let record = TraceSpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent: self.parent,
            stage: self.stage.to_owned(),
            start_us: duration_us(self.started.saturating_duration_since(self.tracer.epoch)),
            duration_us: duration_us(self.started.elapsed()),
            links: std::mem::take(&mut self.links),
        };
        self.tracer.complete(record);
    }
}

/// A fragment tagged with the node it came from — the input to
/// [`stitch`]. The router labels its own buffer `"router"` and each
/// backend's fetched fragments `"replica-<id>"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFragment {
    /// Where the fragment was recorded.
    pub node: String,
    /// Trace the fragment belongs to.
    pub trace_id: u128,
    /// The fragment's spans.
    pub spans: Vec<TraceSpanRecord>,
}

/// One span of a stitched trace, on the unified timeline (µs from the
/// trace root's start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StitchedSpan {
    /// Span id.
    pub span_id: u64,
    /// Parent span id (`None` only for the root).
    pub parent: Option<u64>,
    /// Node that recorded the span.
    pub node: String,
    /// Stage label.
    pub stage: String,
    /// Start on the unified timeline (root starts at 0).
    pub start_us: u64,
    /// Duration, clamped so the span nests inside its parent.
    pub duration_us: u64,
    /// Span links.
    pub links: Vec<u64>,
    /// Tree depth (root = 0).
    pub depth: usize,
}

/// A reassembled multi-node trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StitchedTrace {
    /// Trace id.
    pub trace_id: u128,
    /// Root span id.
    pub root: u64,
    /// Root duration (the end-to-end latency).
    pub duration_us: u64,
    /// Spans in pre-order: every parent precedes its children.
    pub spans: Vec<StitchedSpan>,
    /// Spans whose parent chain never reached the root (dropped from
    /// `spans`, surfaced so callers can alert on broken propagation).
    pub orphan_spans: usize,
}

/// Stitches per-node fragments into one tree per trace.
///
/// Fragments may arrive in any order and may cover distinct traces.
/// Within one trace, the root is the span with no parent; a trace with
/// no such span (its originating fragment was sampled away) is omitted
/// entirely. Because each node's offsets count from its own epoch,
/// spans are re-based while walking the tree: a child keeps its offset
/// relative to its same-fragment parent, while a cross-node child is
/// centered inside its parent span; either way the child interval is
/// clamped inside the parent, so containment holds by construction.
/// Results sort by root duration, slowest first.
#[must_use]
pub fn stitch(fragments: &[NodeFragment]) -> Vec<StitchedTrace> {
    let mut by_trace: BTreeMap<u128, Vec<(usize, &NodeFragment)>> = BTreeMap::new();
    for (index, fragment) in fragments.iter().enumerate() {
        by_trace
            .entry(fragment.trace_id)
            .or_default()
            .push((index, fragment));
    }
    let mut stitched: Vec<StitchedTrace> = by_trace
        .into_iter()
        .filter_map(|(trace_id, parts)| stitch_one(trace_id, &parts))
        .collect();
    stitched.sort_by(|a, b| {
        b.duration_us
            .cmp(&a.duration_us)
            .then(a.trace_id.cmp(&b.trace_id))
    });
    stitched
}

struct SpanSite<'a> {
    fragment: usize,
    record: &'a TraceSpanRecord,
}

fn stitch_one(trace_id: u128, parts: &[(usize, &NodeFragment)]) -> Option<StitchedTrace> {
    // First record wins on a duplicated span id (should not happen with
    // honest id minting; being deterministic about it beats panicking).
    let mut sites: BTreeMap<u64, SpanSite<'_>> = BTreeMap::new();
    let mut total = 0usize;
    for (fragment_index, fragment) in parts {
        for record in &fragment.spans {
            total += 1;
            sites.entry(record.span_id).or_insert(SpanSite {
                fragment: *fragment_index,
                record,
            });
        }
    }
    // The root: a parentless span. Prefer the longest if several claim it.
    let root_id = sites
        .values()
        .filter(|s| s.record.parent.is_none())
        .max_by_key(|s| (s.record.duration_us, std::cmp::Reverse(s.record.span_id)))
        .map(|s| s.record.span_id)?;
    let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for site in sites.values() {
        if site.record.span_id == root_id {
            continue;
        }
        if let Some(parent) = site.record.parent {
            if parent != site.record.span_id && sites.contains_key(&parent) {
                children
                    .entry(parent)
                    .or_default()
                    .push(site.record.span_id);
            }
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|id| {
            sites
                .get(id)
                .map_or((u64::MAX, *id), |s| (s.record.start_us, s.record.span_id))
        });
    }
    // Pre-order walk, re-basing each span onto the unified timeline.
    let mut spans: Vec<StitchedSpan> = Vec::new();
    let mut placed: BTreeMap<u64, (u64, u64, usize, usize)> = BTreeMap::new();
    let mut stack: Vec<u64> = vec![root_id];
    while let Some(span_id) = stack.pop() {
        let Some(site) = sites.get(&span_id) else {
            continue;
        };
        let record = site.record;
        let (start, duration, depth) = match record.parent.and_then(|p| placed.get(&p).copied()) {
            None => (0, record.duration_us, 0),
            Some((parent_start, parent_duration, parent_fragment, parent_depth)) => {
                let duration = record.duration_us.min(parent_duration);
                let latest_start = parent_start + (parent_duration - duration);
                let start = if site.fragment == parent_fragment {
                    // Same process epoch: keep the true relative offset.
                    let parent_raw = sites
                        .get(&record.parent.unwrap_or(span_id))
                        .map_or(record.start_us, |p| p.record.start_us);
                    let offset = record.start_us.saturating_sub(parent_raw);
                    (parent_start + offset).min(latest_start)
                } else {
                    // Foreign epoch: center the remote span in its parent.
                    parent_start + (parent_duration - duration) / 2
                };
                (start, duration, parent_depth + 1)
            }
        };
        placed.insert(span_id, (start, duration, site.fragment, depth));
        spans.push(StitchedSpan {
            span_id,
            parent: if span_id == root_id {
                None
            } else {
                record.parent
            },
            node: fragment_node(parts, site.fragment),
            stage: record.stage.clone(),
            start_us: start,
            duration_us: duration,
            links: record.links.clone(),
            depth,
        });
        if let Some(kids) = children.get(&span_id) {
            // Reverse so the stack pops earliest-starting child first.
            for child in kids.iter().rev() {
                stack.push(*child);
            }
        }
    }
    let duration_us = spans.first().map_or(0, |root| root.duration_us);
    let orphan_spans = total.saturating_sub(spans.len());
    Some(StitchedTrace {
        trace_id,
        root: root_id,
        duration_us,
        spans,
        orphan_spans,
    })
}

fn fragment_node(parts: &[(usize, &NodeFragment)], fragment_index: usize) -> String {
    parts
        .iter()
        .find(|(index, _)| *index == fragment_index)
        .map_or_else(String::new, |(_, f)| f.node.clone())
}

/// Self-time of a span in a stitched trace: its duration minus the
/// durations of its direct children (floored at zero — children can
/// overlap). This is what `ncl-trace` prints per hop.
#[must_use]
pub fn self_time_us(trace: &StitchedTrace, span_id: u64) -> u64 {
    let Some(span) = trace.spans.iter().find(|s| s.span_id == span_id) else {
        return 0;
    };
    let child_total: u64 = trace
        .spans
        .iter()
        .filter(|s| s.parent == Some(span_id))
        .map(|s| s.duration_us)
        .sum();
    span.duration_us.saturating_sub(child_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(config: TraceConfig) -> Arc<Tracer> {
        Arc::new(Tracer::new(7, config, Instant::now()))
    }

    #[test]
    fn ids_are_deterministic_for_a_seed() {
        let a = Tracer::new(42, TraceConfig::default(), Instant::now());
        let b = Tracer::new(42, TraceConfig::default(), Instant::now());
        assert_eq!(a.new_trace().trace_id, b.new_trace().trace_id);
        assert_ne!(a.new_trace().trace_id, a.new_trace().trace_id);
    }

    #[test]
    fn first_completed_trace_is_always_kept() {
        let tracer = tracer(TraceConfig {
            slow_threshold_us: u64::MAX,
            sample_one_in: 1_000,
            ..TraceConfig::default()
        });
        let ctx = tracer.new_trace();
        drop(tracer.start_span(&ctx, "root"));
        assert_eq!(tracer.recent(0, 16).len(), 1, "sample counter starts at 0");
        assert_eq!(tracer.traces_kept().get(), 1);
    }

    #[test]
    fn fast_traces_drop_and_count_once_sampling_passes() {
        let tracer = tracer(TraceConfig {
            slow_threshold_us: u64::MAX,
            sample_one_in: 4,
            ..TraceConfig::default()
        });
        for _ in 0..8 {
            let ctx = tracer.new_trace();
            drop(tracer.start_span(&ctx, "root"));
        }
        assert_eq!(tracer.recent(0, 16).len(), 2, "1-in-4 of 8 fragments");
        assert_eq!(tracer.traces_dropped().get(), 6);
    }

    #[test]
    fn fragment_completes_only_when_all_guards_close() {
        let tracer = tracer(TraceConfig::default());
        let ctx = tracer.new_trace();
        let root = tracer.start_span(&ctx, "root");
        let child = tracer.start_span(&root.context(), "child");
        tracer.record_span(
            &root.context(),
            "queue_wait",
            Instant::now(),
            Duration::from_micros(5),
            Vec::new(),
        );
        assert!(tracer.recent(0, 16).is_empty(), "root still open");
        drop(child);
        assert!(tracer.recent(0, 16).is_empty(), "root still open");
        drop(root);
        let kept = tracer.recent(0, 16);
        assert_eq!(kept.len(), 1);
        let Some(fragment) = kept.first() else {
            panic!("fragment missing")
        };
        assert_eq!(fragment.spans.len(), 3);
        let root_spans: Vec<_> = fragment
            .spans
            .iter()
            .filter(|s| s.parent.is_none())
            .collect();
        assert_eq!(root_spans.len(), 1);
    }

    #[test]
    fn kept_store_is_bounded_in_spans() {
        let tracer = tracer(TraceConfig {
            slow_threshold_us: 0, // keep everything: stress the bound
            sample_one_in: 1,
            max_spans: 8,
            ..TraceConfig::default()
        });
        for _ in 0..32 {
            let ctx = tracer.new_trace();
            let root = tracer.start_span(&ctx, "root");
            drop(tracer.start_span(&root.context(), "child"));
            drop(root);
        }
        let kept: usize = tracer.recent(0, 64).iter().map(|t| t.spans.len()).sum();
        assert!(kept <= 8, "kept {kept} spans, bound is 8");
        assert!(tracer.traces_dropped().get() >= 24);
        assert!(tracer.buffer_spans().get() <= 8);
    }

    #[test]
    fn pending_traces_are_bounded_per_shard() {
        let tracer = tracer(TraceConfig {
            shards: 1,
            max_pending: 4,
            ..TraceConfig::default()
        });
        // Leak guards for 16 traces: only 4 may stay pending.
        let mut guards = Vec::new();
        for _ in 0..16 {
            let ctx = tracer.new_trace();
            guards.push(tracer.start_span(&ctx, "leaked"));
        }
        assert!(tracer.traces_dropped().get() >= 12);
        guards.clear();
    }

    #[test]
    fn recent_filters_by_min_duration_and_limit() {
        let tracer = tracer(TraceConfig {
            slow_threshold_us: 0,
            sample_one_in: 1,
            ..TraceConfig::default()
        });
        for wait in [0u64, 2_000] {
            let ctx = tracer.new_trace();
            // Hold a guard so the fragment finalizes only once the
            // synthetic root below is recorded.
            let guard = tracer.start_span(&ctx, "flush");
            tracer.record_span(
                &ctx,
                "root",
                Instant::now(),
                Duration::from_micros(wait + 10),
                Vec::new(),
            );
            drop(guard);
        }
        assert_eq!(tracer.recent(0, 16).len(), 2);
        assert_eq!(tracer.recent(1_000, 16).len(), 1);
        assert_eq!(tracer.recent(0, 1).len(), 1);
    }

    #[test]
    fn stitch_rebases_remote_fragments_inside_their_parent() {
        // Router fragment: route root (100µs) with one dispatch child.
        let route = TraceSpanRecord {
            trace_id: 9,
            span_id: 1,
            parent: None,
            stage: "route".to_owned(),
            start_us: 50,
            duration_us: 100,
            links: Vec::new(),
        };
        let dispatch = TraceSpanRecord {
            span_id: 2,
            parent: Some(1),
            stage: "dispatch".to_owned(),
            start_us: 60,
            duration_us: 80,
            ..route.clone()
        };
        // Replica fragment, recorded against a *different* epoch.
        let accept = TraceSpanRecord {
            span_id: 3,
            parent: Some(2),
            stage: "accept".to_owned(),
            start_us: 1_000_000,
            duration_us: 60,
            ..route.clone()
        };
        let forward = TraceSpanRecord {
            span_id: 4,
            parent: Some(3),
            stage: "forward".to_owned(),
            start_us: 1_000_010,
            duration_us: 40,
            ..route.clone()
        };
        // Arbitrary arrival order: replica fragment first.
        let stitched = stitch(&[
            NodeFragment {
                node: "replica-1".to_owned(),
                trace_id: 9,
                spans: vec![forward, accept],
            },
            NodeFragment {
                node: "router".to_owned(),
                trace_id: 9,
                spans: vec![dispatch, route],
            },
        ]);
        assert_eq!(stitched.len(), 1);
        let Some(trace) = stitched.first() else {
            panic!("no stitched trace")
        };
        assert_eq!(trace.root, 1);
        assert_eq!(trace.orphan_spans, 0);
        assert_eq!(trace.spans.len(), 4);
        // Pre-order: parents precede children, depths increase.
        let stages: Vec<&str> = trace.spans.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(stages, ["route", "dispatch", "accept", "forward"]);
        // Containment on the unified timeline.
        for span in &trace.spans {
            let Some(parent) = span.parent else { continue };
            let Some(parent_span) = trace.spans.iter().find(|s| s.span_id == parent) else {
                panic!("parent missing from stitched output")
            };
            assert!(span.start_us >= parent_span.start_us);
            assert!(
                span.start_us + span.duration_us <= parent_span.start_us + parent_span.duration_us
            );
        }
        assert_eq!(self_time_us(trace, 1), 20, "route self-time = 100 - 80");
    }

    #[test]
    fn stitch_counts_orphans_and_skips_rootless_traces() {
        let orphan = TraceSpanRecord {
            trace_id: 5,
            span_id: 10,
            parent: Some(99), // parent never recorded anywhere
            stage: "accept".to_owned(),
            start_us: 0,
            duration_us: 10,
            links: Vec::new(),
        };
        assert!(stitch(&[NodeFragment {
            node: "replica-1".to_owned(),
            trace_id: 5,
            spans: vec![orphan.clone()],
        }])
        .is_empty());
        let root = TraceSpanRecord {
            span_id: 11,
            parent: None,
            stage: "route".to_owned(),
            ..orphan.clone()
        };
        let stitched = stitch(&[NodeFragment {
            node: "router".to_owned(),
            trace_id: 5,
            spans: vec![root, orphan],
        }]);
        assert_eq!(stitched.len(), 1);
        let Some(trace) = stitched.first() else {
            panic!("no stitched trace")
        };
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.orphan_spans, 1);
    }

    #[test]
    fn hex_round_trips() {
        let trace_id = 0x0123_4567_89ab_cdef_0011_2233_4455_6677u128;
        assert_eq!(parse_trace_id(&trace_id_hex(trace_id)), Some(trace_id));
        assert_eq!(parse_span_id(&span_id_hex(42)), Some(42));
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_span_id("123"), None);
    }
}
