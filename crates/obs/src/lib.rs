//! `ncl_obs` — fleet-wide observability for the Replay4NCL stack.
//!
//! One zero-dependency layer every crate in the fleet shares:
//!
//! * [`Registry`] — named counters, gauges and [`Log2Histogram`]s.
//!   Registration takes a mutex once; the returned `Arc` handles cost
//!   one relaxed atomic op per update, so instrumentation is safe on
//!   the request path and inside the training loop.
//! * [`Stage`]/[`Span`] — `Instant`-pair timers for named stages
//!   (ingest, train, checkpoint, ...) recording into a per-stage
//!   histogram and a bounded ring of recent [`SpanRecord`]s.
//! * [`Level`]/[`Event`] — structured, leveled events with key/value
//!   fields replacing ad-hoc `eprintln!` diagnostics (warnings still
//!   echo to stderr).
//! * [`Registry::render`] plus [`exposition::relabel`] and
//!   [`exposition::merge`] — deterministic Prometheus-style text
//!   exposition, scrapeable over the serve protocol's `metrics` op
//!   and mergeable by the router into one fleet view.
//!
//! Instrumentation never touches numeric code: it observes wall time
//! and counts around the deterministic kernels, so bit-identity
//! guarantees (checkpoints, replicated deltas) are unaffected.

pub mod events;
pub mod exposition;
pub mod histogram;
pub mod registry;
pub mod span;
pub mod trace;

pub use events::{Event, EventLog, Level};
pub use histogram::{Log2Histogram, BUCKETS};
pub use registry::{Counter, Gauge, Registry};
pub use span::{Span, SpanRecord, SpanRing, Stage};
pub use trace::{
    stitch, NodeFragment, StitchedSpan, StitchedTrace, TraceConfig, TraceContext, TraceFragment,
    TraceSpan, TraceSpanRecord, Tracer,
};
