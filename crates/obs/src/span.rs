//! Stage spans: `Instant`-pair timers that record into a histogram
//! and a bounded ring of recent spans.
//!
//! A [`Stage`] is created once (cold path, one registry lookup) and
//! held by the instrumented loop; entering it costs two `Instant`
//! reads plus one histogram record and one ring push on drop. The
//! ring is a mutex-guarded `VecDeque`, which is fine because spans
//! time *stages* (ingest, train, checkpoint) — millisecond-scale work
//! off the request path — not individual requests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::Log2Histogram;
use crate::registry::{Counter, Gauge};
use crate::trace::{TraceContext, TraceSpan, Tracer};

/// One completed span, timestamped relative to the registry's epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The stage name (e.g. `"train"`).
    pub name: &'static str,
    /// Microseconds from registry creation to span start.
    pub start_us: u64,
    /// Span wall time in microseconds.
    pub duration_us: u64,
}

/// Bounded ring of the most recent spans.
#[derive(Debug)]
pub struct SpanRing {
    inner: Mutex<VecDeque<SpanRecord>>,
    cap: usize,
    total: AtomicU64,
    dropped: Arc<Counter>,
    occupancy: Arc<Gauge>,
}

impl SpanRing {
    /// An empty ring holding at most `cap` spans.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        SpanRing {
            inner: Mutex::new(VecDeque::with_capacity(cap)),
            cap: cap.max(1),
            total: AtomicU64::new(0),
            dropped: Arc::new(Counter::default()),
            occupancy: Arc::new(Gauge::default()),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, record: SpanRecord) {
        self.total.fetch_add(1, Ordering::Relaxed);
        // Ring mutations are total, so a poisoned lock still guards a
        // valid ring — recover the guard rather than panic in obs code.
        let mut ring = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.inc();
        }
        ring.push_back(record);
        self.occupancy
            .set(i64::try_from(ring.len()).unwrap_or(i64::MAX));
    }

    /// Spans evicted by the bound (`obs_spans_dropped_total`).
    #[must_use]
    pub fn dropped_handle(&self) -> Arc<Counter> {
        Arc::clone(&self.dropped)
    }

    /// Current ring occupancy (`obs_span_ring_occupancy`).
    #[must_use]
    pub fn occupancy_handle(&self) -> Arc<Gauge> {
        Arc::clone(&self.occupancy)
    }

    /// The retained spans, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Spans ever pushed (including evicted ones).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// A named, reusable stage timer bound to one histogram series.
pub struct Stage {
    name: &'static str,
    hist: Arc<Log2Histogram>,
    ring: Arc<SpanRing>,
    epoch: Instant,
}

impl Stage {
    pub(crate) fn new(
        name: &'static str,
        hist: Arc<Log2Histogram>,
        ring: Arc<SpanRing>,
        epoch: Instant,
    ) -> Self {
        Stage {
            name,
            hist,
            ring,
            epoch,
        }
    }

    /// The stage's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The histogram this stage records into (µs).
    #[must_use]
    pub fn histogram(&self) -> &Arc<Log2Histogram> {
        &self.hist
    }

    /// Starts a span; the guard records on drop.
    #[must_use]
    pub fn enter(&self) -> Span<'_> {
        Span {
            stage: self,
            started: Instant::now(),
            trace: None,
        }
    }

    /// Starts a span that *also* records into the distributed trace
    /// buffer, parented by `ctx` — this is how daemon stages join an
    /// increment-scoped trace without changing their histogram series.
    #[must_use]
    pub fn enter_traced(&self, tracer: &Arc<Tracer>, ctx: &TraceContext) -> Span<'_> {
        Span {
            stage: self,
            started: Instant::now(),
            trace: Some(tracer.start_span(ctx, self.name)),
        }
    }

    /// Times a closure as one span of this stage.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _span = self.enter();
        f()
    }
}

/// An in-flight span; completes (and records) when dropped.
pub struct Span<'a> {
    stage: &'a Stage,
    started: Instant,
    trace: Option<TraceSpan>,
}

impl Span<'_> {
    /// The trace context children of this span should carry, when the
    /// span was opened with [`Stage::enter_traced`].
    #[must_use]
    pub fn trace_context(&self) -> Option<TraceContext> {
        self.trace.as_ref().map(TraceSpan::context)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let duration_us = self.started.elapsed().as_micros() as u64;
        self.stage.hist.record(duration_us);
        self.stage.ring.push(SpanRecord {
            name: self.stage.name,
            start_us: self
                .started
                .saturating_duration_since(self.stage.epoch)
                .as_micros() as u64,
            duration_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn spans_record_into_histogram_and_ring() {
        let r = Registry::new();
        let stage = r.stage("test_stage_us", "work");
        stage.time(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        {
            let _guard = stage.enter();
        }
        assert_eq!(stage.histogram().count(), 2);
        assert!(stage.histogram().max() >= 2_000);
        let spans = r.recent_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.name == "work"));
        assert!(spans[0].start_us <= spans[1].start_us);
        assert_eq!(r.spans_recorded(), 2);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let ring = SpanRing::new(3);
        for i in 0..10u64 {
            ring.push(SpanRecord {
                name: "s",
                start_us: i,
                duration_us: i,
            });
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|s| s.start_us).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(ring.total(), 10);
    }
}
