//! A lock-free log₂-bucket histogram.
//!
//! Generalizes the latency histogram that used to live in
//! `ncl_serve::metrics`: 64 buckets where bucket `i` covers the value
//! range `(2^(i-1), 2^i]` (bucket 0 covers `0..=1`), so one
//! `fetch_add` per observation records any `u64` — microseconds,
//! bytes, batch sizes — with bounded relative error. Quantiles resolve
//! to the bucket's upper bound, so they never under-report.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// Lock-free histogram over `u64` observations.
///
/// All operations are plain relaxed atomics; concurrent recorders
/// never contend on a lock and `count`/`sum` are exact (each
/// observation is one `fetch_add` on each).
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    exemplar_count: AtomicU64,
    exemplar_value: AtomicU64,
    exemplar_hi: AtomicU64,
    exemplar_lo: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplar_count: AtomicU64::new(0),
            exemplar_value: AtomicU64::new(0),
            exemplar_hi: AtomicU64::new(0),
            exemplar_lo: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: the smallest `i` with `value <= 2^i`.
    #[inline]
    fn bucket_index(value: u64) -> usize {
        let v = value.max(1);
        ((64 - (v - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (the last bucket is open).
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one observation tagged with the trace it came from,
    /// keeping the trace id of the max-latency observation as an
    /// exemplar — so a p99 number in `stats` links to an actual trace.
    ///
    /// The exemplar update is racy-by-design (a check then three
    /// relaxed stores): under contention the exemplar may briefly name
    /// a near-max observation, which is fine for a diagnostics pointer
    /// and keeps the hot path lock-free.
    #[inline]
    pub fn record_traced(&self, value: u64, trace_id: u128) {
        self.record(value);
        self.exemplar_count.fetch_add(1, Ordering::Relaxed);
        if value >= self.exemplar_value.load(Ordering::Relaxed) {
            self.exemplar_value.store(value, Ordering::Relaxed);
            self.exemplar_hi
                .store((trace_id >> 64) as u64, Ordering::Relaxed);
            self.exemplar_lo.store(trace_id as u64, Ordering::Relaxed);
        }
    }

    /// The `(value, trace_id)` exemplar of the slowest traced
    /// observation, or `None` if nothing was recorded via
    /// [`Log2Histogram::record_traced`].
    #[must_use]
    pub fn exemplar(&self) -> Option<(u64, u128)> {
        if self.exemplar_count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let hi = u128::from(self.exemplar_hi.load(Ordering::Relaxed));
        let lo = u128::from(self.exemplar_lo.load(Ordering::Relaxed));
        Some((self.exemplar_value.load(Ordering::Relaxed), (hi << 64) | lo))
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wraps only after `u64` overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value, exact (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum() as f64 / count as f64
    }

    /// Nearest-rank quantile, resolved to the containing bucket's
    /// upper bound so the estimate never under-reports. `q` is clamped
    /// to `[0, 1]`; an empty histogram reports 0.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_upper_bound(i);
            }
        }
        // Racing recorders can leave count ahead of the bucket sums
        // for an instant; fall back to the largest value seen.
        self.max()
    }

    /// Cumulative `(upper_bound, count)` pairs up to and including the
    /// highest non-empty bucket. Empty histograms yield nothing; the
    /// caller adds the implicit `+Inf` bucket (== `count()`).
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let Some(last) = counts.iter().rposition(|&c| c > 0) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut running = 0u64;
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            running += c;
            out.push((Self::bucket_upper_bound(i), running));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_exact_count_sum_max() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.max(), 1000);
        // 0 and 1 share bucket 0; 2 is bucket 1; 3..=4 bucket 2.
        let cum = h.cumulative_buckets();
        assert_eq!(cum[0], (1, 2));
        assert_eq!(cum[1], (2, 3));
        assert_eq!(cum[2], (4, 5));
        assert_eq!(cum.last().unwrap().1, 7);
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket ub 128
        }
        h.record(5000); // bucket ub 8192
        assert_eq!(h.quantile(0.50), 128);
        assert_eq!(h.quantile(0.99), 128);
        assert_eq!(h.quantile(1.0), 8192);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.max(), 0);
        assert!(h.mean().abs() < f64::EPSILON);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn exemplar_tracks_the_slowest_traced_observation() {
        let h = Log2Histogram::new();
        assert_eq!(h.exemplar(), None);
        h.record(9_999); // untraced observations never become exemplars
        assert_eq!(h.exemplar(), None);
        h.record_traced(100, 7);
        h.record_traced(5_000, 0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10);
        h.record_traced(200, 9);
        assert_eq!(
            h.exemplar(),
            Some((5_000, 0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10))
        );
        assert_eq!(h.count(), 4, "record_traced still feeds the histogram");
    }

    #[test]
    fn max_bucket_absorbs_the_full_u64_range() {
        let h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // The open last bucket's upper bound never under-reports.
        assert_eq!(h.quantile(1.0), u64::MAX);
        let cum = h.cumulative_buckets();
        assert_eq!(cum.last().copied(), Some((u64::MAX, 2)));
    }
}
