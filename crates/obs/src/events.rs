//! Structured events: leveled, key/value-tagged diagnostics replacing
//! scattered `eprintln!` calls.
//!
//! Every event increments a per-level counter (exposed as
//! `obs_events_total{level=...}`), lands in a bounded ring for
//! inspection over the wire, and — for `Warn`/`Error` — echoes one
//! structured line to stderr so operator logs and CI greps keep
//! working without a log pipeline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::registry::{Counter, Gauge};

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    /// All levels, lowest first.
    pub const ALL: [Level; 4] = [Level::Debug, Level::Info, Level::Warn, Level::Error];

    /// The lowercase label value.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn index(self) -> usize {
        match self {
            Level::Debug => 0,
            Level::Info => 1,
            Level::Warn => 2,
            Level::Error => 3,
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (1-based, never reused).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Human-readable message.
    pub message: String,
    /// Key/value context fields, in call order.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// The single-line rendering used for the stderr echo:
    /// `[warn] message key="value" ...`.
    #[must_use]
    pub fn render_line(&self) -> String {
        let mut line = format!("[{}] {}", self.level.as_str(), self.message);
        for (k, v) in &self.fields {
            line.push_str(&format!(" {k}={v:?}"));
        }
        line
    }
}

/// Bounded ring of recent events plus per-level counters.
pub struct EventLog {
    ring: Mutex<VecDeque<Event>>,
    cap: usize,
    seq: AtomicU64,
    counters: [Arc<Counter>; 4],
    echo: AtomicBool,
    dropped: Arc<Counter>,
    occupancy: Arc<Gauge>,
}

impl EventLog {
    /// An empty log retaining at most `cap` events.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        EventLog {
            ring: Mutex::new(VecDeque::with_capacity(cap)),
            cap: cap.max(1),
            seq: AtomicU64::new(0),
            counters: std::array::from_fn(|_| Arc::new(Counter::new())),
            echo: AtomicBool::new(true),
            dropped: Arc::new(Counter::default()),
            occupancy: Arc::new(Gauge::default()),
        }
    }

    /// The per-level counter (what the registry adopts for exposition).
    #[must_use]
    pub fn counter(&self, level: Level) -> Arc<Counter> {
        Arc::clone(&self.counters[level.index()])
    }

    /// Events evicted by the bound (`obs_events_dropped_total`).
    #[must_use]
    pub fn dropped_handle(&self) -> Arc<Counter> {
        Arc::clone(&self.dropped)
    }

    /// Current ring occupancy (`obs_event_ring_occupancy`).
    #[must_use]
    pub fn occupancy_handle(&self) -> Arc<Gauge> {
        Arc::clone(&self.occupancy)
    }

    /// Enables/disables the `Warn`/`Error` stderr echo.
    pub fn set_echo(&self, on: bool) {
        self.echo.store(on, Ordering::Relaxed);
    }

    /// Records an event.
    pub fn record(&self, level: Level, message: &str, fields: &[(&str, &str)]) {
        self.counters[level.index()].inc();
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            level,
            message: message.to_owned(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        };
        if level >= Level::Warn && self.echo.load(Ordering::Relaxed) {
            eprintln!("{}", event.render_line());
        }
        // A panic elsewhere while holding the lock leaves the ring in a
        // valid state (every mutation below is total) — recover the
        // guard instead of cascading the poison through the fleet.
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.inc();
        }
        ring.push_back(event);
        self.occupancy
            .set(i64::try_from(ring.len()).unwrap_or(i64::MAX));
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<Event> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_count_per_level_and_stay_bounded() {
        let log = EventLog::new(2);
        log.set_echo(false);
        log.record(Level::Info, "first", &[]);
        log.record(Level::Warn, "second", &[("k", "v")]);
        log.record(Level::Warn, "third", &[]);
        assert_eq!(log.counter(Level::Info).get(), 1);
        assert_eq!(log.counter(Level::Warn).get(), 2);
        assert_eq!(log.counter(Level::Error).get(), 0);
        let recent = log.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].message, "second");
        assert_eq!(recent[1].message, "third");
        assert_eq!(recent[0].seq, 2);
        assert_eq!(recent[0].fields, vec![("k".to_owned(), "v".to_owned())]);
    }

    #[test]
    fn render_line_is_greppable() {
        let event = Event {
            seq: 1,
            level: Level::Warn,
            message: "checkpoint write failed".to_owned(),
            fields: vec![("error".to_owned(), "disk \"full\"".to_owned())],
        };
        assert_eq!(
            event.render_line(),
            "[warn] checkpoint write failed error=\"disk \\\"full\\\"\""
        );
    }
}
