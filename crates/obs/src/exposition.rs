//! Working with rendered exposition text: relabeling a scraped
//! replica's metrics and merging several expositions into one fleet
//! view.
//!
//! The router scrapes each replica's `metrics` op, stamps every
//! sample with a `replica="N"` label via [`relabel`], and folds the
//! results together with [`merge`] so one document covers the whole
//! fleet. Both functions operate line-by-line on the text format the
//! registry renders (and that real Prometheus clients render), so the
//! router never needs a replica's registry in-process.

use std::collections::BTreeMap;

use crate::registry::escape_label;

/// Splits a sample line into `(name, labels-inside-braces, rest)`.
/// `rest` starts at the space before the value. Returns `None` for
/// lines that don't look like samples (comments, blanks).
fn split_sample(line: &str) -> Option<(&str, Option<&str>, &str)> {
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let name_end = line.find(['{', ' '])?;
    let name = &line[..name_end];
    if name.is_empty() {
        return None;
    }
    if line.as_bytes()[name_end] == b' ' {
        return Some((name, None, &line[name_end..]));
    }
    // Scan for the closing brace, honoring escapes inside quoted
    // label values.
    let body = &line[name_end + 1..];
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => {
                return Some((name, Some(&body[..i]), &body[i + 1..]));
            }
            _ => {}
        }
    }
    None
}

/// Parses `k="v",k2="v2"` into pairs, unescaping values.
fn parse_labels(body: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut rest = body;
    loop {
        let rest_trimmed = rest.trim_start_matches(',');
        if rest_trimmed.is_empty() {
            return pairs;
        }
        let Some(eq) = rest_trimmed.find("=\"") else {
            return pairs;
        };
        let key = rest_trimmed[..eq].to_owned();
        let value_body = &rest_trimmed[eq + 2..];
        let mut value = String::new();
        let mut escaped = false;
        let mut end = None;
        for (i, c) in value_body.char_indices() {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let Some(end) = end else {
            return pairs;
        };
        pairs.push((key, value));
        rest = &value_body[end + 1..];
    }
}

/// Stamps every sample in `text` with an extra `key="value"` label,
/// re-sorting the label set (the `le` bucket label stays last when
/// present, matching renderer convention). Comment and blank lines
/// pass through untouched.
#[must_use]
pub fn relabel(text: &str, key: &str, value: &str) -> String {
    let mut out = String::with_capacity(text.len() + 64);
    for line in text.lines() {
        match split_sample(line) {
            None => {
                out.push_str(line);
                out.push('\n');
            }
            Some((name, labels, rest)) => {
                let mut pairs = labels.map(parse_labels).unwrap_or_default();
                pairs.retain(|(k, _)| k != key);
                pairs.push((key.to_owned(), value.to_owned()));
                let le = pairs
                    .iter()
                    .position(|(k, _)| k == "le")
                    .map(|i| pairs.remove(i));
                pairs.sort();
                if let Some(le) = le {
                    pairs.push(le);
                }
                let rendered: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                    .collect();
                out.push_str(name);
                out.push('{');
                out.push_str(&rendered.join(","));
                out.push('}');
                out.push_str(rest);
                out.push('\n');
            }
        }
    }
    out
}

/// Merges several exposition documents into one: samples regroup
/// under their family so each `# HELP`/`# TYPE` appears once (first
/// definition wins), families sort by name, and within a family the
/// samples keep section order then line order — deterministic for
/// deterministic inputs.
#[must_use]
pub fn merge(sections: &[String]) -> String {
    struct MergedFamily {
        comments: Vec<String>,
        samples: Vec<String>,
    }
    let mut families: BTreeMap<String, MergedFamily> = BTreeMap::new();
    for section in sections {
        // Samples attach to the family declared by the preceding
        // `# TYPE` line; a bare sample falls back to its own name.
        let mut current: Option<String> = None;
        for line in section.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let mut words = comment.split_whitespace();
                let kind = words.next();
                let name = words.next();
                if let (Some("HELP" | "TYPE"), Some(name)) = (kind, name) {
                    let family = families
                        .entry(name.to_owned())
                        .or_insert_with(|| MergedFamily {
                            comments: Vec::new(),
                            samples: Vec::new(),
                        });
                    if kind == Some("TYPE") {
                        current = Some(name.to_owned());
                        if !family.comments.iter().any(|c| c.starts_with("# TYPE ")) {
                            family.comments.push(line.to_owned());
                        }
                    } else if !family.comments.iter().any(|c| c.starts_with("# HELP ")) {
                        family.comments.push(line.to_owned());
                    }
                }
                continue;
            }
            let Some((name, _, _)) = split_sample(line) else {
                continue;
            };
            let family_name = match &current {
                Some(current) if name.starts_with(current.as_str()) => current.clone(),
                _ => name.to_owned(),
            };
            families
                .entry(family_name)
                .or_insert_with(|| MergedFamily {
                    comments: Vec::new(),
                    samples: Vec::new(),
                })
                .samples
                .push(line.to_owned());
        }
    }
    let mut out = String::new();
    for (_, family) in families {
        // HELP before TYPE, as the renderer emits them.
        let mut comments = family.comments;
        comments.sort_by_key(|c| !c.starts_with("# HELP "));
        for comment in comments {
            out.push_str(&comment);
            out.push('\n');
        }
        for sample in family.samples {
            out.push_str(&sample);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn relabel_stamps_every_sample_sorted() {
        let text = "# HELP x_total help\n# TYPE x_total counter\nx_total 3\n\
                    y_us_bucket{stage=\"a\",le=\"+Inf\"} 1\ny_us_sum{stage=\"a\"} 9\n";
        let stamped = relabel(text, "replica", "2");
        assert!(stamped.contains("# HELP x_total help"));
        assert!(stamped.contains("x_total{replica=\"2\"} 3"));
        // `le` stays last; other labels sort around the new one.
        assert!(stamped.contains("y_us_bucket{replica=\"2\",stage=\"a\",le=\"+Inf\"} 1"));
        assert!(stamped.contains("y_us_sum{replica=\"2\",stage=\"a\"} 9"));
    }

    #[test]
    fn relabel_handles_escaped_quotes_in_values() {
        let text = "e_total{err=\"a\\\"b\\\\c\"} 1\n";
        let stamped = relabel(text, "r", "0");
        assert_eq!(stamped, "e_total{err=\"a\\\"b\\\\c\",r=\"0\"} 1\n");
    }

    #[test]
    fn merge_groups_families_and_keeps_one_type_line() {
        let own = Registry::new();
        own.counter("router_dispatch_total", "Dispatches.").add(5);
        let replica = Registry::new();
        replica.counter("serve_requests_ok_total", "OK.").add(7);
        let merged = merge(&[
            own.render(),
            relabel(&replica.render(), "replica", "0"),
            relabel(&replica.render(), "replica", "1"),
        ]);
        assert_eq!(merged.matches("# TYPE serve_requests_ok_total").count(), 1);
        assert!(merged.contains("serve_requests_ok_total{replica=\"0\"} 7"));
        assert!(merged.contains("serve_requests_ok_total{replica=\"1\"} 7"));
        assert!(merged.contains("router_dispatch_total 5"));
        // Deterministic: merging the same inputs yields the same bytes.
        let again = merge(&[
            own.render(),
            relabel(&replica.render(), "replica", "0"),
            relabel(&replica.render(), "replica", "1"),
        ]);
        assert_eq!(merged, again);
    }

    #[test]
    fn merge_keeps_histogram_series_under_their_family() {
        let r = Registry::new();
        r.histogram("lat_us", "Latency.").record(100);
        let merged = merge(&[relabel(&r.render(), "replica", "3")]);
        let type_pos = merged.find("# TYPE lat_us histogram").unwrap();
        let bucket_pos = merged.find("lat_us_bucket").unwrap();
        let count_pos = merged.find("lat_us_count").unwrap();
        assert!(type_pos < bucket_pos && bucket_pos < count_pos);
        assert_eq!(merged.matches("# TYPE lat_us ").count(), 1);
    }
}
