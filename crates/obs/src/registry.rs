//! The metric registry: named counters, gauges and histograms with
//! deterministic Prometheus-style text exposition.
//!
//! Registration (name + label lookup) takes a mutex once, on the cold
//! path; callers hold the returned `Arc` handle and every subsequent
//! increment is a single relaxed atomic op. Rendering walks a
//! `BTreeMap` keyed by metric name and sorted label pairs, so the
//! exposition text is byte-stable for a given set of metric values.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::events::{Event, EventLog, Level};
use crate::histogram::Log2Histogram;
use crate::span::{SpanRecord, SpanRing, Stage};
use crate::trace::{TraceConfig, Tracer};

/// Recent-span ring capacity.
pub const SPAN_RING_CAP: usize = 256;
/// Structured-event ring capacity.
pub const EVENT_RING_CAP: usize = 256;

/// A monotonically increasing counter (relaxed atomics throughout).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, versions, up/down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may go negative transiently under races).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a registered series points at.
#[derive(Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Log2Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// All series sharing one metric name (differing only in labels).
struct Family {
    kind: &'static str,
    help: String,
    series: BTreeMap<Vec<(String, String)>, Handle>,
}

/// The process-wide metric registry.
///
/// One per process (or per server in tests); shared as
/// `Arc<Registry>`. Also owns the recent-span ring and the structured
/// event log so one handle carries the whole observability surface.
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
    spans: Arc<SpanRing>,
    events: EventLog,
    tracer: Arc<Tracer>,
    epoch: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    out.sort();
    out
}

impl Registry {
    /// An empty registry (plus its event-level counters, ring drop/
    /// occupancy series and the distributed-trace buffer counters).
    #[must_use]
    pub fn new() -> Self {
        let epoch = Instant::now();
        let registry = Registry {
            families: Mutex::new(BTreeMap::new()),
            spans: Arc::new(SpanRing::new(SPAN_RING_CAP)),
            events: EventLog::new(EVENT_RING_CAP),
            tracer: Arc::new(Tracer::new(0, TraceConfig::default(), epoch)),
            epoch,
        };
        for level in Level::ALL {
            registry.adopt(
                "obs_events_total",
                &[("level", level.as_str())],
                "Structured events recorded, by level.",
                Handle::Counter(registry.events.counter(level)),
            );
        }
        let _ = registry.adopt_counter(
            "obs_spans_dropped_total",
            &[],
            "Stage spans evicted from the bounded recent-span ring.",
            registry.spans.dropped_handle(),
        );
        let _ = registry.adopt_gauge(
            "obs_span_ring_occupancy",
            &[],
            "Stage spans currently held in the recent-span ring.",
            registry.spans.occupancy_handle(),
        );
        let _ = registry.adopt_counter(
            "obs_events_dropped_total",
            &[],
            "Structured events evicted from the bounded event ring.",
            registry.events.dropped_handle(),
        );
        let _ = registry.adopt_gauge(
            "obs_event_ring_occupancy",
            &[],
            "Structured events currently held in the event ring.",
            registry.events.occupancy_handle(),
        );
        let _ = registry.adopt_counter(
            "obs_traces_dropped_total",
            &[],
            "Completed trace fragments dropped by tail-sampling or buffer eviction.",
            registry.tracer.traces_dropped(),
        );
        let _ = registry.adopt_counter(
            "obs_traces_kept_total",
            &[],
            "Completed trace fragments the tail sampler kept.",
            registry.tracer.traces_kept(),
        );
        let _ = registry.adopt_gauge(
            "obs_trace_buffer_spans",
            &[],
            "Spans currently held in the kept trace buffer.",
            registry.tracer.buffer_spans(),
        );
        registry
    }

    /// The process-wide distributed tracer (id minting, span recording
    /// and the tail-sampled trace buffer).
    #[must_use]
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Get-or-register under `name` + `labels`; `existing` is adopted
    /// only if the series is new. Panics on a kind clash — that is a
    /// programming error (two call sites disagree about what a name
    /// means), not an operational condition.
    fn adopt(&self, name: &str, labels: &[(&str, &str)], help: &str, existing: Handle) -> Handle {
        // Registrations and renders keep the family map valid at every
        // point a panic could unwind from, so a poisoned lock is safe
        // to recover instead of cascading through the fleet.
        let mut families = self
            .families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            kind: existing.kind(),
            help: help.to_owned(),
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            existing.kind(),
            "metric {name} registered as both {} and {}",
            family.kind,
            existing.kind()
        );
        family
            .series
            .entry(sorted_labels(labels))
            .or_insert(existing)
            .clone()
    }

    /// A label-less counter (created on first call, shared after).
    #[must_use]
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// A labeled counter.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        self.adopt_counter(name, labels, help, Arc::new(Counter::new()))
    }

    /// Registers a caller-owned counter (e.g. one a backend already
    /// increments) so it shows up in this registry's exposition. If
    /// the series already exists the registry's handle wins.
    #[must_use]
    pub fn adopt_counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        counter: Arc<Counter>,
    ) -> Arc<Counter> {
        // `adopt` asserts the kinds agree, so the non-Counter arm is
        // unreachable; the caller's handle is a sound panic-free fallback.
        let fallback = Arc::clone(&counter);
        match self.adopt(name, labels, help, Handle::Counter(counter)) {
            Handle::Counter(c) => c,
            _ => fallback,
        }
    }

    /// A label-less gauge.
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// A labeled gauge.
    #[must_use]
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        self.adopt_gauge(name, labels, help, Arc::new(Gauge::new()))
    }

    /// Registers a caller-owned gauge into this registry.
    #[must_use]
    pub fn adopt_gauge(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        gauge: Arc<Gauge>,
    ) -> Arc<Gauge> {
        let fallback = Arc::clone(&gauge);
        match self.adopt(name, labels, help, Handle::Gauge(gauge)) {
            Handle::Gauge(g) => g,
            _ => fallback,
        }
    }

    /// A label-less histogram.
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Log2Histogram> {
        self.histogram_with(name, &[], help)
    }

    /// A labeled histogram.
    #[must_use]
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<Log2Histogram> {
        self.adopt_histogram(name, labels, help, Arc::new(Log2Histogram::new()))
    }

    /// Registers a caller-owned histogram into this registry.
    #[must_use]
    pub fn adopt_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        histogram: Arc<Log2Histogram>,
    ) -> Arc<Log2Histogram> {
        let fallback = Arc::clone(&histogram);
        match self.adopt(name, labels, help, Handle::Histogram(histogram)) {
            Handle::Histogram(h) => h,
            _ => fallback,
        }
    }

    /// A named stage timer: spans entered on it record wall time into
    /// `metric{stage="..."}` and the recent-span ring.
    #[must_use]
    pub fn stage(&self, metric: &str, stage: &'static str) -> Stage {
        let hist = self.histogram_with(
            metric,
            &[("stage", stage)],
            "Stage wall time in microseconds.",
        );
        Stage::new(stage, hist, Arc::clone(&self.spans), self.epoch)
    }

    /// The most recent spans (oldest first), up to the ring capacity.
    #[must_use]
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        self.spans.recent()
    }

    /// Total spans ever recorded (including ones evicted from the ring).
    #[must_use]
    pub fn spans_recorded(&self) -> u64 {
        self.spans.total()
    }

    /// Records a structured event (counted per level; `Warn`/`Error`
    /// echo to stderr unless muted).
    pub fn event(&self, level: Level, message: &str, fields: &[(&str, &str)]) {
        self.events.record(level, message, fields);
    }

    /// The most recent events (oldest first), up to the ring capacity.
    #[must_use]
    pub fn recent_events(&self) -> Vec<Event> {
        self.events.recent()
    }

    /// Silences the stderr echo of `Warn`/`Error` events (tests).
    pub fn mute_event_echo(&self) {
        self.events.set_echo(false);
    }

    /// Renders the registry as Prometheus text exposition (format
    /// 0.0.4). Families sort by name, series by label pairs, labels by
    /// key — the output is byte-stable for fixed metric values.
    #[must_use]
    pub fn render(&self) -> String {
        let families = self
            .families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        for (name, family) in families.iter() {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.kind);
            for (labels, handle) in &family.series {
                match handle {
                    Handle::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, &[]), c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, &[]), g.get());
                    }
                    Handle::Histogram(h) => render_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Log2Histogram) {
    for (le, cumulative) in h.cumulative_buckets() {
        let le_text = if le == u64::MAX {
            "+Inf".to_owned()
        } else {
            le.to_string()
        };
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            render_labels(labels, &[("le", &le_text)])
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        render_labels(labels, &[("le", "+Inf")]),
        h.count()
    );
    let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels, &[]), h.sum());
    let _ = writeln!(
        out,
        "{name}_count{} {}",
        render_labels(labels, &[]),
        h.count()
    );
}

/// Renders `{k="v",...}` from sorted pairs plus trailing extras (the
/// histogram `le` label, appended last like Prometheus clients do).
/// Empty input renders as nothing.
fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    format!("{{{}}}", parts.join(","))
}

/// Escapes a label value per the exposition format.
pub(crate) fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("x_total", "a thing");
        let b = r.counter("x_total", "ignored duplicate help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = r.counter_with("x_total", &[("shard", "1")], "a thing");
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_clash_panics() {
        let r = Registry::new();
        let _c = r.counter("dual", "first");
        let _g = r.gauge("dual", "second");
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter_with("zz_total", &[("b", "2"), ("a", "1")], "late")
            .inc();
        r.gauge("aa_depth", "early").set(-3);
        let h = r.histogram("mm_us", "mid");
        h.record(3);
        let text = r.render();
        let text2 = r.render();
        assert_eq!(text, text2, "rendering must be deterministic");
        let aa = text.find("aa_depth").unwrap();
        let mm = text.find("# TYPE mm_us").unwrap();
        let zz = text.find("zz_total").unwrap();
        assert!(aa < mm && mm < zz, "families sort by name");
        assert!(text.contains("aa_depth -3"));
        // Labels sort by key even when registered out of order.
        assert!(text.contains("zz_total{a=\"1\",b=\"2\"} 1"));
        assert!(text.contains("mm_us_bucket{le=\"4\"} 1"));
        assert!(text.contains("mm_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mm_us_sum 3"));
        assert!(text.contains("mm_us_count 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("esc_total", &[("err", "a\"b\\c\nd")], "")
            .inc();
        let text = r.render();
        assert!(text.contains("esc_total{err=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
