//! Property tests for the trace stitcher: for an arbitrary span tree
//! scattered across arbitrary per-node fragments arriving in arbitrary
//! order, `stitch` must return a well-formed tree — one root, parents
//! before children, child intervals nested in their parents — and must
//! not care about arrival order at all. Dropped fragments (a node's
//! originating spans sampled away) must be accounted as orphans, never
//! silently absorbed.

use ncl_obs::trace::self_time_us;
use ncl_obs::{stitch, NodeFragment, StitchedTrace, TraceSpanRecord};
use proptest::collection::vec;
use proptest::prelude::*;

const TRACE_ID: u128 = 0xABC0_0001;

/// Raw material for one span: (parent pick, start, duration, fragment
/// pick, arrival-order key). Span ids and parents derive from the
/// position: span `i` gets id `i + 1` and a parent among `1..=i`, so
/// the tree is connected by construction.
type SpanSeed = (u64, u64, u64, u64, u64);

fn seeds() -> impl Strategy<Value = Vec<SpanSeed>> {
    vec(
        (
            any::<u64>(),
            0u64..50_000,
            0u64..20_000,
            0u64..4,
            any::<u64>(),
        ),
        2..24,
    )
}

/// Expands seeds into per-node fragments, arrival-ordered by each
/// fragment's smallest arrival key.
fn build_fragments(seeds: &[SpanSeed]) -> Vec<NodeFragment> {
    let mut groups: Vec<(u64, Vec<TraceSpanRecord>)> =
        (0..4).map(|_| (u64::MAX, Vec::new())).collect();
    for (i, &(parent_pick, start_us, duration_us, frag_pick, key)) in seeds.iter().enumerate() {
        let parent = if i == 0 {
            None
        } else {
            Some(parent_pick % i as u64 + 1)
        };
        let group = &mut groups[(frag_pick % 4) as usize];
        group.0 = group.0.min(key);
        group.1.push(TraceSpanRecord {
            trace_id: TRACE_ID,
            span_id: i as u64 + 1,
            parent,
            stage: "stage".to_owned(),
            start_us,
            duration_us,
            links: Vec::new(),
        });
    }
    let mut fragments: Vec<(u64, usize, NodeFragment)> = groups
        .into_iter()
        .enumerate()
        .filter(|(_, (_, spans))| !spans.is_empty())
        .map(|(node, (key, spans))| {
            (
                key,
                node,
                NodeFragment {
                    node: format!("node-{node}"),
                    trace_id: TRACE_ID,
                    spans,
                },
            )
        })
        .collect();
    fragments.sort_by_key(|&(key, node, _)| (key, node));
    fragments.into_iter().map(|(_, _, f)| f).collect()
}

/// Asserts the structural invariants of one stitched trace.
fn assert_well_formed(trace: &StitchedTrace) -> Result<(), proptest::test_runner::TestCaseError> {
    let root = trace.spans.first().expect("stitched trace has spans");
    prop_assert_eq!(root.span_id, trace.root);
    prop_assert!(root.parent.is_none(), "root is parentless");
    prop_assert_eq!(root.start_us, 0, "root starts the unified timeline");
    prop_assert_eq!(root.depth, 0);
    prop_assert_eq!(trace.duration_us, root.duration_us);
    prop_assert_eq!(
        trace.spans.iter().filter(|s| s.parent.is_none()).count(),
        1,
        "exactly one root"
    );
    for (i, span) in trace.spans.iter().enumerate().skip(1) {
        let parent_id = span.parent.expect("non-root spans have parents");
        let parent_pos = trace.spans[..i].iter().position(|s| s.span_id == parent_id);
        prop_assert!(
            parent_pos.is_some(),
            "parent {} does not precede span {}",
            parent_id,
            span.span_id
        );
        let parent = &trace.spans[parent_pos.unwrap_or(0)];
        prop_assert_eq!(span.depth, parent.depth + 1, "depth is parent depth + 1");
        prop_assert!(
            span.start_us >= parent.start_us
                && span.start_us + span.duration_us <= parent.start_us + parent.duration_us,
            "child [{}, {}] escapes parent [{}, {}]",
            span.start_us,
            span.start_us + span.duration_us,
            parent.start_us,
            parent.start_us + parent.duration_us
        );
        prop_assert!(
            self_time_us(trace, span.span_id) <= span.duration_us,
            "self time bounded by wall time"
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn stitched_trees_are_well_formed_for_any_arrival_order(seeds in seeds()) {
        let fragments = build_fragments(&seeds);
        let stitched = stitch(&fragments);
        // The root's fragment is present, so the trace must survive,
        // complete: every span's parent chain reaches the root.
        prop_assert_eq!(stitched.len(), 1, "one trace id, one stitched trace");
        let trace = &stitched[0];
        prop_assert_eq!(trace.trace_id, TRACE_ID);
        prop_assert_eq!(trace.orphan_spans, 0, "a connected tree has no orphans");
        prop_assert_eq!(trace.spans.len(), seeds.len(), "every span emitted");
        assert_well_formed(trace)?;

        // Arrival order is a presentation detail: the canonical
        // (node-ordered) arrival must stitch to the identical result.
        let mut canonical = fragments.clone();
        canonical.sort_by(|a, b| a.node.cmp(&b.node));
        prop_assert_eq!(&stitch(&canonical), &stitched, "stitch is arrival-order invariant");
    }

    #[test]
    fn dropped_fragments_surface_as_orphans_not_phantom_spans(seeds in seeds()) {
        let fragments = build_fragments(&seeds);
        // Drop the last-arriving fragment. If it held the root the
        // whole trace must vanish; otherwise the survivors' unparented
        // subtrees are counted as orphans, and emitted + orphaned
        // always accounts for every surviving input span.
        let dropped = fragments.last().cloned().expect("at least one fragment");
        let kept: Vec<NodeFragment> = fragments[..fragments.len() - 1].to_vec();
        let surviving: usize = kept.iter().map(|f| f.spans.len()).sum();
        let stitched = stitch(&kept);
        let root_dropped = dropped.spans.iter().any(|s| s.parent.is_none());
        if root_dropped {
            prop_assert!(stitched.is_empty(), "a rootless trace is omitted entirely");
        } else {
            prop_assert_eq!(stitched.len(), 1);
            let trace = &stitched[0];
            prop_assert_eq!(
                trace.spans.len() + trace.orphan_spans,
                surviving,
                "every surviving span is emitted or counted as an orphan"
            );
            assert_well_formed(trace)?;
        }
    }
}
