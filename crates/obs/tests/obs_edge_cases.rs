//! Edge-case coverage for the observability layer: empty-histogram
//! quantiles, max-bucket overflow, concurrent exactness, and
//! exposition determinism.

use std::sync::Arc;

use ncl_obs::{exposition, Level, Log2Histogram, Registry};

#[test]
fn empty_histogram_quantiles_are_all_zero() {
    let h = Log2Histogram::new();
    for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0, "q={q}");
    }
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.max(), 0);
}

#[test]
fn quantile_handles_out_of_range_q() {
    let h = Log2Histogram::new();
    h.record(10);
    assert_eq!(h.quantile(-1.0), 16);
    assert_eq!(h.quantile(2.0), 16);
}

#[test]
fn max_bucket_overflow_never_under_reports() {
    let h = Log2Histogram::new();
    // Values past the second-to-last bucket's bound all land in the
    // open last bucket, whose reported upper bound is u64::MAX.
    for v in [1u64 << 62, (1u64 << 63) + 1, u64::MAX - 1, u64::MAX] {
        h.record(v);
    }
    assert_eq!(h.count(), 4);
    assert_eq!(h.max(), u64::MAX);
    assert!(h.quantile(1.0) >= u64::MAX - 1);
    // quantile(0.25) is the first recorded value's bucket bound.
    assert_eq!(h.quantile(0.25), 1u64 << 62);
}

#[test]
fn concurrent_increments_from_n_threads_sum_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("conc_total", "Concurrency test counter.");
    let hist = registry.histogram("conc_us", "Concurrency test histogram.");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(t as u64 + i % 7 + 1);
                }
            });
        }
    });
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), n);
    assert_eq!(hist.count(), n);
    // Cumulative buckets must also account for every observation.
    assert_eq!(hist.cumulative_buckets().last().unwrap().1, n);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..PER_THREAD).map(|i| t + i % 7 + 1).sum::<u64>())
        .sum();
    assert_eq!(hist.sum(), expected_sum);
}

#[test]
fn exposition_rendering_is_deterministic_and_sorted() {
    let build = || {
        let r = Registry::new();
        r.mute_event_echo();
        // Register in shuffled order; render must not care.
        r.counter_with("z_total", &[("zz", "1"), ("aa", "2")], "Z.")
            .add(4);
        r.gauge("a_depth", "A.").set(7);
        let h = r.histogram_with("m_us", &[("stage", "x")], "M.");
        for v in [1, 10, 100, 1000] {
            h.record(v);
        }
        r.event(Level::Warn, "w", &[("k", "v")]);
        r.render()
    };
    let first = build();
    let second = build();
    assert_eq!(
        first, second,
        "two identically-built registries must render identically"
    );
    // Families appear in name order, labels in key order.
    let a = first.find("# TYPE a_depth gauge").unwrap();
    let m = first.find("# TYPE m_us histogram").unwrap();
    let o = first.find("# TYPE obs_events_total counter").unwrap();
    let z = first.find("# TYPE z_total counter").unwrap();
    assert!(a < m && m < o && o < z);
    assert!(first.contains("z_total{aa=\"2\",zz=\"1\"} 4"));
    assert!(first.contains("obs_events_total{level=\"warn\"} 1"));
    assert!(first.contains("m_us_bucket{stage=\"x\",le=\"1\"} 1"));
    assert!(first.contains("m_us_bucket{stage=\"x\",le=\"+Inf\"} 4"));
    assert!(first.contains("m_us_sum{stage=\"x\"} 1111"));
    assert!(first.contains("m_us_count{stage=\"x\"} 4"));
}

#[test]
fn relabeled_merge_of_identical_replicas_is_stable() {
    let make = || {
        let r = Registry::new();
        r.counter("serve_requests_ok_total", "OK.").add(3);
        r.histogram("serve_latency_us", "Latency.").record(50);
        r.render()
    };
    let sections: Vec<String> = (0..3)
        .map(|i| exposition::relabel(&make(), "replica", &i.to_string()))
        .collect();
    let merged = exposition::merge(&sections);
    let again = exposition::merge(&sections);
    assert_eq!(merged, again);
    for i in 0..3 {
        assert!(merged.contains(&format!("serve_requests_ok_total{{replica=\"{i}\"}} 3")));
        assert!(merged.contains(&format!("serve_latency_us_count{{replica=\"{i}\"}} 1")));
    }
    assert_eq!(
        merged.matches("# TYPE serve_latency_us histogram").count(),
        1
    );
}
