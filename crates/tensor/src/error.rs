//! Error type shared by all fallible tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned by shape-checked tensor operations.
///
/// # Example
///
/// ```
/// use ncl_tensor::{Matrix, ops, TensorError};
///
/// let a = Matrix::zeros(2, 3);
/// let x = vec![0.0; 4]; // wrong length: gemv needs 3
/// let mut y = vec![0.0; 2];
/// let err = ops::gemv(&a, &x, &mut y).unwrap_err();
/// assert!(matches!(err, TensorError::ShapeMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape the operation expected, in free-form `rows x cols` notation.
        expected: String,
        /// Shape it actually received.
        actual: String,
    },
    /// A dimension argument was zero where a positive size is required.
    ZeroDimension {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                op,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "{op}: shape mismatch (expected {expected}, got {actual})"
                )
            }
            TensorError::ZeroDimension { op } => {
                write!(f, "{op}: zero-sized dimension is not allowed")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let e = TensorError::ShapeMismatch {
            op: "gemv",
            expected: "2x3".into(),
            actual: "2x4".into(),
        };
        let s = e.to_string();
        assert!(s.contains("gemv"));
        assert!(s.contains("2x3"));
        let z = TensorError::ZeroDimension { op: "matrix::new" };
        assert!(z.to_string().contains("matrix::new"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
