//! Deterministic pseudo-random number generation.
//!
//! Experiments in this workspace must be exactly reproducible from a seed on
//! any platform, so we pin the generator to a self-contained implementation
//! of **xoshiro256++** (Blackman & Vigna) seeded through **SplitMix64**
//! rather than depending on the default generator of an external crate whose
//! stream may change between versions.

use serde::{Deserialize, Serialize};

/// Multiplicative constant of the SplitMix64 finalizer.
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Advances a SplitMix64 state and returns the next 64-bit output.
///
/// Used only for seeding [`Rng`]; exposed for testing against the reference
/// output stream of the public-domain implementation.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use ncl_tensor::Rng;
///
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second Box-Muller variate, if one is pending.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64, as recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// parallel worker or dataset shard its own stream.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64() ^ stream.wrapping_mul(SPLITMIX_GAMMA);
        Rng::seed_from_u64(base)
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        self.uniform_f64() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo <= hi, "uniform_range: lo must not exceed hi");
        lo + (hi - lo) * self.uniform_f32()
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    ///
    /// Uses Lemire-style rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below requires n > 0");
        // Rejection sampling over the widening multiply keeps the
        // distribution exactly uniform for every n.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Standard normal variate via the Box-Muller transform.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Draw u1 in (0,1] so the log is finite.
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation, as `f32`.
    #[inline]
    pub fn normal_f32(&mut self, mean: f32, std_dev: f32) -> f32 {
        (mean as f64 + std_dev as f64 * self.normal()) as f32
    }

    /// Poisson-distributed count with the given rate `lambda`.
    ///
    /// Uses Knuth's product method, which is exact and fast for the small
    /// rates (λ ≲ 10) that appear in spike encoding.
    pub fn poisson(&mut self, lambda: f64) -> u32 {
        if lambda <= 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= self.uniform_f64();
            if p <= l {
                return k;
            }
            k += 1;
            // Guard against pathological large lambda.
            if k > 10_000 {
                return k;
            }
        }
    }

    /// Fisher-Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (uniform, without
    /// replacement). Returns fewer than `k` only when `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates: only the first k positions need settling.
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs of the public-domain splitmix64.c for seed 0.
        let mut s = 0u64;
        let expect = [
            0xE220_A839_7B1D_CDAF_u64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
        ];
        for e in expect {
            assert_eq!(splitmix64(&mut s), e);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn uniform_bounds_and_moments() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn below_zero_panics() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = rng.below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 40_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "var was {var}");
    }

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut rng = Rng::seed_from_u64(13);
        let lambda = 3.5;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.poisson(lambda) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean was {mean}");
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-1.0), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // A 50-element shuffle leaving everything fixed is astronomically
        // unlikely.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Rng::seed_from_u64(19);
        let idx = rng.sample_indices(100, 10);
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(idx.iter().all(|&i| i < 100));
        // k > n clamps.
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut parent = Rng::seed_from_u64(21);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }
}
