//! Minimal dense linear-algebra and RNG substrate for the Replay4NCL stack.
//!
//! The Replay4NCL reproduction deliberately avoids heavyweight tensor
//! frameworks: spiking networks of the size used by the paper
//! (700‑200‑100‑50‑20 neurons) only need dense matrix/vector products,
//! event-driven accumulation, a few initializers, and a deterministic RNG.
//! This crate provides exactly that, with `f32` storage throughout.
//!
//! # Example
//!
//! ```
//! use ncl_tensor::{Matrix, Rng, ops};
//!
//! # fn main() -> Result<(), ncl_tensor::TensorError> {
//! let mut rng = Rng::seed_from_u64(7);
//! let w = Matrix::xavier_uniform(4, 3, &mut rng);
//! let x = vec![1.0, 0.5, -0.25];
//! let mut y = vec![0.0; 4];
//! ops::gemv(&w, &x, &mut y)?;
//! assert_eq!(y.len(), 4);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;

pub use error::TensorError;
pub use matrix::Matrix;
pub use rng::Rng;
