//! Small descriptive-statistics helpers used across the workspace for
//! accuracy accounting, spike-rate summaries and report generation.

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance; `0.0` for slices shorter than 2.
#[must_use]
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Minimum value; `None` for an empty slice (NaNs are ignored).
#[must_use]
pub fn min(xs: &[f32]) -> Option<f32> {
    xs.iter().copied().filter(|v| !v.is_nan()).reduce(f32::min)
}

/// Maximum value; `None` for an empty slice (NaNs are ignored).
#[must_use]
pub fn max(xs: &[f32]) -> Option<f32> {
    xs.iter().copied().filter(|v| !v.is_nan()).reduce(f32::max)
}

/// Exponential moving average over a series with smoothing factor
/// `alpha` in `(0, 1]`; returns the smoothed series.
#[must_use]
pub fn ema(xs: &[f32], alpha: f32) -> Vec<f32> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = None;
    for &x in xs {
        let next = match acc {
            None => x,
            Some(prev) => alpha * x + (1.0 - alpha) * prev,
        };
        out.push(next);
        acc = Some(next);
    }
    out
}

/// Total-variation roughness of a curve: mean absolute successive
/// difference. Used to quantify the paper's "smoother learning curve"
/// claim (Fig. 13) numerically.
#[must_use]
pub fn roughness(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let tv: f32 = xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    tv / (xs.len() - 1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
        assert!((std_dev(&xs) - 1.25f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_and_short_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(roughness(&[1.0]), 0.0);
    }

    #[test]
    fn min_max_skip_nan() {
        let xs = [f32::NAN, 2.0, -1.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(2.0));
    }

    #[test]
    fn ema_smooths_toward_signal() {
        let xs = [0.0, 1.0, 1.0, 1.0];
        let s = ema(&xs, 0.5);
        assert_eq!(s[0], 0.0);
        assert!((s[1] - 0.5).abs() < 1e-6);
        assert!(s[3] > s[1] && s[3] < 1.0);
        assert!(ema(&[], 0.3).is_empty());
    }

    #[test]
    fn roughness_orders_curves() {
        let smooth = [0.0, 0.25, 0.5, 0.75, 1.0];
        let jagged = [0.0, 1.0, 0.0, 1.0, 0.0];
        assert!(roughness(&jagged) > roughness(&smooth));
        assert!((roughness(&smooth) - 0.25).abs() < 1e-6);
    }
}
