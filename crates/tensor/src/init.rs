//! Weight-initialization schemes used by the SNN layers.
//!
//! SNNs trained with surrogate gradients are sensitive to the initial scale
//! of input currents: too small and no neuron ever crosses threshold (dead
//! network), too large and everything saturates. The standard Xavier/He
//! schemes keep the per-neuron input current near unit variance, which is a
//! good operating point for threshold-1 LIF neurons.

use crate::rng::Rng;

/// Bound of the Xavier/Glorot uniform distribution for a layer with the
/// given fan-in and fan-out: `sqrt(6 / (fan_in + fan_out))`.
///
/// # Example
///
/// ```
/// let b = ncl_tensor::init::xavier_bound(100, 50);
/// assert!((b - (6.0f32 / 150.0).sqrt()).abs() < 1e-6);
/// ```
#[must_use]
pub fn xavier_bound(fan_in: usize, fan_out: usize) -> f32 {
    let denom = (fan_in + fan_out).max(1) as f32;
    (6.0 / denom).sqrt()
}

/// Standard deviation of the He/Kaiming normal distribution:
/// `sqrt(2 / fan_in)`.
#[must_use]
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in.max(1) as f32).sqrt()
}

/// Fills a slice with uniform values in `[-bound, bound]`.
pub fn fill_uniform(slice: &mut [f32], bound: f32, rng: &mut Rng) {
    for v in slice {
        *v = rng.uniform_range(-bound, bound);
    }
}

/// Fills a slice with normal values of the given standard deviation.
pub fn fill_normal(slice: &mut [f32], std_dev: f32, rng: &mut Rng) {
    for v in slice {
        *v = rng.normal_f32(0.0, std_dev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bound_formula() {
        assert!((xavier_bound(700, 200) - (6.0f32 / 900.0).sqrt()).abs() < 1e-7);
        // Degenerate sizes do not divide by zero.
        assert!(xavier_bound(0, 0).is_finite());
    }

    #[test]
    fn he_std_formula() {
        assert!((he_std(200) - (0.01f32).sqrt()).abs() < 1e-7);
        assert!(he_std(0).is_finite());
    }

    #[test]
    fn fill_uniform_respects_bound() {
        let mut rng = Rng::seed_from_u64(3);
        let mut buf = vec![0.0f32; 1000];
        fill_uniform(&mut buf, 0.25, &mut rng);
        assert!(buf.iter().all(|v| v.abs() <= 0.25));
        // Not all identical.
        assert!(buf.iter().any(|&v| v != buf[0]));
    }

    #[test]
    fn fill_normal_has_roughly_right_std() {
        let mut rng = Rng::seed_from_u64(5);
        let mut buf = vec![0.0f32; 20_000];
        fill_normal(&mut buf, 0.5, &mut rng);
        let mean: f32 = buf.iter().sum::<f32>() / buf.len() as f32;
        let var: f32 = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / buf.len() as f32;
        assert!(mean.abs() < 0.02);
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }
}
