//! Shape-checked dense kernels: matrix-vector products, outer-product
//! accumulation, and elementwise helpers.
//!
//! These are the only kernels the SNN training loop needs. They are written
//! as unrolled slice loops (`chunks_exact` over [`LANES`]-wide blocks) so
//! the compiler autovectorizes them without bounds checks; on the network
//! sizes of the paper (≤ 700 wide) this is within a small factor of a tuned
//! BLAS and keeps the crate dependency-free.
//!
//! Determinism note: every elementwise kernel (`axpy`, [`rows_add`],
//! [`rows_add_masked`], `gemv_t`) performs independent per-element updates,
//! so unrolling does not change results. The dot-product reduction inside
//! [`gemv`]/[`gemv_acc`] uses a fixed [`LANES`]-accumulator tree, which is a
//! *different* (but still fully deterministic) float-summation order than a
//! strictly sequential loop — the order is part of the kernel contract and
//! identical on every call, platform and thread count.

use crate::error::TensorError;
use crate::matrix::Matrix;

/// Unroll width of the vectorized kernels (f32 lanes per block).
const LANES: usize = 8;

/// Dot product with a fixed 8-lane accumulator tree (the vectorizable
/// reduction shared by [`gemv`] and [`gemv_acc`]).
#[inline]
fn dot_unrolled(row: &[f32], x: &[f32]) -> f32 {
    debug_assert_eq!(row.len(), x.len());
    let split = row.len() - row.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for (rc, xc) in row[..split]
        .chunks_exact(LANES)
        .zip(x[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] += rc[l] * xc[l];
        }
    }
    let mut tail = 0.0f32;
    for (w, xv) in row[split..].iter().zip(x[split..].iter()) {
        tail += w * xv;
    }
    let a = (acc[0] + acc[4]) + (acc[2] + acc[6]);
    let b = (acc[1] + acc[5]) + (acc[3] + acc[7]);
    (a + b) + tail
}

/// `y += alpha · x`, unrolled; the elementwise core of [`axpy`],
/// [`rows_add`], [`rows_add_masked`] and `gemv_t` (identical rounding in
/// all of them: one `mul` + one `add` per element).
#[inline]
fn add_scaled(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let split = y.len() - y.len() % LANES;
    for (yc, xc) in y[..split]
        .chunks_exact_mut(LANES)
        .zip(x[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            yc[l] += alpha * xc[l];
        }
    }
    for (yv, xv) in y[split..].iter_mut().zip(x[split..].iter()) {
        *yv += alpha * xv;
    }
}

/// `y = A·x` (matrix-vector product).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != A.cols()` or
/// `y.len() != A.rows()`.
///
/// # Example
///
/// ```
/// use ncl_tensor::{Matrix, ops};
/// # fn main() -> Result<(), ncl_tensor::TensorError> {
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// let mut y = vec![0.0; 2];
/// ops::gemv(&a, &[1.0, 1.0], &mut y)?;
/// assert_eq!(y, vec![3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
pub fn gemv(a: &Matrix, x: &[f32], y: &mut [f32]) -> Result<(), TensorError> {
    check_gemv("gemv", a, x.len(), y.len())?;
    for (r, out) in y.iter_mut().enumerate() {
        *out = dot_unrolled(a.row(r), x);
    }
    Ok(())
}

/// `y += A·x` (accumulating matrix-vector product).
///
/// # Errors
///
/// Same shape requirements as [`gemv`].
pub fn gemv_acc(a: &Matrix, x: &[f32], y: &mut [f32]) -> Result<(), TensorError> {
    check_gemv("gemv_acc", a, x.len(), y.len())?;
    for (r, out) in y.iter_mut().enumerate() {
        *out += dot_unrolled(a.row(r), x);
    }
    Ok(())
}

/// `y = Aᵀ·x` (transposed matrix-vector product) without materializing the
/// transpose. `x.len()` must equal `A.rows()`, `y.len()` must equal
/// `A.cols()`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on any dimension mismatch.
pub fn gemv_t(a: &Matrix, x: &[f32], y: &mut [f32]) -> Result<(), TensorError> {
    if x.len() != a.rows() || y.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "gemv_t",
            expected: format!("x: {}, y: {}", a.rows(), a.cols()),
            actual: format!("x: {}, y: {}", x.len(), y.len()),
        });
    }
    y.iter_mut().for_each(|v| *v = 0.0);
    for (r, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue; // rows gated by zero activations contribute nothing
        }
        add_scaled(xv, a.row(r), y);
    }
    Ok(())
}

/// Accumulates a scaled outer product: `A += alpha · d·xᵀ`, where `d` has
/// `A.rows()` elements and `x` has `A.cols()` elements.
///
/// This is the weight-gradient kernel: `dW += delta ⊗ input`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on any dimension mismatch.
pub fn outer_acc(a: &mut Matrix, d: &[f32], x: &[f32], alpha: f32) -> Result<(), TensorError> {
    if d.len() != a.rows() || x.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "outer_acc",
            expected: format!("d: {}, x: {}", a.rows(), a.cols()),
            actual: format!("d: {}, x: {}", d.len(), x.len()),
        });
    }
    for (r, &dv) in d.iter().enumerate() {
        let s = alpha * dv;
        if s == 0.0 {
            continue;
        }
        add_scaled(s, x, a.row_mut(r));
    }
    Ok(())
}

/// Sparse variant of [`outer_acc`] where the input is a set of active column
/// indices (a spike vector): `A[:, j] += alpha · d` for every `j` in
/// `active`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `d.len() != A.rows()` or any
/// index in `active` is out of range.
pub fn outer_acc_sparse(
    a: &mut Matrix,
    d: &[f32],
    active: &[usize],
    alpha: f32,
) -> Result<(), TensorError> {
    if d.len() != a.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "outer_acc_sparse",
            expected: format!("d: {}", a.rows()),
            actual: format!("d: {}", d.len()),
        });
    }
    let cols = a.cols();
    if let Some(&bad) = active.iter().find(|&&j| j >= cols) {
        return Err(TensorError::ShapeMismatch {
            op: "outer_acc_sparse",
            expected: format!("column < {cols}"),
            actual: format!("column {bad}"),
        });
    }
    for (r, &dv) in d.iter().enumerate() {
        let s = alpha * dv;
        if s == 0.0 {
            continue;
        }
        let row = a.row_mut(r);
        for &j in active {
            row[j] += s;
        }
    }
    Ok(())
}

/// Adds `alpha · x` to each listed row of `A`: `A[i, :] += alpha·x` for
/// every `i` in `rows`.
///
/// This is the event-driven weight-gradient kernel for input-major weight
/// matrices (`pre x post`): each active pre-synaptic neuron contributes the
/// post-synaptic delta to its own weight row.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != A.cols()` or any
/// row index is out of range.
pub fn rows_add(a: &mut Matrix, rows: &[usize], x: &[f32], alpha: f32) -> Result<(), TensorError> {
    if x.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "rows_add",
            expected: format!("x: {}", a.cols()),
            actual: format!("x: {}", x.len()),
        });
    }
    let nrows = a.rows();
    if let Some(&bad) = rows.iter().find(|&&r| r >= nrows) {
        return Err(TensorError::ShapeMismatch {
            op: "rows_add",
            expected: format!("row < {nrows}"),
            actual: format!("row {bad}"),
        });
    }
    for &r in rows {
        add_scaled(alpha, x, a.row_mut(r));
    }
    Ok(())
}

/// Bitmask-driven variant of [`rows_add`]: `A[r, :] += alpha·x` for every
/// set bit `r` of `mask` (a little-endian packed row set, e.g. one
/// timestep's `SpikeRaster::step_words`). Rows are visited in ascending
/// bit order — exactly the order [`rows_add`] sees from a sorted index
/// list — so the two kernels are bit-identical on equivalent inputs; this
/// one just skips materializing the index list.
///
/// Trailing mask bits beyond `A.rows()` are rejected, not ignored.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != A.cols()` or any
/// set bit indexes a row `>= A.rows()`.
pub fn rows_add_masked(
    a: &mut Matrix,
    mask: &[u64],
    x: &[f32],
    alpha: f32,
) -> Result<(), TensorError> {
    if x.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "rows_add_masked",
            expected: format!("x: {}", a.cols()),
            actual: format!("x: {}", x.len()),
        });
    }
    let nrows = a.rows();
    // Validate before mutating: the highest set bit must be a valid row.
    if let Some((wi, &word)) = mask.iter().enumerate().rev().find(|(_, w)| **w != 0) {
        let highest = wi * 64 + (63 - word.leading_zeros() as usize);
        if highest >= nrows {
            return Err(TensorError::ShapeMismatch {
                op: "rows_add_masked",
                expected: format!("row < {nrows}"),
                actual: format!("row {highest}"),
            });
        }
    }
    for (wi, &word) in mask.iter().enumerate() {
        let mut bits = word;
        let base = wi * 64;
        while bits != 0 {
            let r = base + bits.trailing_zeros() as usize;
            bits &= bits - 1; // clear lowest set bit
            add_scaled(alpha, x, a.row_mut(r));
        }
    }
    Ok(())
}

/// `y += alpha · x` (AXPY).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if lengths differ.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) -> Result<(), TensorError> {
    if x.len() != y.len() {
        return Err(TensorError::ShapeMismatch {
            op: "axpy",
            expected: format!("{}", y.len()),
            actual: format!("{}", x.len()),
        });
    }
    add_scaled(alpha, x, y);
    Ok(())
}

/// Dot product of two equal-length slices.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if lengths differ.
pub fn dot(x: &[f32], y: &[f32]) -> Result<f32, TensorError> {
    if x.len() != y.len() {
        return Err(TensorError::ShapeMismatch {
            op: "dot",
            expected: format!("{}", x.len()),
            actual: format!("{}", y.len()),
        });
    }
    Ok(x.iter().zip(y.iter()).map(|(a, b)| a * b).sum())
}

/// Numerically-stable softmax, written into `out`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if lengths differ, or
/// [`TensorError::ZeroDimension`] for empty input.
pub fn softmax(logits: &[f32], out: &mut [f32]) -> Result<(), TensorError> {
    if logits.is_empty() {
        return Err(TensorError::ZeroDimension { op: "softmax" });
    }
    if logits.len() != out.len() {
        return Err(TensorError::ShapeMismatch {
            op: "softmax",
            expected: format!("{}", logits.len()),
            actual: format!("{}", out.len()),
        });
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &l) in out.iter_mut().zip(logits.iter()) {
        let e = (l - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    out.iter_mut().for_each(|o| *o *= inv);
    Ok(())
}

/// Index of the maximum element (first occurrence on ties); `None` for empty
/// input.
#[must_use]
pub fn argmax(x: &[f32]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    Some(best)
}

fn check_gemv(op: &'static str, a: &Matrix, xlen: usize, ylen: usize) -> Result<(), TensorError> {
    if xlen != a.cols() || ylen != a.rows() {
        return Err(TensorError::ShapeMismatch {
            op,
            expected: format!("x: {}, y: {}", a.cols(), a.rows()),
            actual: format!("x: {xlen}, y: {ylen}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn gemv_known_values() {
        let a = sample_matrix();
        let mut y = vec![0.0; 2];
        gemv(&a, &[1.0, 0.0, -1.0], &mut y).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn gemv_acc_accumulates() {
        let a = sample_matrix();
        let mut y = vec![10.0, 20.0];
        gemv_acc(&a, &[1.0, 0.0, -1.0], &mut y).unwrap();
        assert_eq!(y, vec![8.0, 18.0]);
    }

    #[test]
    fn gemv_shape_errors() {
        let a = sample_matrix();
        let mut y = vec![0.0; 2];
        assert!(gemv(&a, &[1.0, 2.0], &mut y).is_err());
        let mut y3 = vec![0.0; 3];
        assert!(gemv(&a, &[1.0, 2.0, 3.0], &mut y3).is_err());
    }

    #[test]
    fn gemv_t_matches_explicit_transpose() {
        let a = sample_matrix();
        let x = [0.5, -1.5];
        let mut y = vec![0.0; 3];
        gemv_t(&a, &x, &mut y).unwrap();
        let t = a.transposed();
        let mut y2 = vec![0.0; 3];
        gemv(&t, &x, &mut y2).unwrap();
        for (u, v) in y.iter().zip(y2.iter()) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn outer_acc_known_values() {
        let mut a = Matrix::zeros(2, 3);
        outer_acc(&mut a, &[1.0, 2.0], &[1.0, 0.0, -1.0], 0.5).unwrap();
        assert_eq!(a.row(0), &[0.5, 0.0, -0.5]);
        assert_eq!(a.row(1), &[1.0, 0.0, -1.0]);
    }

    #[test]
    fn outer_acc_sparse_matches_dense() {
        let mut dense = Matrix::zeros(3, 5);
        let mut sparse = Matrix::zeros(3, 5);
        let d = [1.0, -2.0, 0.5];
        let mut x = vec![0.0; 5];
        x[1] = 1.0;
        x[4] = 1.0;
        outer_acc(&mut dense, &d, &x, 2.0).unwrap();
        outer_acc_sparse(&mut sparse, &d, &[1, 4], 2.0).unwrap();
        assert_eq!(dense, sparse);
    }

    #[test]
    fn outer_acc_sparse_rejects_bad_index() {
        let mut a = Matrix::zeros(2, 3);
        assert!(outer_acc_sparse(&mut a, &[1.0, 1.0], &[3], 1.0).is_err());
    }

    #[test]
    fn rows_add_touches_only_listed_rows() {
        let mut a = Matrix::zeros(3, 2);
        rows_add(&mut a, &[0, 2], &[1.0, -1.0], 2.0).unwrap();
        assert_eq!(a.row(0), &[2.0, -2.0]);
        assert_eq!(a.row(1), &[0.0, 0.0]);
        assert_eq!(a.row(2), &[2.0, -2.0]);
        // Repeated rows accumulate twice.
        rows_add(&mut a, &[1, 1], &[1.0, 1.0], 1.0).unwrap();
        assert_eq!(a.row(1), &[2.0, 2.0]);
    }

    /// Packs sorted row indices into the little-endian word mask
    /// `rows_add_masked` consumes.
    fn pack_mask(rows: &[usize], words: usize) -> Vec<u64> {
        let mut mask = vec![0u64; words];
        for &r in rows {
            mask[r / 64] |= 1u64 << (r % 64);
        }
        mask
    }

    #[test]
    fn rows_add_masked_matches_rows_add_bitwise() {
        // Rows straddling word boundaries, irregular column count, and
        // non-trivial float values: the masked walk must reproduce the
        // gathered-index kernel exactly.
        let mut rng_state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let rows = 130usize;
        let cols = 11usize;
        let base = Matrix::from_fn(rows, cols, |_, _| next());
        let x: Vec<f32> = (0..cols).map(|_| next()).collect();
        let active = [0usize, 1, 63, 64, 65, 100, 127, 128, 129];

        let mut gathered = base.clone();
        rows_add(&mut gathered, &active, &x, 0.37).unwrap();
        let mut masked = base;
        rows_add_masked(&mut masked, &pack_mask(&active, 3), &x, 0.37).unwrap();
        assert_eq!(gathered, masked, "bit-identical across kernels");
    }

    #[test]
    fn rows_add_masked_empty_mask_is_noop() {
        let mut a = Matrix::filled(4, 2, 7.0);
        rows_add_masked(&mut a, &[0, 0], &[1.0, 1.0], 1.0).unwrap();
        rows_add_masked(&mut a, &[], &[1.0, 1.0], 1.0).unwrap();
        assert_eq!(a, Matrix::filled(4, 2, 7.0));
    }

    #[test]
    fn rows_add_masked_errors() {
        let mut a = Matrix::zeros(4, 2);
        // Wrong x width.
        assert!(rows_add_masked(&mut a, &[0b1], &[1.0], 1.0).is_err());
        // Set bit beyond the row count is rejected before any mutation.
        let before = a.clone();
        assert!(rows_add_masked(&mut a, &[0b1_0001], &[1.0, 1.0], 1.0).is_err());
        assert_eq!(a, before, "validation happens before mutation");
    }

    #[test]
    fn gemv_unrolled_matches_f64_reference() {
        // A length crossing several unroll blocks plus a ragged tail.
        let cols = 83;
        let a = Matrix::from_fn(3, cols, |r, c| ((r * cols + c) as f32).sin());
        let x: Vec<f32> = (0..cols).map(|c| ((c as f32) * 0.37).cos()).collect();
        let mut y = vec![0.0f32; 3];
        gemv(&a, &x, &mut y).unwrap();
        for (r, got) in y.iter().enumerate() {
            let want: f64 = a
                .row(r)
                .iter()
                .zip(x.iter())
                .map(|(w, xv)| f64::from(*w) * f64::from(*xv))
                .sum();
            assert!((f64::from(*got) - want).abs() < 1e-4, "row {r}");
        }
        // gemv_acc adds the same reduction on top.
        let mut y2 = vec![1.0f32; 3];
        gemv_acc(&a, &x, &mut y2).unwrap();
        for (acc, plain) in y2.iter().zip(y.iter()) {
            assert!((acc - plain - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn rows_add_errors() {
        let mut a = Matrix::zeros(2, 2);
        assert!(rows_add(&mut a, &[0], &[1.0], 1.0).is_err());
        assert!(rows_add(&mut a, &[5], &[1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn axpy_and_dot() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[3.0, 4.0], &mut y).unwrap();
        assert_eq!(y, vec![7.0, 10.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), 11.0);
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
        assert!(axpy(1.0, &[1.0], &mut y).is_err());
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let logits = [1000.0, 1001.0, 999.0];
        let mut out = [0.0; 3];
        softmax(&logits, &mut out).unwrap();
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(out.iter().all(|p| p.is_finite() && *p > 0.0));
        assert!(out[1] > out[0] && out[0] > out[2]);
    }

    #[test]
    fn softmax_errors() {
        let mut out = [0.0; 2];
        assert!(softmax(&[], &mut []).is_err());
        assert!(softmax(&[1.0, 2.0, 3.0], &mut out).is_err());
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[2.0, 2.0]), Some(0)); // first on ties
        assert_eq!(argmax(&[]), None);
    }
}
