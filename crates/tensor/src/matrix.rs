//! Row-major dense `f32` matrix.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::init;
use crate::rng::Rng;

/// A dense row-major matrix of `f32` values.
///
/// Rows are contiguous in memory, which makes `row(i)` a cheap slice view —
/// the access pattern used by the event-driven SNN forward pass
/// (accumulating weight rows of active pre-synaptic neurons).
///
/// # Example
///
/// ```
/// use ncl_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a generator function of `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                op: "Matrix::from_vec",
                expected: format!("{} elements", rows * cols),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Xavier/Glorot-uniform initialized matrix (see [`init::xavier_uniform`]).
    #[must_use]
    pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let bound = init::xavier_bound(cols, rows);
        Matrix::from_fn(rows, cols, |_, _| rng.uniform_range(-bound, bound))
    }

    /// He/Kaiming-normal initialized matrix (see [`init::he_normal`]).
    #[must_use]
    pub fn he_normal(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let std = init::he_std(cols);
        Matrix::from_fn(rows, cols, |_, _| rng.normal_f32(0.0, std))
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the underlying storage.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat row-major storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the transposed matrix (owned copy).
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Fills the matrix with zeros, reusing the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm (root of sum of squares).
    #[must_use]
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(3, 2, |r, c| (10 * r + c) as f32);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn set_and_row_mut() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        m.row_mut(1)[0] = -2.0;
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), -2.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn map_and_fill() {
        let mut m = Matrix::filled(2, 2, 2.0);
        m.map_inplace(|v| v * 3.0);
        assert_eq!(m.get(1, 1), 6.0);
        m.fill_zero();
        assert_eq!(m.frobenius_norm(), 0.0);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Rng::seed_from_u64(1);
        let m = Matrix::xavier_uniform(20, 30, &mut rng);
        let bound = crate::init::xavier_bound(30, 20);
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn default_is_empty() {
        let m = Matrix::default();
        assert!(m.is_empty());
        assert!(!format!("{m:?}").is_empty());
    }
}
