//! Property-based tests for the dense kernels and the RNG.

use ncl_tensor::{ops, Matrix, Rng};
use proptest::prelude::*;

/// Strategy: a matrix of bounded size with values in [-10, 10].
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized to fit"))
    })
}

fn vec_for(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #[test]
    fn gemv_is_linear(a in matrix_strategy(12), seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let x: Vec<f32> = (0..a.cols()).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let y: Vec<f32> = (0..a.cols()).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let sum: Vec<f32> = x.iter().zip(&y).map(|(u, v)| u + v).collect();

        let mut ax = vec![0.0; a.rows()];
        let mut ay = vec![0.0; a.rows()];
        let mut asum = vec![0.0; a.rows()];
        ops::gemv(&a, &x, &mut ax).unwrap();
        ops::gemv(&a, &y, &mut ay).unwrap();
        ops::gemv(&a, &sum, &mut asum).unwrap();
        for i in 0..a.rows() {
            prop_assert!((asum[i] - (ax[i] + ay[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn gemv_t_agrees_with_materialized_transpose(a in matrix_strategy(12)) {
        let x: Vec<f32> = (0..a.rows()).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut fast = vec![0.0; a.cols()];
        ops::gemv_t(&a, &x, &mut fast).unwrap();
        let t = a.transposed();
        let mut slow = vec![0.0; a.cols()];
        ops::gemv(&t, &x, &mut slow).unwrap();
        for (u, v) in fast.iter().zip(slow.iter()) {
            prop_assert!((u - v).abs() < 1e-3);
        }
    }

    #[test]
    fn double_transpose_is_identity(a in matrix_strategy(10)) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn softmax_is_a_distribution(logits in vec_for(8)) {
        let mut out = vec![0.0; logits.len()];
        ops::softmax(&logits, &mut out).unwrap();
        let sum: f32 = out.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(out.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn softmax_is_shift_invariant(logits in vec_for(6), shift in -50.0f32..50.0) {
        let shifted: Vec<f32> = logits.iter().map(|l| l + shift).collect();
        let mut a = vec![0.0; logits.len()];
        let mut b = vec![0.0; logits.len()];
        ops::softmax(&logits, &mut a).unwrap();
        ops::softmax(&shifted, &mut b).unwrap();
        for (u, v) in a.iter().zip(b.iter()) {
            prop_assert!((u - v).abs() < 1e-4);
        }
    }

    #[test]
    fn sparse_outer_matches_dense(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let d: Vec<f32> = (0..rows).map(|_| rng.uniform_range(-2.0, 2.0)).collect();
        let active: Vec<usize> =
            (0..cols).filter(|_| rng.bernoulli(0.4)).collect();
        let mut x = vec![0.0; cols];
        for &j in &active { x[j] = 1.0; }

        let mut dense = Matrix::zeros(rows, cols);
        let mut sparse = Matrix::zeros(rows, cols);
        ops::outer_acc(&mut dense, &d, &x, 1.5).unwrap();
        ops::outer_acc_sparse(&mut sparse, &d, &active, 1.5).unwrap();
        prop_assert_eq!(dense, sparse);
    }

    #[test]
    fn rng_below_is_bounded(seed in any::<u64>(), n in 1u64..1000) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), len in 0usize..40) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_always_distinct(seed in any::<u64>(), n in 0usize..60, k in 0usize..80) {
        let mut rng = Rng::seed_from_u64(seed);
        let idx = rng.sample_indices(n, k);
        prop_assert_eq!(idx.len(), k.min(n));
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k.min(n));
    }
}
