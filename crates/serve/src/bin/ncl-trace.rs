//! `ncl-trace` — fetches and pretty-prints the slowest captured
//! distributed traces from a fleet node.
//!
//! ```sh
//! ncl-trace [--addr 127.0.0.1:7979] [--min-duration-us N] [--limit N]
//!           [--slowest N]
//! ```
//!
//! Pointed at `ncl-router`, the `traces` op returns traces already
//! stitched across the fleet (router + every replica fragment joined
//! by trace id). Pointed at a single replica it returns local
//! fragments, which are stitched here before printing. Each hop prints
//! its span on the unified timeline plus its **self time** — duration
//! minus direct children — which is the number to rank hops by when
//! hunting where a slow request actually spent its wall clock.

use ncl_obs::trace;
use ncl_obs::{NodeFragment, StitchedSpan, StitchedTrace};
use ncl_serve::client::NclClient;
use ncl_serve::protocol;
use serde_json::Value;

fn usage(problem: &str) -> ! {
    eprintln!("ncl-trace: {problem}");
    eprintln!(
        "usage: ncl-trace [--addr host:port] [--min-duration-us N] [--limit N] [--slowest N]"
    );
    std::process::exit(2);
}

struct Args {
    addr: String,
    min_duration_us: u64,
    limit: usize,
    slowest: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7979".to_owned(),
        min_duration_us: 0,
        limit: protocol::DEFAULT_TRACES_LIMIT,
        slowest: 5,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--min-duration-us" => {
                args.min_duration_us = value("--min-duration-us")
                    .parse()
                    .unwrap_or_else(|_| usage("--min-duration-us must be a u64"));
            }
            "--limit" => {
                args.limit = value("--limit")
                    .parse()
                    .unwrap_or_else(|_| usage("--limit must be a positive integer"));
            }
            "--slowest" => {
                args.slowest = value("--slowest")
                    .parse()
                    .unwrap_or_else(|_| usage("--slowest must be a positive integer"));
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if args.limit == 0 || args.slowest == 0 {
        usage("--limit and --slowest must be at least 1");
    }
    args
}

/// Parses the router's already-stitched `traces` response back into
/// [`StitchedTrace`]s; malformed entries are skipped, not fatal.
fn parse_stitched(value: &Value) -> Vec<StitchedTrace> {
    let Some(traces) = value.get("traces").and_then(Value::as_array) else {
        return Vec::new();
    };
    traces
        .iter()
        .filter_map(|entry| {
            let trace_id = trace::parse_trace_id(entry.get("id").and_then(Value::as_str)?)?;
            let root = trace::parse_span_id(entry.get("root").and_then(Value::as_str)?)?;
            let duration_us = entry.get("duration_us").and_then(Value::as_u64)?;
            let orphan_spans = entry
                .get("orphan_spans")
                .and_then(Value::as_u64)
                .unwrap_or(0) as usize;
            let spans = entry
                .get("spans")
                .and_then(Value::as_array)?
                .iter()
                .filter_map(parse_stitched_span)
                .collect::<Vec<_>>();
            if spans.is_empty() {
                return None;
            }
            Some(StitchedTrace {
                trace_id,
                root,
                duration_us,
                spans,
                orphan_spans,
            })
        })
        .collect()
}

fn parse_stitched_span(span: &Value) -> Option<StitchedSpan> {
    let parent = match span.get("parent") {
        None => None,
        Some(parent) => Some(trace::parse_span_id(parent.as_str()?)?),
    };
    Some(StitchedSpan {
        span_id: trace::parse_span_id(span.get("id").and_then(Value::as_str)?)?,
        parent,
        node: span.get("node").and_then(Value::as_str)?.to_owned(),
        stage: span.get("stage").and_then(Value::as_str)?.to_owned(),
        start_us: span.get("start_us").and_then(Value::as_u64)?,
        duration_us: span.get("duration_us").and_then(Value::as_u64)?,
        links: span
            .get("links")
            .and_then(Value::as_array)
            .map(|links| {
                links
                    .iter()
                    .filter_map(|l| trace::parse_span_id(l.as_str()?))
                    .collect()
            })
            .unwrap_or_default(),
        depth: span.get("depth").and_then(Value::as_u64).unwrap_or(0) as usize,
    })
}

fn print_trace(trace: &StitchedTrace) {
    println!(
        "trace {}  {}µs  {} spans  root {}{}",
        trace::trace_id_hex(trace.trace_id),
        trace.duration_us,
        trace.spans.len(),
        trace::span_id_hex(trace.root),
        if trace.orphan_spans > 0 {
            format!("  ({} orphan spans!)", trace.orphan_spans)
        } else {
            String::new()
        }
    );
    for span in &trace.spans {
        let indent = "  ".repeat(span.depth + 1);
        let links = if span.links.is_empty() {
            String::new()
        } else {
            format!("  +{} links", span.links.len())
        };
        println!(
            "{indent}{stage:<12} {node:<12} start {start:>7}µs  wall {wall:>7}µs  self {own:>7}µs{links}",
            stage = span.stage,
            node = span.node,
            start = span.start_us,
            wall = span.duration_us,
            own = ncl_obs::trace::self_time_us(trace, span.span_id),
        );
    }
}

fn main() {
    let args = parse_args();
    let mut client = NclClient::connect_with(&args.addr, Default::default()).unwrap_or_else(|e| {
        eprintln!("ncl-trace: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let reply = client
        .traces(args.min_duration_us, args.limit)
        .unwrap_or_else(|e| {
            eprintln!("ncl-trace: traces op failed: {e}");
            std::process::exit(1);
        });
    if reply.get("ok").and_then(Value::as_bool) != Some(true) {
        let detail = reply.get("error").and_then(Value::as_str).unwrap_or("?");
        eprintln!("ncl-trace: traces op declined: {detail}");
        std::process::exit(1);
    }
    let stitched = if reply.get("stitched").and_then(Value::as_bool) == Some(true) {
        parse_stitched(&reply)
    } else {
        // A lone replica serves raw local fragments; stitch them here
        // so single-node traces print on the same unified timeline.
        let fragments: Vec<NodeFragment> = protocol::parse_traces_response(&reply)
            .into_iter()
            .map(|fragment| NodeFragment {
                node: args.addr.clone(),
                trace_id: fragment.trace_id,
                spans: fragment.spans,
            })
            .collect();
        ncl_obs::stitch(&fragments)
    };
    if stitched.is_empty() {
        println!(
            "no traces captured at {} (min duration {}µs)",
            args.addr, args.min_duration_us
        );
        return;
    }
    // Already sorted slowest-first by stitch(); the router's response
    // preserves that order.
    for trace in stitched.iter().take(args.slowest) {
        print_trace(trace);
        println!();
    }
    println!(
        "{} of {} captured traces shown (slowest first)",
        stitched.len().min(args.slowest),
        stitched.len()
    );
}
