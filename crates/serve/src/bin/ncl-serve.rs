//! `ncl-serve` — the standalone inference server.
//!
//! ```sh
//! ncl-serve [--port N] [--model ckpt.bin] [--workers N]
//!           [--batch-size N] [--max-wait-us N] [--dump-model path.bin]
//! ```
//!
//! Serves the checkpoint given with `--model` (the `ncl_snn::serialize`
//! format), or a deterministic demo network (48 inputs, 4 classes — the
//! smoke-scenario shape) when omitted. `--port 0` binds an ephemeral
//! port; the bound address is printed as the first stdout line
//! (`ncl-serve listening on 127.0.0.1:PORT`) so scripts can parse it.
//! `--dump-model` writes the serving model to a checkpoint file at
//! startup — handy for exercising the `swap` op against a known-good
//! file. The process runs until a client sends `{"op":"shutdown"}`.

use std::sync::Arc;
use std::time::Duration;

use ncl_serve::batcher::BatchConfig;
use ncl_serve::registry::ModelRegistry;
use ncl_serve::server::{Server, ServerConfig};
use ncl_snn::{serialize, Network, NetworkConfig};

fn usage(problem: &str) -> ! {
    eprintln!("ncl-serve: {problem}");
    eprintln!(
        "usage: ncl-serve [--port N] [--model ckpt.bin] [--workers N] \
         [--batch-size N] [--max-wait-us N] [--dump-model path.bin]"
    );
    std::process::exit(2);
}

struct Args {
    port: u16,
    model: Option<String>,
    dump_model: Option<String>,
    batch: BatchConfig,
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 7878,
        model: None,
        dump_model: None,
        batch: BatchConfig::default(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--port" => {
                args.port = value("--port")
                    .parse()
                    .unwrap_or_else(|_| usage("--port must be a u16"));
            }
            "--model" => args.model = Some(value("--model")),
            "--dump-model" => args.dump_model = Some(value("--dump-model")),
            "--workers" => {
                args.batch.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| usage("--workers must be a positive integer"));
            }
            "--batch-size" => {
                args.batch.batch_size = value("--batch-size")
                    .parse()
                    .unwrap_or_else(|_| usage("--batch-size must be a positive integer"));
            }
            "--max-wait-us" => {
                let us: u64 = value("--max-wait-us")
                    .parse()
                    .unwrap_or_else(|_| usage("--max-wait-us must be a u64"));
                args.batch.max_wait = Duration::from_micros(us);
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if args.batch.workers == 0 || args.batch.batch_size == 0 {
        usage("--workers and --batch-size must be at least 1");
    }
    args
}

/// The demo model served when no checkpoint is given: the smoke-scenario
/// shape, deterministically seeded so every run serves identical weights.
fn demo_network() -> Network {
    let mut config = NetworkConfig::tiny(48, 4);
    config.hidden_sizes = vec![24, 16];
    Network::new(config).expect("demo config is valid")
}

fn main() {
    let args = parse_args();
    let (network, source) = match &args.model {
        Some(path) => {
            let net = serialize::from_file(std::path::Path::new(path)).unwrap_or_else(|e| {
                eprintln!("ncl-serve: cannot load {path}: {e}");
                std::process::exit(1);
            });
            (net, path.clone())
        }
        None => (demo_network(), "demo".to_owned()),
    };
    if let Some(dump) = &args.dump_model {
        serialize::to_file(&network, std::path::Path::new(dump)).unwrap_or_else(|e| {
            eprintln!("ncl-serve: cannot write {dump}: {e}");
            std::process::exit(1);
        });
    }
    let config = network.config().clone();
    let registry = Arc::new(ModelRegistry::new(network, &source));
    let server = Server::start(
        registry,
        ServerConfig {
            port: args.port,
            batch: args.batch,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("ncl-serve: cannot bind 127.0.0.1:{}: {e}", args.port);
        std::process::exit(1);
    });
    println!("ncl-serve listening on {}", server.local_addr());
    println!(
        "model v1 ({source}): {} -> {} ({} hidden layers); batch_size={} max_wait={}us workers={}",
        config.input_size,
        config.output_size,
        config.hidden_sizes.len(),
        args.batch.batch_size,
        args.batch.max_wait.as_micros(),
        args.batch.workers,
    );
    // Line-buffered stdout under a pipe would starve a parsing script.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.wait();
    println!("ncl-serve: drained and stopped");
}
