//! `ncl-loadgen` — load generator + latency recorder for `ncl-serve`.
//!
//! ```sh
//! ncl-loadgen [--addr 127.0.0.1:7878] [--connections N] [--duration-ms N]
//!             [--steps N] [--density F] [--seed N] [--timeout-ms N]
//!             [--swap-model ckpt.bin] [--swap-at-ms N] [--trace]
//!             [--out BENCH_serve.json]
//! ```
//!
//! Opens `--connections` concurrent client connections, fires predict
//! requests back-to-back for `--duration-ms`, and measures end-to-end
//! latency per request client-side. With `--swap-model`, a control
//! connection triggers a hot swap mid-run (`--swap-at-ms`, default
//! half-way) — the acceptance bar is zero failed requests across the
//! swap. Results (p50/p95/p99 µs, requests/s, per-version request
//! counts, server-side stats) are written to `--out` as JSON.
//!
//! With `--trace`, every predict request originates a distributed
//! trace context (ids minted deterministically from `--seed` and the
//! connection index), so the fleet's tail sampler captures slow
//! requests end-to-end; fetch them afterwards with `ncl-trace`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncl_serve::client::{ClientConfig, NclClient};
use ncl_serve::protocol;
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use serde_json::Value;

fn usage(problem: &str) -> ! {
    eprintln!("ncl-loadgen: {problem}");
    eprintln!(
        "usage: ncl-loadgen [--addr host:port] [--connections N] [--duration-ms N] \
         [--steps N] [--density F] [--seed N] [--timeout-ms N] \
         [--swap-model ckpt.bin] [--swap-at-ms N] [--trace] [--out file.json]"
    );
    std::process::exit(2);
}

#[derive(Clone)]
struct Args {
    addr: String,
    connections: usize,
    duration: Duration,
    steps: usize,
    density: f64,
    seed: u64,
    timeout: Option<Duration>,
    swap_model: Option<String>,
    swap_at: Option<Duration>,
    trace: bool,
    out: String,
}

impl Args {
    /// The socket timeout policy every connection uses (unbounded
    /// blocking when `--timeout-ms` is absent).
    fn client_config(&self) -> ClientConfig {
        match self.timeout {
            Some(t) => ClientConfig::with_timeout(t),
            None => ClientConfig::default(),
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_owned(),
        connections: 4,
        duration: Duration::from_millis(2000),
        steps: 20,
        density: 0.15,
        seed: 1,
        timeout: None,
        swap_model: None,
        swap_at: None,
        trace: false,
        out: "BENCH_serve.json".to_owned(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--connections" => {
                args.connections = value("--connections")
                    .parse()
                    .unwrap_or_else(|_| usage("--connections must be a positive integer"));
            }
            "--duration-ms" => {
                let ms: u64 = value("--duration-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--duration-ms must be a u64"));
                args.duration = Duration::from_millis(ms);
            }
            "--steps" => {
                args.steps = value("--steps")
                    .parse()
                    .unwrap_or_else(|_| usage("--steps must be a positive integer"));
            }
            "--density" => {
                args.density = value("--density")
                    .parse()
                    .unwrap_or_else(|_| usage("--density must be a float"));
            }
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be a u64"));
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--timeout-ms must be a u64"));
                args.timeout = Some(Duration::from_millis(ms));
            }
            "--swap-model" => args.swap_model = Some(value("--swap-model")),
            "--swap-at-ms" => {
                let ms: u64 = value("--swap-at-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--swap-at-ms must be a u64"));
                args.swap_at = Some(Duration::from_millis(ms));
            }
            "--trace" => args.trace = true,
            "--out" => args.out = value("--out"),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if args.connections == 0 || args.steps == 0 {
        usage("--connections and --steps must be at least 1");
    }
    args
}

/// Per-client-thread tally.
#[derive(Default)]
struct ClientResult {
    latencies_us: Vec<u64>,
    ok: u64,
    failed: u64,
    by_version: BTreeMap<u64, u64>,
}

fn client_loop(
    addr: &str,
    input_size: usize,
    args: &Args,
    conn_index: usize,
    deadline: Instant,
) -> ClientResult {
    let mut result = ClientResult::default();
    let Ok(mut conn) = NclClient::connect_with(addr, args.client_config()) else {
        result.failed += 1;
        return result;
    };
    let mut rng = Rng::seed_from_u64(args.seed ^ (conn_index as u64).wrapping_mul(0x9E37));
    // Trace origination: ids are minted from a deterministic seed per
    // connection, so a re-run with the same flags names the same traces.
    let tracer = args.trace.then(|| {
        ncl_obs::Tracer::new(
            args.seed ^ (conn_index as u64).wrapping_mul(0xA5A5),
            ncl_obs::TraceConfig::default(),
            Instant::now(),
        )
    });
    let mut id = 0u64;
    while Instant::now() < deadline {
        let raster =
            SpikeRaster::from_fn(input_size, args.steps, |_, _| rng.bernoulli(args.density));
        let line = match &tracer {
            Some(tracer) => protocol::predict_request_line_traced(id, &raster, &tracer.new_trace()),
            None => protocol::predict_request_line(id, &raster),
        };
        let sent = Instant::now();
        match conn.round_trip(&line) {
            Ok(reply) => {
                let ok = reply.get("ok").and_then(Value::as_bool) == Some(true)
                    && reply.get("id").and_then(Value::as_u64) == Some(id)
                    && reply.get("prediction").is_some();
                if ok {
                    result.ok += 1;
                    result.latencies_us.push(sent.elapsed().as_micros() as u64);
                    if let Some(v) = reply.get("model_version").and_then(Value::as_u64) {
                        *result.by_version.entry(v).or_insert(0) += 1;
                    }
                } else {
                    result.failed += 1;
                }
            }
            Err(_) => {
                result.failed += 1;
                // The connection is unusable after an I/O failure.
                match NclClient::connect_with(addr, args.client_config()) {
                    Ok(fresh) => conn = fresh,
                    Err(_) => break,
                }
            }
        }
        id += 1;
    }
    result
}

/// Nearest-rank percentile of a sorted sample.
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let args = parse_args();

    // Learn the serving contract from the stats endpoint.
    let mut control =
        NclClient::connect_with(&args.addr, args.client_config()).unwrap_or_else(|e| {
            eprintln!("ncl-loadgen: cannot connect to {}: {e}", args.addr);
            std::process::exit(1);
        });
    let stats = control.stats().unwrap_or_else(|e| {
        eprintln!("ncl-loadgen: stats probe failed: {e}");
        std::process::exit(1);
    });
    let model = stats.get("model").unwrap_or(&Value::Null);
    let input_size = model
        .get("input_size")
        .and_then(Value::as_u64)
        .unwrap_or_else(|| {
            eprintln!("ncl-loadgen: stats response lacks model.input_size");
            std::process::exit(1);
        }) as usize;
    let start_version = model.get("version").and_then(Value::as_u64).unwrap_or(0);

    let started = Instant::now();
    let deadline = started + args.duration;
    let args_shared = Arc::new(args.clone());

    // Optional hot swap mid-run on a dedicated connection.
    let swap_args = Arc::clone(&args_shared);
    let swap_thread = args_shared.swap_model.clone().map(|path| {
        std::thread::spawn(move || -> (bool, u64, String) {
            let at = swap_args.swap_at.unwrap_or(swap_args.duration / 2);
            std::thread::sleep(at);
            match NclClient::connect_with(&swap_args.addr, swap_args.client_config())
                .and_then(|mut c| c.swap(&path))
            {
                Ok(reply) => {
                    let ok = reply.get("ok").and_then(Value::as_bool) == Some(true);
                    let version = reply
                        .get("model_version")
                        .and_then(Value::as_u64)
                        .unwrap_or(0);
                    let detail = reply
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_owned();
                    (ok, version, detail)
                }
                Err(e) => (false, 0, e.to_string()),
            }
        })
    });

    let results: Vec<ClientResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args_shared.connections)
            .map(|conn_index| {
                let args = Arc::clone(&args_shared);
                scope
                    .spawn(move || client_loop(&args.addr, input_size, &args, conn_index, deadline))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let swap_outcome = swap_thread.map(|h| h.join().expect("swap thread panicked"));

    // Aggregate.
    let mut latencies: Vec<u64> = Vec::new();
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut by_version: BTreeMap<u64, u64> = BTreeMap::new();
    for r in results {
        latencies.extend(r.latencies_us);
        ok += r.ok;
        failed += r.failed;
        for (v, n) in r.by_version {
            *by_version.entry(v).or_insert(0) += n;
        }
    }
    latencies.sort_unstable();
    let p50 = percentile_us(&latencies, 0.50);
    let p95 = percentile_us(&latencies, 0.95);
    let p99 = percentile_us(&latencies, 0.99);
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let rps = ok as f64 / elapsed.as_secs_f64();

    let final_stats = control.stats().unwrap_or(Value::Null);

    let latency_block = protocol::object(vec![
        ("p50", Value::from(p50)),
        ("p95", Value::from(p95)),
        ("p99", Value::from(p99)),
        ("mean", Value::from(mean)),
        ("max", Value::from(latencies.last().copied().unwrap_or(0))),
    ]);
    let versions_block = Value::Object(
        by_version
            .iter()
            .map(|(v, n)| (v.to_string(), Value::from(*n)))
            .collect(),
    );
    let hot_swap_block = match &swap_outcome {
        Some((swapped, version, detail)) => protocol::object(vec![
            ("requested", Value::from(true)),
            ("succeeded", Value::from(*swapped)),
            ("new_version", Value::from(*version)),
            ("detail", Value::from(detail.as_str())),
            ("start_version", Value::from(start_version)),
        ]),
        None => protocol::object(vec![("requested", Value::from(false))]),
    };
    let report = protocol::object(vec![
        ("bench", Value::from("serve")),
        ("addr", Value::from(args_shared.addr.as_str())),
        ("connections", Value::from(args_shared.connections)),
        ("duration_ms", Value::from(elapsed.as_millis() as u64)),
        ("steps_per_request", Value::from(args_shared.steps)),
        ("requests_ok", Value::from(ok)),
        ("requests_failed", Value::from(failed)),
        ("requests_per_sec", Value::from(rps)),
        ("traced", Value::from(args_shared.trace)),
        ("latency_us", latency_block),
        ("requests_by_model_version", versions_block),
        ("hot_swap", hot_swap_block),
        ("server_stats", final_stats),
    ]);

    let json = report.to_json_pretty();
    std::fs::write(&args_shared.out, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("ncl-loadgen: cannot write {}: {e}", args_shared.out);
        std::process::exit(1);
    });

    println!(
        "ncl-loadgen: {ok} ok / {failed} failed over {:.2}s ({rps:.0} req/s)",
        elapsed.as_secs_f64()
    );
    println!("latency µs: p50={p50} p95={p95} p99={p99} mean={mean:.1}");
    if let Some((swapped, version, detail)) = &swap_outcome {
        if *swapped {
            println!("hot swap: v{start_version} -> v{version} under load");
        } else {
            println!("hot swap FAILED: {detail}");
        }
    }
    println!("report written to {}", args_shared.out);

    let swap_failed = matches!(&swap_outcome, Some((false, _, _)));
    if ok == 0 || swap_failed {
        std::process::exit(1);
    }
}
