//! The micro-batching scheduler.
//!
//! Inference requests are pushed onto a [`ShardedQueue`] (the same
//! sharded work-stealing structure the experiment engine uses, in its
//! streaming form); a pool of worker threads collects them into batches
//! of up to `batch_size`, waiting at most `max_wait` after the first
//! request before running a partial batch, executes **one** batched
//! forward pass ([`ncl_snn::Network::forward_batch`]) against an `Arc`
//! snapshot of the current model, and fans the results back to the
//! per-request reply channels.
//!
//! Latency/throughput trade: a larger `batch_size` amortizes scratch
//! buffers and model-snapshot overhead across requests; `max_wait` caps
//! the queueing delay a sparse request stream can suffer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use ncl_obs::{TraceContext, Tracer};
use ncl_runtime::queue::ShardedQueue;
use ncl_spike::SpikeRaster;
use ncl_tensor::ops;

use crate::error::ServeError;
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum requests folded into one forward pass.
    pub batch_size: usize,
    /// Longest a queued request waits for companions before a partial
    /// batch runs.
    pub max_wait: Duration,
    /// Worker threads executing batches.
    pub workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            batch_size: 8,
            max_wait: Duration::from_micros(500),
            workers: 2,
        }
    }
}

/// One answered predict request.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictReply {
    /// Readout logits.
    pub logits: Vec<f32>,
    /// Argmax class.
    pub prediction: usize,
    /// Version of the model that served the request.
    pub model_version: u64,
}

/// Receiver for one submitted request's reply.
pub type ReplyReceiver = mpsc::Receiver<Result<PredictReply, ServeError>>;

struct PendingRequest {
    raster: SpikeRaster,
    enqueued: Instant,
    reply: mpsc::Sender<Result<PredictReply, ServeError>>,
    /// Trace context of the request's accept span, if the request
    /// carried one — the batcher records its queue-wait and forward
    /// spans as children of that accept span.
    trace: Option<TraceContext>,
}

/// Per-request state carried from batch formation to reply fan-out.
type ReplySlot = (
    mpsc::Sender<Result<PredictReply, ServeError>>,
    Instant,
    Option<TraceContext>,
);

/// The micro-batching scheduler + its worker pool.
pub struct Batcher {
    queue: ShardedQueue<PendingRequest>,
    /// Wakeup channel: producers notify under the mutex, workers re-check
    /// the queue under the same mutex before sleeping, so no wakeup is
    /// lost.
    signal: (Mutex<()>, Condvar),
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    config: BatchConfig,
    /// Phase 1 of shutdown: no new submissions; workers drain then exit.
    draining: AtomicBool,
    /// Phase 2 of shutdown: workers are joined — anything still queued is
    /// stranded and must be reaped (by shutdown's sweep or by the racing
    /// submitter itself).
    terminated: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Trace recorder for queue-wait/forward spans (absent in detached
    /// test setups that never trace).
    tracer: Option<Arc<Tracer>>,
}

impl Batcher {
    /// Starts the scheduler: spawns `config.workers` worker threads
    /// (clamped to at least 1) serving batches from the queue.
    ///
    /// # Errors
    ///
    /// Returns the OS error if a worker thread cannot be spawned; any
    /// workers that did start are shut down before returning.
    pub fn start(
        registry: Arc<ModelRegistry>,
        metrics: Arc<Metrics>,
        config: BatchConfig,
    ) -> std::io::Result<Arc<Self>> {
        Batcher::start_traced(registry, metrics, config, None)
    }

    /// Like [`Batcher::start`], but with a tracer: requests submitted
    /// with a trace context get `queue_wait` and `forward` child spans
    /// recorded into it.
    ///
    /// # Errors
    ///
    /// Returns the OS error if a worker thread cannot be spawned.
    pub fn start_traced(
        registry: Arc<ModelRegistry>,
        metrics: Arc<Metrics>,
        mut config: BatchConfig,
        tracer: Option<Arc<Tracer>>,
    ) -> std::io::Result<Arc<Self>> {
        config.workers = config.workers.max(1);
        config.batch_size = config.batch_size.max(1);
        let batcher = Arc::new(Batcher {
            queue: ShardedQueue::empty(config.workers),
            signal: (Mutex::new(()), Condvar::new()),
            registry,
            metrics,
            config,
            draining: AtomicBool::new(false),
            terminated: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            tracer,
        });
        let mut handles = Vec::with_capacity(config.workers);
        for worker in 0..config.workers {
            let b = Arc::clone(&batcher);
            let spawned = std::thread::Builder::new()
                .name(format!("ncl-serve-worker-{worker}"))
                .spawn(move || b.worker_loop(worker));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Wind down the workers that did start before
                    // surfacing the spawn failure.
                    *batcher.workers_guard() = handles;
                    batcher.shutdown();
                    return Err(e);
                }
            }
        }
        *batcher.workers_guard() = handles;
        Ok(batcher)
    }

    /// The signal mutex, recovering from poison: the guarded unit value
    /// has no state to corrupt, so a panicked holder is harmless.
    fn signal_guard(&self) -> MutexGuard<'_, ()> {
        self.signal.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The worker-handle list, recovering from poison (the list is
    /// always a valid Vec).
    fn workers_guard(&self) -> MutexGuard<'_, Vec<std::thread::JoinHandle<()>>> {
        self.workers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The scheduler configuration in effect.
    #[must_use]
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// Submits one raster for inference; the reply arrives on the
    /// returned channel once its batch ran.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] once draining has begun.
    pub fn submit(&self, raster: SpikeRaster) -> Result<ReplyReceiver, ServeError> {
        self.submit_traced(raster, None)
    }

    /// Like [`Batcher::submit`], but carrying the trace context of the
    /// request's accept span: the batch worker records `queue_wait`
    /// (enqueue to claim) and `forward` (the batched forward pass,
    /// linked to co-batched requests) spans as its children.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] once draining has begun.
    pub fn submit_traced(
        &self,
        raster: SpikeRaster,
        trace: Option<TraceContext>,
    ) -> Result<ReplyReceiver, ServeError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let (tx, rx) = mpsc::channel();
        // The push itself is uncontended (per-shard mutex) — producers
        // only share the signal mutex for the notify below, keeping the
        // request hot path scalable.
        // Count before push so the gauge bounds the true depth from
        // above (a worker can pop the item the instant it lands).
        self.metrics.queue_depth().add(1);
        self.queue.push(PendingRequest {
            raster,
            enqueued: Instant::now(),
            reply: tx,
            trace,
        });
        {
            // Notify under the lock: a worker only sleeps after
            // re-checking the queue while holding it, so the wakeup
            // cannot be lost.
            let _guard = self.signal_guard();
            self.signal.1.notify_one();
        }
        // Stranded-submission guard: if the push raced past a completed
        // shutdown (workers joined — `terminated` set), nothing will ever
        // pop it. SeqCst gives a total order: reading `terminated ==
        // false` here means the push landed before shutdown's final
        // sweep, which therefore reaps it; reading `true` means we reap
        // the leftovers ourselves (pops are atomic, so a concurrent
        // sweep and this loop each answer any item at most once).
        if self.terminated.load(Ordering::SeqCst) {
            self.reap_stranded();
        }
        Ok(rx)
    }

    /// Stops accepting work, drains every queued request, and joins the
    /// workers.
    pub fn shutdown(&self) {
        {
            let _guard = self.signal_guard();
            self.draining.store(true, Ordering::SeqCst);
            self.signal.1.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers_guard());
        for handle in handles {
            let _ = handle.join();
        }
        // Workers drained everything submitted before `draining`; the
        // sweep answers any straggler that raced into the queue since.
        // Order matters: `terminated` is set *before* the sweep so a
        // racing submitter either sees it (and reaps its own item) or
        // pushed early enough for this sweep to see the item.
        self.terminated.store(true, Ordering::SeqCst);
        self.reap_stranded();
    }

    /// Answers every queued request with [`ServeError::ShuttingDown`].
    /// Only called once workers are gone.
    fn reap_stranded(&self) {
        for leftover in self.queue.pop_batch(0, usize::MAX) {
            let _ = leftover.reply.send(Err(ServeError::ShuttingDown));
            self.metrics.queue_depth().sub(1);
            self.metrics.record_failure();
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            // Phase 1: block until at least one request is available (or
            // drain + empty queue means exit).
            let first = loop {
                if let Some(item) = self.queue.pop(worker) {
                    break item;
                }
                if self.draining.load(Ordering::Acquire) {
                    return;
                }
                let guard = self.signal_guard();
                if self.queue.is_empty() && !self.draining.load(Ordering::Acquire) {
                    // The timeout is a belt-and-braces backstop; the
                    // notify-under-lock protocol makes missed wakeups
                    // impossible in the common path.
                    let _ = self.signal.1.wait_timeout(guard, Duration::from_millis(25));
                }
            };

            // Phase 2: top the batch up until full or max_wait expires.
            let deadline = first.enqueued + self.config.max_wait;
            let mut batch = vec![first];
            while batch.len() < self.config.batch_size {
                let room = self.config.batch_size - batch.len();
                let more = self.queue.pop_batch(worker, room);
                if !more.is_empty() {
                    batch.extend(more);
                    continue;
                }
                let now = Instant::now();
                if now >= deadline || self.draining.load(Ordering::Acquire) {
                    break;
                }
                let guard = self.signal_guard();
                if self.queue.is_empty() {
                    let _ = self.signal.1.wait_timeout(guard, deadline - now);
                }
            }

            self.run_batch(batch);
        }
    }

    /// Runs one batched forward pass and fans results back.
    fn run_batch(&self, batch: Vec<PendingRequest>) {
        self.metrics.queue_depth().sub(batch.len() as i64);
        let claimed = Instant::now();
        let model = self.registry.current();
        let mut rasters = Vec::with_capacity(batch.len());
        let mut replies: Vec<ReplySlot> = Vec::with_capacity(batch.len());
        for pending in batch {
            rasters.push(pending.raster);
            replies.push((pending.reply, pending.enqueued, pending.trace));
        }
        if let Some(tracer) = &self.tracer {
            for (_, enqueued, trace) in &replies {
                if let Some(ctx) = trace {
                    tracer.record_span(
                        ctx,
                        "queue_wait",
                        *enqueued,
                        claimed.saturating_duration_since(*enqueued),
                        Vec::new(),
                    );
                }
            }
        }
        let forward_start = Instant::now();
        match model.network.forward_batch(&rasters) {
            Ok(all_logits) => {
                self.record_forward_spans(&replies, forward_start, forward_start.elapsed());
                for (logits, (reply, enqueued, trace)) in all_logits.into_iter().zip(replies) {
                    // output_size >= 1 is validated at model build, so
                    // the empty-logits fallback cannot trigger.
                    let prediction = ops::argmax(&logits).unwrap_or(0);
                    let latency = enqueued.elapsed().as_micros() as u64;
                    match trace {
                        Some(ctx) => self.metrics.record_ok_traced(latency, ctx.trace_id),
                        None => self.metrics.record_ok(latency),
                    }
                    let _ = reply.send(Ok(PredictReply {
                        logits,
                        prediction,
                        model_version: model.version,
                    }));
                }
            }
            Err(e) => {
                // Shape errors are screened at parse time, so this is a
                // genuine model-level failure; every requester learns it.
                let detail = e.to_string();
                for (reply, _, _) in replies {
                    self.metrics.record_failure();
                    let _ = reply.send(Err(ServeError::InvalidRequest {
                        detail: detail.clone(),
                    }));
                }
            }
        }
        self.metrics.record_batch(rasters.len());
    }

    /// One `forward` span per traced request in the batch, each linking
    /// the accept spans of the requests co-batched with it — the span
    /// links express the fan-in a parent/child tree cannot.
    fn record_forward_spans(&self, replies: &[ReplySlot], start: Instant, elapsed: Duration) {
        let Some(tracer) = &self.tracer else { return };
        let accepts: Vec<u64> = replies
            .iter()
            .filter_map(|(_, _, trace)| trace.and_then(|ctx| ctx.parent))
            .collect();
        for (_, _, trace) in replies {
            let Some(ctx) = trace else { continue };
            let links: Vec<u64> = accepts
                .iter()
                .copied()
                .filter(|id| Some(*id) != ctx.parent)
                .collect();
            tracer.record_span(ctx, "forward", start, elapsed, links);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_snn::{Network, NetworkConfig};

    fn registry(seed: u64) -> Arc<ModelRegistry> {
        let mut config = NetworkConfig::tiny(8, 3);
        config.seed = seed;
        Arc::new(ModelRegistry::new(Network::new(config).unwrap(), "test"))
    }

    fn input(seed: usize) -> SpikeRaster {
        SpikeRaster::from_fn(8, 12, |n, t| (n + t + seed).is_multiple_of(3))
    }

    #[test]
    fn replies_match_direct_forward() {
        let registry = registry(1);
        let net = registry.current();
        let batcher = Batcher::start(
            Arc::clone(&registry),
            Arc::new(Metrics::default()),
            BatchConfig::default(),
        )
        .unwrap();
        let rx = batcher.submit(input(0)).unwrap();
        let reply = rx.recv().unwrap().unwrap();
        let direct = net.network.forward(&input(0)).unwrap();
        assert_eq!(reply.logits, direct);
        assert_eq!(reply.prediction, ops::argmax(&direct).unwrap());
        assert_eq!(reply.model_version, 1);
        batcher.shutdown();
    }

    #[test]
    fn many_concurrent_submissions_all_answer() {
        let registry = registry(2);
        let metrics = Arc::new(Metrics::default());
        let batcher = Batcher::start(
            Arc::clone(&registry),
            Arc::clone(&metrics),
            BatchConfig {
                batch_size: 4,
                max_wait: Duration::from_micros(200),
                workers: 3,
            },
        )
        .unwrap();
        let receivers: Vec<_> = (0..64)
            .map(|i| (i, batcher.submit(input(i)).unwrap()))
            .collect();
        for (i, rx) in receivers {
            let reply = rx.recv().unwrap().unwrap();
            let direct = registry.current().network.forward(&input(i)).unwrap();
            assert_eq!(reply.logits, direct, "request {i}");
        }
        assert_eq!(metrics.ok_count(), 64);
        assert!(
            metrics.latency().count() == 64,
            "every reply recorded a latency"
        );
        batcher.shutdown();
    }

    #[test]
    fn swap_during_load_answers_every_request_from_some_version() {
        let registry = registry(3);
        let batcher = Batcher::start(
            Arc::clone(&registry),
            Arc::new(Metrics::default()),
            BatchConfig {
                batch_size: 4,
                max_wait: Duration::from_micros(100),
                workers: 2,
            },
        )
        .unwrap();
        let mut receivers = Vec::new();
        for i in 0..40 {
            receivers.push(batcher.submit(input(i)).unwrap());
            if i == 20 {
                let mut config = NetworkConfig::tiny(8, 3);
                config.seed = 777;
                registry
                    .swap_network(Network::new(config).unwrap(), "mid-load")
                    .unwrap();
            }
        }
        let mut versions_seen = std::collections::BTreeSet::new();
        for rx in receivers {
            let reply = rx.recv().unwrap().expect("no request fails during swap");
            versions_seen.insert(reply.model_version);
        }
        assert!(
            versions_seen.contains(&2),
            "post-swap requests must see version 2 (saw {versions_seen:?})"
        );
        batcher.shutdown();
    }

    #[test]
    fn traced_submissions_record_queue_wait_and_forward_spans() {
        let registry = registry(5);
        let tracer = Arc::new(ncl_obs::Tracer::new(
            9,
            ncl_obs::TraceConfig::default(),
            Instant::now(),
        ));
        let batcher = Batcher::start_traced(
            Arc::clone(&registry),
            Arc::new(Metrics::default()),
            BatchConfig::default(),
            Some(Arc::clone(&tracer)),
        )
        .unwrap();
        let ctx = tracer.new_trace();
        let accept = tracer.start_span(&ctx, "accept");
        let accept_id = accept.id();
        let rx = batcher
            .submit_traced(input(0), Some(accept.context()))
            .unwrap();
        rx.recv().unwrap().unwrap();
        drop(accept);
        let kept = tracer.recent(0, 8);
        assert_eq!(kept.len(), 1, "first completed trace is always kept");
        let stages: Vec<&str> = kept[0].spans.iter().map(|s| s.stage.as_str()).collect();
        assert!(stages.contains(&"queue_wait"), "stages: {stages:?}");
        assert!(stages.contains(&"forward"), "stages: {stages:?}");
        for span in kept[0].spans.iter().filter(|s| s.stage != "accept") {
            assert_eq!(span.parent, Some(accept_id), "batch spans parent to accept");
        }
        batcher.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_work_but_drains_queued() {
        let registry = registry(4);
        let batcher = Batcher::start(
            Arc::clone(&registry),
            Arc::new(Metrics::default()),
            BatchConfig {
                batch_size: 8,
                max_wait: Duration::from_millis(1),
                workers: 1,
            },
        )
        .unwrap();
        let queued: Vec<_> = (0..8).map(|i| batcher.submit(input(i)).unwrap()).collect();
        batcher.shutdown();
        for rx in queued {
            // Every queued request was answered (success) or explicitly
            // failed — never left hanging.
            assert!(rx.recv().is_ok());
        }
        assert!(matches!(
            batcher.submit(input(0)),
            Err(ServeError::ShuttingDown)
        ));
    }
}
