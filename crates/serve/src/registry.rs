//! The model registry: which network is serving right now, and how it is
//! replaced.
//!
//! A continual-learning increment produces a new network; the registry
//! swaps it in **atomically** — readers grab an `Arc` snapshot of the
//! current model per batch, so a swap never disturbs an in-flight
//! forward pass, and the write lock is held only for the pointer
//! exchange (never across a forward pass or checkpoint load). Versions
//! increase monotonically and are echoed in every predict response, so
//! clients can observe exactly when an increment went live.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ncl_snn::{serialize, Network};
use parking_lot::RwLock;

use crate::error::ServeError;

/// An immutable snapshot of one serving model.
#[derive(Debug)]
pub struct ServingModel {
    /// The network weights + architecture.
    pub network: Network,
    /// Monotonic registry version (1 for the initial model).
    pub version: u64,
    /// Human-readable provenance ("initial", a checkpoint path, ...).
    pub source: String,
}

impl ServingModel {
    /// Input width requests must match.
    #[must_use]
    pub fn input_size(&self) -> usize {
        self.network.config().input_size
    }

    /// Output class count.
    #[must_use]
    pub fn output_size(&self) -> usize {
        self.network.config().output_size
    }
}

/// Atomic hot-swap slot for the serving model.
#[derive(Debug)]
pub struct ModelRegistry {
    slot: RwLock<Arc<ServingModel>>,
    next_version: AtomicU64,
}

impl ModelRegistry {
    /// Creates a registry serving `network` as version 1.
    #[must_use]
    pub fn new(network: Network, source: &str) -> Self {
        ModelRegistry {
            slot: RwLock::new(Arc::new(ServingModel {
                network,
                version: 1,
                source: source.to_owned(),
            })),
            next_version: AtomicU64::new(2),
        }
    }

    /// Snapshot of the current model. Cheap (`Arc` clone under a read
    /// lock); the snapshot stays valid across any number of concurrent
    /// swaps.
    #[must_use]
    pub fn current(&self) -> Arc<ServingModel> {
        self.slot.read().clone()
    }

    /// Version of the current model.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.slot.read().version
    }

    /// Atomically replaces the serving model, returning the new version.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IncompatibleModel`] if the replacement's
    /// input or output width differs from the current model — requests
    /// in flight (and clients mid-connection) were built against that
    /// contract, and a silent change would fail them.
    pub fn swap_network(&self, network: Network, source: &str) -> Result<u64, ServeError> {
        // Shape check, version allocation and pointer store all happen
        // under one write lock: two racing swaps commit in version order,
        // so an observed version can never regress.
        let mut slot = self.slot.write();
        let (cur_in, cur_out) = (slot.input_size(), slot.output_size());
        let (new_in, new_out) = (network.config().input_size, network.config().output_size);
        if (cur_in, cur_out) != (new_in, new_out) {
            return Err(ServeError::IncompatibleModel {
                detail: format!("serving {cur_in}->{cur_out}, replacement is {new_in}->{new_out}"),
            });
        }
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        *slot = Arc::new(ServingModel {
            network,
            version,
            source: source.to_owned(),
        });
        Ok(version)
    }

    /// Loads a checkpoint (the `ncl_snn::serialize` format) and swaps it
    /// in.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Snn`] for unreadable/malformed checkpoints
    /// and [`ServeError::IncompatibleModel`] for shape changes. On error
    /// the current model keeps serving untouched.
    pub fn swap_from_bytes(&self, bytes: &[u8], source: &str) -> Result<u64, ServeError> {
        let network = serialize::from_bytes(bytes)?;
        self.swap_network(network, source)
    }

    /// Loads a checkpoint file and swaps it in. See
    /// [`ModelRegistry::swap_from_bytes`].
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::swap_from_bytes`], plus I/O failures.
    pub fn swap_from_file(&self, path: &std::path::Path) -> Result<u64, ServeError> {
        let network = serialize::from_file(path)?;
        self.swap_network(network, &path.display().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_snn::NetworkConfig;

    fn net(seed: u64) -> Network {
        let mut config = NetworkConfig::tiny(6, 3);
        config.seed = seed;
        Network::new(config).unwrap()
    }

    #[test]
    fn swap_bumps_version_and_replaces_network() {
        let registry = ModelRegistry::new(net(1), "initial");
        assert_eq!(registry.version(), 1);
        let before = registry.current();
        let v = registry.swap_network(net(2), "increment").unwrap();
        assert_eq!(v, 2);
        assert_eq!(registry.version(), 2);
        // The old snapshot is still intact and usable.
        assert_eq!(before.version, 1);
        assert_ne!(before.network, registry.current().network);
        assert_eq!(registry.current().source, "increment");
    }

    #[test]
    fn incompatible_shape_is_rejected_and_keeps_serving() {
        let registry = ModelRegistry::new(net(1), "initial");
        let wrong = Network::new(NetworkConfig::tiny(7, 3)).unwrap();
        assert!(matches!(
            registry.swap_network(wrong, "bad"),
            Err(ServeError::IncompatibleModel { .. })
        ));
        let wrong_out = Network::new(NetworkConfig::tiny(6, 4)).unwrap();
        assert!(registry.swap_network(wrong_out, "bad").is_err());
        assert_eq!(registry.version(), 1, "failed swap leaves version alone");
    }

    #[test]
    fn swap_from_bytes_round_trips() {
        let registry = ModelRegistry::new(net(1), "initial");
        let replacement = net(9);
        let v = registry
            .swap_from_bytes(&serialize::to_bytes(&replacement), "bytes")
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(registry.current().network, replacement);
        // Garbage bytes are rejected without disturbing the slot.
        assert!(registry.swap_from_bytes(b"nonsense", "bad").is_err());
        assert_eq!(registry.version(), 2);
    }

    #[test]
    fn concurrent_swaps_and_reads_stay_consistent() {
        let registry = ModelRegistry::new(net(0), "initial");
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let registry = &registry;
                scope.spawn(move || {
                    registry.swap_network(net(i + 10), "swap").unwrap();
                });
                scope.spawn(move || {
                    let snapshot = registry.current();
                    // A snapshot is internally consistent at all times.
                    assert_eq!(snapshot.input_size(), 6);
                    assert_eq!(snapshot.output_size(), 3);
                    assert!(snapshot.version >= 1);
                });
            }
        });
        assert_eq!(registry.version(), 5, "four swaps landed");
    }
}
