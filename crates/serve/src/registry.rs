//! The model registry: which network is serving right now, and how it is
//! replaced.
//!
//! A continual-learning increment produces a new network; the registry
//! swaps it in **atomically** — readers grab an `Arc` snapshot of the
//! current model per batch, so a swap never disturbs an in-flight
//! forward pass, and the write lock is held only for the pointer
//! exchange (never across a forward pass or checkpoint load). Versions
//! increase monotonically and are echoed in every predict response, so
//! clients can observe exactly when an increment went live.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ncl_snn::{serialize, Network};
use parking_lot::RwLock;

use crate::error::ServeError;

/// An immutable snapshot of one serving model.
#[derive(Debug)]
pub struct ServingModel {
    /// The network weights + architecture.
    pub network: Network,
    /// Monotonic registry version (1 for the initial model).
    pub version: u64,
    /// Human-readable provenance ("initial", a checkpoint path, ...).
    pub source: String,
}

impl ServingModel {
    /// Input width requests must match.
    #[must_use]
    pub fn input_size(&self) -> usize {
        self.network.config().input_size
    }

    /// Output class count.
    #[must_use]
    pub fn output_size(&self) -> usize {
        self.network.config().output_size
    }
}

/// Atomic hot-swap slot for the serving model.
#[derive(Debug)]
pub struct ModelRegistry {
    slot: RwLock<Arc<ServingModel>>,
    next_version: AtomicU64,
}

impl ModelRegistry {
    /// Creates a registry serving `network` as version 1.
    #[must_use]
    pub fn new(network: Network, source: &str) -> Self {
        ModelRegistry::with_initial_version(network, source, 1)
    }

    /// Creates a registry serving `network` at a caller-chosen initial
    /// version (clamped to at least 1). A process that restores its model
    /// from a checkpoint uses this to keep the wire-visible
    /// `model_version` monotonic across restarts — clients that observed
    /// version N before a crash must never see the same-or-newer weights
    /// re-announced as version 1.
    #[must_use]
    pub fn with_initial_version(network: Network, source: &str, version: u64) -> Self {
        let version = version.max(1);
        ModelRegistry {
            slot: RwLock::new(Arc::new(ServingModel {
                network,
                version,
                source: source.to_owned(),
            })),
            next_version: AtomicU64::new(version + 1),
        }
    }

    /// Snapshot of the current model. Cheap (`Arc` clone under a read
    /// lock); the snapshot stays valid across any number of concurrent
    /// swaps.
    #[must_use]
    pub fn current(&self) -> Arc<ServingModel> {
        self.slot.read().clone()
    }

    /// Version of the current model.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.slot.read().version
    }

    /// Atomically replaces the serving model, returning the new version.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IncompatibleModel`] if the replacement's
    /// input or output width differs from the current model — requests
    /// in flight (and clients mid-connection) were built against that
    /// contract, and a silent change would fail them.
    pub fn swap_network(&self, network: Network, source: &str) -> Result<u64, ServeError> {
        // Shape check, version allocation and pointer store all happen
        // under one write lock: two racing swaps commit in version order,
        // so an observed version can never regress.
        let mut slot = self.slot.write();
        let (cur_in, cur_out) = (slot.input_size(), slot.output_size());
        let (new_in, new_out) = (network.config().input_size, network.config().output_size);
        if (cur_in, cur_out) != (new_in, new_out) {
            return Err(ServeError::IncompatibleModel {
                detail: format!("serving {cur_in}->{cur_out}, replacement is {new_in}->{new_out}"),
            });
        }
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        *slot = Arc::new(ServingModel {
            network,
            version,
            source: source.to_owned(),
        });
        Ok(version)
    }

    /// Atomically replaces the serving model at an **exact** version —
    /// the replication path, where a follower must mirror the learner's
    /// version rather than invent its own. Future auto-allocated
    /// versions continue above `version`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::StaleVersion`] if `version` does not
    /// advance the currently served one (an out-of-order or duplicate
    /// delta must not regress the wire-visible version), and
    /// [`ServeError::IncompatibleModel`] for shape changes.
    pub fn swap_network_at(
        &self,
        network: Network,
        source: &str,
        version: u64,
    ) -> Result<u64, ServeError> {
        let mut slot = self.slot.write();
        if version <= slot.version {
            return Err(ServeError::StaleVersion {
                current: slot.version,
                proposed: version,
            });
        }
        let (cur_in, cur_out) = (slot.input_size(), slot.output_size());
        let (new_in, new_out) = (network.config().input_size, network.config().output_size);
        if (cur_in, cur_out) != (new_in, new_out) {
            return Err(ServeError::IncompatibleModel {
                detail: format!("serving {cur_in}->{cur_out}, replacement is {new_in}->{new_out}"),
            });
        }
        // Keep the auto-allocation sequence ahead of the mirrored
        // version (same write lock as the store, so no swap can
        // interleave and observe the intermediate counter).
        self.next_version.fetch_max(version + 1, Ordering::Relaxed);
        *slot = Arc::new(ServingModel {
            network,
            version,
            source: source.to_owned(),
        });
        Ok(version)
    }

    /// Loads a checkpoint (the `ncl_snn::serialize` format) and swaps it
    /// in.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Snn`] for unreadable/malformed checkpoints
    /// and [`ServeError::IncompatibleModel`] for shape changes. On error
    /// the current model keeps serving untouched.
    pub fn swap_from_bytes(&self, bytes: &[u8], source: &str) -> Result<u64, ServeError> {
        let network = serialize::from_bytes(bytes)?;
        self.swap_network(network, source)
    }

    /// Loads a checkpoint file and swaps it in. See
    /// [`ModelRegistry::swap_from_bytes`].
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::swap_from_bytes`], plus I/O failures.
    pub fn swap_from_file(&self, path: &std::path::Path) -> Result<u64, ServeError> {
        let network = serialize::from_file(path)?;
        self.swap_network(network, &path.display().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_snn::NetworkConfig;

    fn net(seed: u64) -> Network {
        let mut config = NetworkConfig::tiny(6, 3);
        config.seed = seed;
        Network::new(config).unwrap()
    }

    #[test]
    fn initial_version_carries_across_restores() {
        let registry = ModelRegistry::with_initial_version(net(1), "checkpoint:x", 7);
        assert_eq!(registry.version(), 7);
        assert_eq!(registry.current().source, "checkpoint:x");
        // The next swap continues the sequence, never regressing.
        assert_eq!(registry.swap_network(net(2), "increment").unwrap(), 8);
        // Zero is clamped to the floor version 1.
        assert_eq!(
            ModelRegistry::with_initial_version(net(1), "x", 0).version(),
            1
        );
    }

    #[test]
    fn swap_bumps_version_and_replaces_network() {
        let registry = ModelRegistry::new(net(1), "initial");
        assert_eq!(registry.version(), 1);
        let before = registry.current();
        let v = registry.swap_network(net(2), "increment").unwrap();
        assert_eq!(v, 2);
        assert_eq!(registry.version(), 2);
        // The old snapshot is still intact and usable.
        assert_eq!(before.version, 1);
        assert_ne!(before.network, registry.current().network);
        assert_eq!(registry.current().source, "increment");
    }

    #[test]
    fn incompatible_shape_is_rejected_and_keeps_serving() {
        let registry = ModelRegistry::new(net(1), "initial");
        let wrong = Network::new(NetworkConfig::tiny(7, 3)).unwrap();
        assert!(matches!(
            registry.swap_network(wrong, "bad"),
            Err(ServeError::IncompatibleModel { .. })
        ));
        let wrong_out = Network::new(NetworkConfig::tiny(6, 4)).unwrap();
        assert!(registry.swap_network(wrong_out, "bad").is_err());
        assert_eq!(registry.version(), 1, "failed swap leaves version alone");
    }

    #[test]
    fn swap_at_mirrors_versions_and_rejects_stale_ones() {
        let registry = ModelRegistry::new(net(1), "bootstrap");
        // A follower mirrors the learner's v2 exactly.
        assert_eq!(registry.swap_network_at(net(2), "delta-2", 2).unwrap(), 2);
        // Jumping ahead (learner ran increments we missed) is fine.
        assert_eq!(registry.swap_network_at(net(3), "delta-5", 5).unwrap(), 5);
        // A duplicate or out-of-order delta must not regress.
        for stale in [5, 4, 1] {
            assert!(matches!(
                registry.swap_network_at(net(4), "stale", stale),
                Err(ServeError::StaleVersion {
                    current: 5,
                    proposed
                }) if proposed == stale
            ));
        }
        assert_eq!(registry.version(), 5);
        // Auto-allocated versions continue above the mirrored one.
        assert_eq!(registry.swap_network(net(5), "local").unwrap(), 6);
        // Shape changes are still refused.
        let wrong = Network::new(NetworkConfig::tiny(7, 3)).unwrap();
        assert!(matches!(
            registry.swap_network_at(wrong, "bad", 9),
            Err(ServeError::IncompatibleModel { .. })
        ));
    }

    #[test]
    fn swap_from_bytes_round_trips() {
        let registry = ModelRegistry::new(net(1), "initial");
        let replacement = net(9);
        let v = registry
            .swap_from_bytes(&serialize::to_bytes(&replacement), "bytes")
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(registry.current().network, replacement);
        // Garbage bytes are rejected without disturbing the slot.
        assert!(registry.swap_from_bytes(b"nonsense", "bad").is_err());
        assert_eq!(registry.version(), 2);
    }

    /// The serving behaviour that must survive any failed swap: same
    /// version, same source, and bit-identical logits for a probe input.
    fn serving_fingerprint(registry: &ModelRegistry) -> (u64, String, Vec<f32>) {
        let model = registry.current();
        let probe = ncl_spike::SpikeRaster::from_fn(6, 8, |n, t| (n + t) % 3 == 0);
        let logits = model.network.forward(&probe).unwrap();
        (model.version, model.source.clone(), logits)
    }

    #[test]
    fn failed_byte_swaps_keep_the_old_model_serving() {
        let registry = ModelRegistry::new(net(1), "initial");
        let before = serving_fingerprint(&registry);

        // Shape mismatch: a valid checkpoint of an incompatible network.
        let wrong_in = Network::new(NetworkConfig::tiny(7, 3)).unwrap();
        assert!(matches!(
            registry.swap_from_bytes(&serialize::to_bytes(&wrong_in), "wrong-in"),
            Err(ServeError::IncompatibleModel { .. })
        ));
        let wrong_out = Network::new(NetworkConfig::tiny(6, 4)).unwrap();
        assert!(matches!(
            registry.swap_from_bytes(&serialize::to_bytes(&wrong_out), "wrong-out"),
            Err(ServeError::IncompatibleModel { .. })
        ));

        // Corrupt payloads: bad magic, truncation, trailing garbage.
        let good = serialize::to_bytes(&net(2));
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            registry.swap_from_bytes(&bad_magic, "bad-magic"),
            Err(ServeError::Snn(_))
        ));
        assert!(registry
            .swap_from_bytes(&good[..good.len() - 3], "truncated")
            .is_err());
        let mut trailing = good.clone();
        trailing.extend_from_slice(&[0u8; 2]);
        assert!(registry.swap_from_bytes(&trailing, "trailing").is_err());

        assert_eq!(
            serving_fingerprint(&registry),
            before,
            "old model must keep serving unchanged after every failed swap"
        );
        // And the slot still accepts a good swap afterwards.
        assert_eq!(registry.swap_from_bytes(&good, "good").unwrap(), 2);
    }

    #[test]
    fn failed_file_swaps_keep_the_old_model_serving() {
        let dir = std::env::temp_dir().join("ncl-serve-registry-swap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let registry = ModelRegistry::new(net(1), "initial");
        let before = serving_fingerprint(&registry);

        // A checkpoint file with an incompatible shape.
        let wrong = Network::new(NetworkConfig::tiny(9, 3)).unwrap();
        let wrong_path = dir.join("wrong-shape.bin");
        serialize::to_file(&wrong, &wrong_path).unwrap();
        assert!(matches!(
            registry.swap_from_file(&wrong_path),
            Err(ServeError::IncompatibleModel { .. })
        ));

        // A corrupt checkpoint file: an implausible hidden-layer count
        // (byte 19 is the high byte of the u32 at offset 16) and a
        // truncated weight payload both fail deserialization cleanly.
        let good = serialize::to_bytes(&net(3));
        let mut corrupt = good.clone();
        corrupt[19] = 0xFF;
        let corrupt_path = dir.join("corrupt.bin");
        std::fs::write(&corrupt_path, &corrupt).unwrap();
        assert!(registry.swap_from_file(&corrupt_path).is_err());
        let truncated_path = dir.join("truncated.bin");
        std::fs::write(&truncated_path, &good[..good.len() - 5]).unwrap();
        assert!(registry.swap_from_file(&truncated_path).is_err());

        // A missing file.
        assert!(registry.swap_from_file(&dir.join("missing.bin")).is_err());

        assert_eq!(
            serving_fingerprint(&registry),
            before,
            "old model must keep serving unchanged after every failed file swap"
        );
        std::fs::remove_file(&wrong_path).ok();
        std::fs::remove_file(&corrupt_path).ok();
        std::fs::remove_file(&truncated_path).ok();
    }

    #[test]
    fn concurrent_swaps_and_reads_stay_consistent() {
        let registry = ModelRegistry::new(net(0), "initial");
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let registry = &registry;
                scope.spawn(move || {
                    registry.swap_network(net(i + 10), "swap").unwrap();
                });
                scope.spawn(move || {
                    let snapshot = registry.current();
                    // A snapshot is internally consistent at all times.
                    assert_eq!(snapshot.input_size(), 6);
                    assert_eq!(snapshot.output_size(), 3);
                    assert!(snapshot.version >= 1);
                });
            }
        });
        assert_eq!(registry.version(), 5, "four swaps landed");
    }
}
