//! The TCP front end: accepts localhost connections, speaks the NDJSON
//! protocol, and routes predicts through the micro-batcher.
//!
//! One thread per connection reads request lines; `predict` ops are
//! submitted to the shared [`Batcher`] (so requests from *different*
//! connections batch together), control ops (`stats`, `swap`, `ping`,
//! `shutdown`) are answered inline. Hot swaps go through the
//! [`ModelRegistry`]: a `swap` op loads the checkpoint, the pointer
//! exchange is atomic, and every in-flight batch keeps the snapshot it
//! started with — zero dropped requests across a swap.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde_json::Value;

use crate::batcher::{BatchConfig, Batcher};
use crate::error::ServeError;
use crate::metrics::Metrics;
use crate::protocol::{self, Request};
use crate::registry::ModelRegistry;
use crate::sync::{not_replicating, ReplicaSync};

/// Server tuning knobs. The default binds an ephemeral port (0) with the
/// default [`BatchConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port; read the bound
    /// address from [`Server::local_addr`]).
    pub port: u16,
    /// Micro-batching scheduler settings.
    pub batch: BatchConfig,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    obs: Arc<ncl_obs::Registry>,
    batcher: Arc<Batcher>,
    stopping: AtomicBool,
    addr: SocketAddr,
    /// Replication handler, if this server is part of a fleet.
    sync: Option<Arc<dyn ReplicaSync>>,
}

/// A running inference service.
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds 127.0.0.1 and starts serving `registry`'s current model.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(registry: Arc<ModelRegistry>, config: ServerConfig) -> std::io::Result<Server> {
        Server::start_with_sync(registry, config, None)
    }

    /// Like [`Server::start`], but with a replication handler: the
    /// `health`/`delta`/`apply_delta`/`checkpoint`/`apply_checkpoint`
    /// ops are forwarded to it instead of being declined.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start_with_sync(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        sync: Option<Arc<dyn ReplicaSync>>,
    ) -> std::io::Result<Server> {
        Server::start_with_obs(registry, config, sync, Arc::new(ncl_obs::Registry::new()))
    }

    /// Like [`Server::start_with_sync`], but registering the serving
    /// metrics in a caller-provided observability registry — so a
    /// daemon process can expose its serve, online and training
    /// metrics through one `metrics` scrape.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start_with_obs(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        sync: Option<Arc<dyn ReplicaSync>>,
        obs: Arc<ncl_obs::Registry>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
        let addr = listener.local_addr()?;
        // Seed trace-id minting from the bound port: deterministic for a
        // fixed fleet layout, yet distinct per member, so span ids never
        // collide when the router stitches fragments across nodes.
        obs.tracer().set_seed(u64::from(addr.port()));
        let metrics = Arc::new(Metrics::new(&obs));
        let batcher = Batcher::start_traced(
            Arc::clone(&registry),
            Arc::clone(&metrics),
            config.batch,
            Some(Arc::clone(obs.tracer())),
        )?;
        let shared = Arc::new(Shared {
            registry,
            metrics,
            obs,
            batcher,
            stopping: AtomicBool::new(false),
            addr,
            sync,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("ncl-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The registry serving this server — for in-process hot swaps.
    #[must_use]
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// The serving metrics.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The observability registry backing the `metrics` op.
    #[must_use]
    pub fn obs(&self) -> &Arc<ncl_obs::Registry> {
        &self.shared.obs
    }

    /// Whether a shutdown (client op or [`Server::shutdown`]) has begun.
    #[must_use]
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::Acquire)
    }

    /// Blocks until the server stops (a client sent `shutdown`, or
    /// another thread called [`Server::shutdown`]), then drains the
    /// batcher.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.shared.batcher.shutdown();
    }

    /// Stops accepting, drains in-flight work, and joins every thread.
    pub fn shutdown(self) {
        request_stop(&self.shared);
        self.wait();
    }
}

/// Flags the server to stop and unblocks the accept loop.
fn request_stop(shared: &Shared) {
    if shared.stopping.swap(true, Ordering::AcqRel) {
        return;
    }
    // The accept loop is blocked in accept(); a throwaway local
    // connection wakes it so it can observe the flag.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("ncl-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &conn_shared);
            })
        {
            connections.push(handle);
        }
        // Opportunistically reap finished connections so a long-lived
        // server does not accumulate handles.
        connections.retain(|h| !h.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Upper bound on a buffered request line — a client that streams
/// newline-free bytes must not grow server memory without limit. Large
/// enough for a maximal predict request (4096 steps of indices).
const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Serves one connection until EOF, a `shutdown` op, or a socket error.
///
/// Framing is done on raw bytes (split at `\n`, then validate UTF-8 per
/// line) rather than `read_line`: a read timeout mid-line keeps every
/// already-consumed byte buffered — `read_line` would discard a partial
/// multi-byte UTF-8 character at the split point and corrupt the stream.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    // The read timeout lets the loop observe a server-side stop even if
    // the client goes quiet without closing; TCP_NODELAY keeps one-line
    // responses from stalling behind Nagle + delayed ACK (~40 ms per
    // round trip otherwise).
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true)?;
    let mut read_half = stream.try_clone()?;
    let mut writer = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match read_half.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line_bytes);
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    let (response, stop) = handle_line(trimmed, shared);
                    writer.write_all(response.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    if stop {
                        return Ok(());
                    }
                }
                if pending.len() > MAX_LINE_BYTES {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "request line exceeds the size limit",
                    ));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stopping.load(Ordering::Acquire) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Processes one request line into one response line; the flag reports
/// whether this request asked the server to stop (closing the
/// connection after the response is flushed).
fn handle_line(line: &str, shared: &Shared) -> (String, bool) {
    let input_size = shared.registry.current().input_size();
    let request = match protocol::parse_request(line, input_size) {
        Ok(request) => request,
        Err(e) => {
            shared.metrics.record_failure();
            return (protocol::error_response(None, &e), false);
        }
    };
    let response = match request {
        Request::Predict { id, raster, trace } => {
            // The accept span covers the whole replica-side request; it
            // is the last guard of the local fragment to close, so the
            // fragment finalizes (and tail-samples) right here, before
            // the response hits the wire.
            let accept = trace
                .as_ref()
                .map(|ctx| shared.obs.tracer().start_span(ctx, "accept"));
            let batch_ctx = accept.as_ref().map(|span| span.context());
            match predict(shared, raster, batch_ctx) {
                Ok((prediction, logits, version)) => {
                    let render_start = std::time::Instant::now();
                    let response = protocol::predict_response(id, prediction, &logits, version);
                    if let Some(ctx) = &batch_ctx {
                        shared.obs.tracer().record_span(
                            ctx,
                            "reply",
                            render_start,
                            render_start.elapsed(),
                            Vec::new(),
                        );
                    }
                    response
                }
                Err(e) => {
                    // Batch-level failures are already counted by the
                    // batcher; only count pre-submit rejections here.
                    if matches!(e, ServeError::ShuttingDown) {
                        shared.metrics.record_failure();
                    }
                    protocol::error_response(id, &e)
                }
            }
        }
        Request::Traces {
            min_duration_us,
            limit,
        } => protocol::traces_response(&shared.obs.tracer().recent(min_duration_us, limit)),
        Request::Stats => stats_response(shared),
        Request::Metrics => protocol::metrics_response(&shared.obs.render()),
        Request::Swap { path } => {
            match shared.registry.swap_from_file(std::path::Path::new(&path)) {
                Ok(version) => {
                    shared.metrics.record_swap();
                    protocol::object(vec![
                        ("ok", Value::from(true)),
                        ("op", Value::from("swap")),
                        ("model_version", Value::from(version)),
                    ])
                    .to_json()
                }
                Err(e) => {
                    shared.metrics.record_failure();
                    protocol::error_response(None, &e)
                }
            }
        }
        Request::Ping => protocol::object(vec![
            ("ok", Value::from(true)),
            ("op", Value::from("pong")),
            ("model_version", Value::from(shared.registry.version())),
        ])
        .to_json(),
        Request::Shutdown => {
            request_stop(shared);
            protocol::object(vec![
                ("ok", Value::from(true)),
                ("op", Value::from("shutdown")),
            ])
            .to_json()
        }
        Request::Health => health_response(shared),
        Request::DeltaFetch { base_version } => {
            match sync_handler(shared).and_then(|s| s.fetch_delta(base_version)) {
                Ok((version, bytes)) => protocol::object(vec![
                    ("ok", Value::from(true)),
                    ("op", Value::from("delta")),
                    ("version", Value::from(version)),
                    ("payload", Value::from(protocol::to_hex(&bytes))),
                ])
                .to_json(),
                Err(e) => protocol::error_response(None, &e),
            }
        }
        Request::DeltaApply { payload, epoch } => replication_apply(shared, "apply_delta", |s| {
            observe_epoch(s, epoch)?;
            s.apply_delta(&payload)
        }),
        Request::CheckpointFetch => match sync_handler(shared).and_then(|s| s.fetch_checkpoint()) {
            Ok(bytes) => protocol::object(vec![
                ("ok", Value::from(true)),
                ("op", Value::from("checkpoint")),
                ("payload", Value::from(protocol::to_hex(&bytes))),
            ])
            .to_json(),
            Err(e) => protocol::error_response(None, &e),
        },
        Request::CheckpointApply { payload, epoch } => {
            replication_apply(shared, "apply_checkpoint", |s| {
                observe_epoch(s, epoch)?;
                s.apply_checkpoint(&payload)
            })
        }
        Request::Promote { epoch } => role_change(shared, "promote", epoch, |s| s.promote(epoch)),
        Request::Demote { epoch } => role_change(shared, "demote", epoch, |s| s.demote(epoch)),
        Request::Join { .. } | Request::Leave { .. } | Request::Members => {
            protocol::error_response(
                None,
                &ServeError::Replication {
                    detail: "membership ops (join/leave/members) are answered by the router, \
                             not a replica"
                        .into(),
                },
            )
        }
    };
    let stop = shared.stopping.load(Ordering::Acquire);
    (response, stop)
}

fn predict(
    shared: &Shared,
    raster: ncl_spike::SpikeRaster,
    trace: Option<ncl_obs::TraceContext>,
) -> Result<(usize, Vec<f32>, u64), ServeError> {
    let rx = shared.batcher.submit_traced(raster, trace)?;
    let reply = rx.recv().map_err(|_| ServeError::ShuttingDown)??;
    Ok((reply.prediction, reply.logits, reply.model_version))
}

/// The replication handler, or the standard decline error.
fn sync_handler(shared: &Shared) -> Result<&Arc<dyn ReplicaSync>, ServeError> {
    shared.sync.as_ref().ok_or_else(not_replicating)
}

/// Fences a write stamped with a fleet epoch (unstamped writes pass —
/// pre-elastic peers keep working).
fn observe_epoch(sync: &Arc<dyn ReplicaSync>, epoch: Option<u64>) -> Result<(), ServeError> {
    match epoch {
        Some(epoch) => sync.observe_epoch(epoch),
        None => Ok(()),
    }
}

/// Runs a role-change op (`promote`/`demote`) and renders the response.
fn role_change(
    shared: &Shared,
    op: &str,
    epoch: u64,
    change: impl FnOnce(&Arc<dyn ReplicaSync>) -> Result<u64, ServeError>,
) -> String {
    match sync_handler(shared).and_then(change) {
        Ok(version) => protocol::object(vec![
            ("ok", Value::from(true)),
            ("op", Value::from(op)),
            ("epoch", Value::from(epoch)),
            ("model_version", Value::from(version)),
        ])
        .to_json(),
        Err(e) => protocol::error_response(None, &e),
    }
}

/// Runs a replication apply op (delta or checkpoint) and renders the
/// response. Applies count as swaps in the metrics.
fn replication_apply(
    shared: &Shared,
    op: &str,
    apply: impl FnOnce(&Arc<dyn ReplicaSync>) -> Result<u64, ServeError>,
) -> String {
    match sync_handler(shared).and_then(apply) {
        Ok(version) => {
            shared.metrics.record_swap();
            protocol::object(vec![
                ("ok", Value::from(true)),
                ("op", Value::from(op)),
                ("model_version", Value::from(version)),
            ])
            .to_json()
        }
        Err(e) => protocol::error_response(None, &e),
    }
}

/// The `health` response: version + role + handler-specific fields.
fn health_response(shared: &Shared) -> String {
    let mut pairs = vec![
        ("ok", Value::from(true)),
        ("op", Value::from("health")),
        ("model_version", Value::from(shared.registry.version())),
        (
            "role",
            Value::from(shared.sync.as_ref().map_or("standalone", |s| s.role())),
        ),
        ("requests_ok", Value::from(shared.metrics.ok_count())),
        (
            "requests_failed",
            Value::from(shared.metrics.failed_count()),
        ),
    ];
    if let Some(sync) = &shared.sync {
        pairs.push(("epoch", Value::from(sync.epoch())));
        pairs.extend(sync.health_extra());
    }
    protocol::object(pairs).to_json()
}

fn stats_response(shared: &Shared) -> String {
    let model = shared.registry.current();
    let model_block = protocol::object(vec![
        ("version", Value::from(model.version)),
        ("input_size", Value::from(model.input_size())),
        ("output_size", Value::from(model.output_size())),
        ("source", Value::from(model.source.clone())),
    ]);
    protocol::object(vec![
        ("ok", Value::from(true)),
        ("op", Value::from("stats")),
        ("model", model_block),
        ("serving", shared.metrics.snapshot()),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NclClient;
    use ncl_snn::{Network, NetworkConfig};
    use ncl_spike::SpikeRaster;

    fn start_server() -> Server {
        let network = Network::new(NetworkConfig::tiny(8, 3)).unwrap();
        let registry = Arc::new(ModelRegistry::new(network, "test"));
        Server::start(registry, ServerConfig::default()).unwrap()
    }

    #[test]
    fn serves_predict_stats_ping_over_tcp() {
        let server = start_server();
        let addr = server.local_addr();
        let mut client = NclClient::connect(addr).unwrap();

        let pong = client.ping().unwrap();
        assert_eq!(pong.get("op").and_then(Value::as_str), Some("pong"));

        let raster = SpikeRaster::from_fn(8, 10, |n, t| (n + t) % 2 == 0);
        let line = protocol::predict_request_line(5, &raster);
        let reply = client.round_trip(&line).unwrap();
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(reply.get("id").and_then(Value::as_u64), Some(5));
        let direct = server
            .registry()
            .current()
            .network
            .forward(&raster)
            .unwrap();
        let expected = ncl_tensor::ops::argmax(&direct).unwrap() as u64;
        assert_eq!(
            reply.get("prediction").and_then(Value::as_u64),
            Some(expected)
        );

        // Malformed line answers an error and keeps the connection alive.
        let err = client.round_trip(r#"{"op":"warp"}"#).unwrap();
        assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));

        let stats = client.stats().unwrap();
        assert_eq!(
            stats
                .get("serving")
                .and_then(|s| s.get("requests_ok"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            stats
                .get("model")
                .and_then(|m| m.get("input_size"))
                .and_then(Value::as_u64),
            Some(8)
        );

        server.shutdown();
    }

    #[test]
    fn metrics_op_scrapes_the_exposition() {
        let server = start_server();
        let mut client = NclClient::connect(server.local_addr()).unwrap();
        let raster = SpikeRaster::from_fn(8, 10, |n, t| (n + t) % 2 == 0);
        client.predict(1, &raster).unwrap();
        let reply = client.round_trip(r#"{"op":"metrics"}"#).unwrap();
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(reply.get("op").and_then(Value::as_str), Some("metrics"));
        assert_eq!(
            reply.get("format").and_then(Value::as_str),
            Some("prometheus-text-0.0.4")
        );
        let text = reply.get("exposition").and_then(Value::as_str).unwrap();
        assert!(text.contains("# TYPE serve_requests_ok_total counter"));
        assert!(text.contains("serve_requests_ok_total 1"));
        assert!(text.contains("# TYPE serve_latency_us histogram"));
        assert!(text.contains("serve_latency_us_count 1"));
        assert!(text.contains("serve_batches_total 1"));
        server.shutdown();
    }

    #[test]
    fn traced_predicts_surface_in_the_traces_op() {
        let server = start_server();
        let mut client = NclClient::connect(server.local_addr()).unwrap();
        let raster = SpikeRaster::from_fn(8, 10, |n, t| (n + t) % 2 == 0);
        let ctx = ncl_obs::TraceContext {
            trace_id: 0xabc,
            parent: None,
        };
        let reply = client.predict_traced(7, &raster, &ctx).unwrap();
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));

        let traces = client.traces(0, 16).unwrap();
        assert_eq!(traces.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(traces.get("stitched").and_then(Value::as_bool), Some(false));
        let list = traces.get("traces").and_then(Value::as_array).unwrap();
        assert_eq!(list.len(), 1, "first completed trace is always kept");
        assert_eq!(
            list[0].get("id").and_then(Value::as_str),
            Some("00000000000000000000000000000abc")
        );
        let spans = list[0].get("spans").and_then(Value::as_array).unwrap();
        let stages: Vec<&str> = spans
            .iter()
            .filter_map(|s| s.get("stage").and_then(Value::as_str))
            .collect();
        for expected in ["accept", "queue_wait", "forward", "reply"] {
            assert!(stages.contains(&expected), "missing {expected}: {stages:?}");
        }

        // The exemplar in stats points at the captured trace.
        let stats = client.stats().unwrap();
        let exemplar = stats
            .get("serving")
            .and_then(|s| s.get("latency_us"))
            .and_then(|l| l.get("exemplar"))
            .expect("latency exemplar after traced traffic");
        assert_eq!(
            exemplar.get("trace_id").and_then(Value::as_str),
            Some("00000000000000000000000000000abc")
        );
        server.shutdown();
    }

    #[test]
    fn health_and_replication_ops_without_a_handler() {
        let server = start_server();
        let mut client = NclClient::connect(server.local_addr()).unwrap();

        // Health works on any server and reports the standalone role.
        let health = client.round_trip(r#"{"op":"health"}"#).unwrap();
        assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            health.get("role").and_then(Value::as_str),
            Some("standalone")
        );
        assert_eq!(health.get("model_version").and_then(Value::as_u64), Some(1));

        // Replication ops are declined, and the connection stays open.
        for line in [
            r#"{"op":"delta","base_version":1}"#,
            r#"{"op":"apply_delta","payload":"00"}"#,
            r#"{"op":"checkpoint"}"#,
            r#"{"op":"apply_checkpoint","payload":"00"}"#,
        ] {
            let reply = client.round_trip(line).unwrap();
            assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));
            assert!(reply
                .get("error")
                .and_then(Value::as_str)
                .unwrap()
                .contains("replication"));
        }
        assert!(client.ping().is_ok(), "connection survived the declines");
        server.shutdown();
    }

    /// A handler stub: serves a fixed delta and mirrors applies into the
    /// registry, exercising the full wire path without ncl_online.
    struct StubSync {
        registry: Arc<ModelRegistry>,
    }

    impl ReplicaSync for StubSync {
        fn role(&self) -> &'static str {
            "follower"
        }
        fn health_extra(&self) -> Vec<(&'static str, Value)> {
            vec![("syncs", Value::from(7u64))]
        }
        fn fetch_delta(&self, base_version: u64) -> Result<(u64, Vec<u8>), ServeError> {
            if base_version == 1 {
                Ok((2, vec![0xAB, 0xCD]))
            } else {
                Err(ServeError::Replication {
                    detail: format!("no delta from v{base_version}"),
                })
            }
        }
        fn apply_delta(&self, payload: &[u8]) -> Result<u64, ServeError> {
            if payload == [0xAB, 0xCD] {
                let network = self.registry.current().network.clone();
                self.registry.swap_network_at(network, "delta-2", 2)
            } else {
                Err(ServeError::Replication {
                    detail: "bad payload".into(),
                })
            }
        }
        fn fetch_checkpoint(&self) -> Result<Vec<u8>, ServeError> {
            Ok(vec![0x01])
        }
        fn apply_checkpoint(&self, _payload: &[u8]) -> Result<u64, ServeError> {
            Ok(self.registry.version())
        }
    }

    #[test]
    fn replication_ops_reach_the_handler() {
        let network = Network::new(NetworkConfig::tiny(8, 3)).unwrap();
        let registry = Arc::new(ModelRegistry::new(network, "test"));
        let sync = Arc::new(StubSync {
            registry: Arc::clone(&registry),
        });
        let server =
            Server::start_with_sync(Arc::clone(&registry), ServerConfig::default(), Some(sync))
                .unwrap();
        let mut client = NclClient::connect(server.local_addr()).unwrap();

        let health = client.round_trip(r#"{"op":"health"}"#).unwrap();
        assert_eq!(health.get("role").and_then(Value::as_str), Some("follower"));
        assert_eq!(health.get("syncs").and_then(Value::as_u64), Some(7));

        let delta = client
            .round_trip(r#"{"op":"delta","base_version":1}"#)
            .unwrap();
        assert_eq!(delta.get("version").and_then(Value::as_u64), Some(2));
        let payload = delta.get("payload").and_then(Value::as_str).unwrap();
        assert_eq!(payload, "abcd");

        let applied = client
            .round_trip(&format!(r#"{{"op":"apply_delta","payload":"{payload}"}}"#))
            .unwrap();
        assert_eq!(applied.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            applied.get("model_version").and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(registry.version(), 2, "the apply really swapped");

        // A duplicate apply is refused as stale; the server keeps serving.
        let dup = client
            .round_trip(&format!(r#"{{"op":"apply_delta","payload":"{payload}"}}"#))
            .unwrap();
        assert_eq!(dup.get("ok").and_then(Value::as_bool), Some(false));
        assert!(dup
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("stale version"));

        let ckpt = client.round_trip(r#"{"op":"checkpoint"}"#).unwrap();
        assert_eq!(ckpt.get("payload").and_then(Value::as_str), Some("01"));

        server.shutdown();
    }

    #[test]
    fn client_shutdown_op_stops_the_server() {
        let server = start_server();
        let addr = server.local_addr();
        let mut client = NclClient::connect(addr).unwrap();
        let bye = client.shutdown().unwrap();
        assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
        // wait() returns because the client-triggered stop unblocked the
        // accept loop.
        server.wait();
    }
}
