//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Ops:
//!
//! | request | response |
//! |---|---|
//! | `{"op":"predict","id":7,"input":[[0,3],[1],[]]}` | `{"ok":true,"op":"predict","id":7,"prediction":2,"logits":[...],"model_version":3}` |
//! | `{"op":"stats"}` | `{"ok":true,"op":"stats","model":{...},"serving":{...}}` |
//! | `{"op":"metrics"}` | `{"ok":true,"op":"metrics","format":"prometheus-text-0.0.4","exposition":"..."}` |
//! | `{"op":"swap","path":"ckpt.bin"}` | `{"ok":true,"op":"swap","model_version":4}` |
//! | `{"op":"ping"}` | `{"ok":true,"op":"pong","model_version":3}` |
//! | `{"op":"shutdown"}` | `{"ok":true,"op":"shutdown"}` |
//! | `{"op":"health"}` | `{"ok":true,"op":"health","model_version":3,"role":"follower",...}` |
//! | `{"op":"delta","base_version":3}` | `{"ok":true,"op":"delta","version":4,"payload":"<hex>"}` |
//! | `{"op":"apply_delta","payload":"<hex>"}` | `{"ok":true,"op":"apply_delta","model_version":4}` |
//! | `{"op":"checkpoint"}` | `{"ok":true,"op":"checkpoint","payload":"<hex>"}` |
//! | `{"op":"apply_checkpoint","payload":"<hex>"}` | `{"ok":true,"op":"apply_checkpoint","model_version":4}` |
//! | `{"op":"promote","epoch":2}` | `{"ok":true,"op":"promote","epoch":2,"model_version":4}` |
//! | `{"op":"demote","epoch":2}` | `{"ok":true,"op":"demote","epoch":2,"model_version":4}` |
//! | `{"op":"join","addr":"127.0.0.1:7101"}` | `{"ok":true,"op":"join","id":3}` (router only) |
//! | `{"op":"leave","id":3}` | `{"ok":true,"op":"leave","id":3}` (router only) |
//! | `{"op":"members"}` | `{"ok":true,"op":"members","members":[...]}` (router only) |
//! | `{"op":"traces","min_duration_us":0,"limit":8}` | `{"ok":true,"op":"traces","stitched":false,"traces":[...]}` |
//!
//! Any request may carry an optional `"trace"` field —
//! `{"trace":{"id":"<32 hex>","parent":"<16 hex>"}}` — propagating a
//! distributed-trace context; peers that predate tracing ignore it.
//! The `traces` op returns recent tail-sampled traces: local fragments
//! from a replica (`"stitched":false`), fleet-stitched trees from the
//! router (`"stitched":true`).
//! `input` is the spike raster as one array per timestep listing the
//! active input-neuron indices at that step. Failures answer
//! `{"ok":false,"error":"...","id":...}` and keep the connection open;
//! only `shutdown` (or client EOF) closes it.
//!
//! The replication ops (`health`, `delta`, `apply_delta`, `checkpoint`,
//! `apply_checkpoint`, `promote`, `demote`) are answered only by
//! replicas started with a [`crate::sync::ReplicaSync`] handler; a
//! plain `ncl-serve` process declines them with a replication error.
//! The membership ops (`join`, `leave`, `members`) are answered by the
//! router alone — a replica parses them but declines, so a misdirected
//! join fails loudly instead of half-registering. The apply and
//! role-change ops optionally carry the fleet `epoch` that stamps them;
//! a replica fenced at a newer epoch refuses the stale write. Binary
//! payloads travel as lowercase hex — bulky, but dependency-free and
//! line-safe.

use std::collections::BTreeMap;

use ncl_obs::trace::{self, TraceContext, TraceFragment, TraceSpanRecord};
use ncl_spike::SpikeRaster;
use serde_json::Value;

use crate::error::ServeError;

/// Upper bound on request timesteps — a hostile request must not make
/// the worker allocate unbounded rasters.
pub const MAX_REQUEST_STEPS: usize = 4096;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run inference on one raster.
    Predict {
        /// Client-chosen id, echoed in the response.
        id: Option<u64>,
        /// The input spike raster.
        raster: SpikeRaster,
        /// Distributed-trace context propagated by the caller (the
        /// optional `"trace"` wire field; old peers never send it).
        trace: Option<TraceContext>,
    },
    /// Fetch serving statistics.
    Stats,
    /// Scrape the full metric registry as Prometheus-style text.
    Metrics,
    /// Hot-swap the serving model from a checkpoint file.
    Swap {
        /// Checkpoint path on the server's filesystem.
        path: String,
    },
    /// Liveness probe.
    Ping,
    /// Drain and stop the server.
    Shutdown,
    /// Replication probe: version, role and sync state.
    Health,
    /// Fetch the delta advancing a replica at `base_version`.
    DeltaFetch {
        /// The requesting replica's current version.
        base_version: u64,
    },
    /// Apply an encoded checkpoint delta (learner → follower push, or
    /// router-relayed).
    DeltaApply {
        /// The `ncl_online::delta` encoding.
        payload: Vec<u8>,
        /// The fleet epoch stamping this write (`None` = unfenced).
        epoch: Option<u64>,
    },
    /// Fetch the full checkpoint (delta fallback path).
    CheckpointFetch,
    /// Apply an encoded full checkpoint.
    CheckpointApply {
        /// The `ncl_online::checkpoint` encoding.
        payload: Vec<u8>,
        /// The fleet epoch stamping this write (`None` = unfenced).
        epoch: Option<u64>,
    },
    /// Promote this replica to the fleet's learner at `epoch`.
    Promote {
        /// The new fleet epoch the promotion establishes.
        epoch: u64,
    },
    /// Demote this replica to a follower under `epoch` (split-brain
    /// fencing: a returning old learner steps down).
    Demote {
        /// The fleet epoch forcing the demotion.
        epoch: u64,
    },
    /// Register a replica with the router (router-only op).
    Join {
        /// The joining replica's serve address, e.g. `127.0.0.1:7101`.
        addr: String,
    },
    /// Deregister a replica from the router (router-only op).
    Leave {
        /// The backend id the router assigned at join.
        id: u64,
    },
    /// List the router's current backends (router-only op).
    Members,
    /// Fetch recent tail-sampled traces (stitched fleet-wide when the
    /// router answers, local fragments when a replica does).
    Traces {
        /// Only traces at least this slow (µs); 0 = all.
        min_duration_us: u64,
        /// At most this many traces, newest/slowest first.
        limit: usize,
    },
}

/// Default `limit` for the `traces` op when the request omits it.
pub const DEFAULT_TRACES_LIMIT: usize = 32;

/// Renders bytes as lowercase hex (the wire form of binary payloads —
/// no base64 dependency in the tree).
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from(DIGITS[usize::from(b >> 4)]));
        out.push(char::from(DIGITS[usize::from(b & 0xF)]));
    }
    out
}

/// Decodes the hex produced by [`to_hex`] (case-insensitive).
///
/// # Errors
///
/// Returns [`ServeError::InvalidRequest`] for odd lengths or non-hex
/// characters.
pub fn from_hex(hex: &str) -> Result<Vec<u8>, ServeError> {
    if !hex.len().is_multiple_of(2) {
        return Err(invalid(format!("odd hex length {}", hex.len())));
    }
    let mut out = Vec::with_capacity(hex.len() / 2);
    let nibble = |c: u8| -> Result<u8, ServeError> {
        (c as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| invalid(format!("non-hex character {:?}", c as char)))
    };
    let mut digits = hex.bytes();
    while let (Some(hi), Some(lo)) = (digits.next(), digits.next()) {
        out.push((nibble(hi)? << 4) | nibble(lo)?);
    }
    Ok(out)
}

fn invalid(detail: impl Into<String>) -> ServeError {
    ServeError::InvalidRequest {
        detail: detail.into(),
    }
}

/// Parses one request line against the serving model's input width.
///
/// # Errors
///
/// Returns [`ServeError::InvalidRequest`] describing the first problem
/// (bad JSON, unknown op, missing fields, out-of-range spike indices,
/// too many timesteps).
pub fn parse_request(line: &str, input_size: usize) -> Result<Request, ServeError> {
    let value = serde_json::from_str(line).map_err(|e| invalid(format!("bad JSON: {e}")))?;
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| invalid("missing \"op\" field"))?;
    match op {
        "predict" => {
            let id = value.get("id").and_then(Value::as_u64);
            let steps = value
                .get("input")
                .and_then(Value::as_array)
                .ok_or_else(|| invalid("predict needs \"input\": [[neuron indices] per step]"))?;
            if steps.is_empty() {
                return Err(invalid("input must have at least one timestep"));
            }
            if steps.len() > MAX_REQUEST_STEPS {
                return Err(invalid(format!(
                    "input has {} timesteps (limit {MAX_REQUEST_STEPS})",
                    steps.len()
                )));
            }
            let mut raster = SpikeRaster::new(input_size, steps.len());
            for (t, step) in steps.iter().enumerate() {
                let active = step
                    .as_array()
                    .ok_or_else(|| invalid(format!("step {t} is not an array")))?;
                for idx in active {
                    let n = idx
                        .as_u64()
                        .ok_or_else(|| invalid(format!("step {t} holds a non-integer index")))?
                        as usize;
                    if n >= input_size {
                        return Err(invalid(format!(
                            "neuron index {n} at step {t} outside 0..{input_size}"
                        )));
                    }
                    raster.set(n, t, true);
                }
            }
            Ok(Request::Predict {
                id,
                raster,
                trace: parse_trace(&value)?,
            })
        }
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "swap" => {
            let path = value
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| invalid("swap needs \"path\""))?;
            Ok(Request::Swap {
                path: path.to_owned(),
            })
        }
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "health" => Ok(Request::Health),
        "delta" => {
            let base_version = value
                .get("base_version")
                .and_then(Value::as_u64)
                .ok_or_else(|| invalid("delta needs \"base_version\""))?;
            Ok(Request::DeltaFetch { base_version })
        }
        "apply_delta" => Ok(Request::DeltaApply {
            payload: payload_field(&value, "apply_delta")?,
            epoch: value.get("epoch").and_then(Value::as_u64),
        }),
        "checkpoint" => Ok(Request::CheckpointFetch),
        "apply_checkpoint" => Ok(Request::CheckpointApply {
            payload: payload_field(&value, "apply_checkpoint")?,
            epoch: value.get("epoch").and_then(Value::as_u64),
        }),
        "promote" => Ok(Request::Promote {
            epoch: epoch_field(&value, "promote")?,
        }),
        "demote" => Ok(Request::Demote {
            epoch: epoch_field(&value, "demote")?,
        }),
        "join" => {
            let addr = value
                .get("addr")
                .and_then(Value::as_str)
                .ok_or_else(|| invalid("join needs \"addr\""))?;
            Ok(Request::Join {
                addr: addr.to_owned(),
            })
        }
        "leave" => {
            let id = value
                .get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| invalid("leave needs \"id\""))?;
            Ok(Request::Leave { id })
        }
        "members" => Ok(Request::Members),
        "traces" => {
            let min_duration_us = value.get("min_duration_us").and_then(Value::as_u64);
            let limit = value
                .get("limit")
                .and_then(Value::as_u64)
                .map_or(DEFAULT_TRACES_LIMIT, |l| l as usize);
            Ok(Request::Traces {
                min_duration_us: min_duration_us.unwrap_or(0),
                limit,
            })
        }
        other => Err(invalid(format!("unknown op {other:?}"))),
    }
}

/// Extracts the optional `"trace"` field of a request:
/// `{"trace":{"id":"<32 hex>","parent":"<16 hex>"}}` (`parent` itself
/// optional). A missing field is `Ok(None)`; a malformed one is an
/// error — a peer that *tries* to propagate context must not fail
/// silently into broken traces.
///
/// # Errors
///
/// Returns [`ServeError::InvalidRequest`] when the field is present but
/// not an object, or its ids do not parse as fixed-width hex.
pub fn parse_trace(value: &Value) -> Result<Option<TraceContext>, ServeError> {
    let Some(field) = value.get("trace") else {
        return Ok(None);
    };
    let id = field
        .get("id")
        .and_then(Value::as_str)
        .ok_or_else(|| invalid("trace needs \"id\" (32 hex digits)"))?;
    let trace_id = trace::parse_trace_id(id)
        .ok_or_else(|| invalid(format!("bad trace id {id:?} (want 32 hex digits)")))?;
    let parent = match field.get("parent") {
        None => None,
        Some(parent) => {
            let hex = parent
                .as_str()
                .ok_or_else(|| invalid("trace \"parent\" must be a string"))?;
            Some(trace::parse_span_id(hex).ok_or_else(|| {
                invalid(format!("bad parent span id {hex:?} (want 16 hex digits)"))
            })?)
        }
    };
    Ok(Some(TraceContext { trace_id, parent }))
}

/// The wire form of a trace context (the `"trace"` field value).
#[must_use]
pub fn trace_value(ctx: &TraceContext) -> Value {
    let mut pairs = vec![("id", Value::from(trace::trace_id_hex(ctx.trace_id)))];
    if let Some(parent) = ctx.parent {
        pairs.push(("parent", Value::from(trace::span_id_hex(parent))));
    }
    object(pairs)
}

/// Re-stamps a request line with `ctx` as its `"trace"` field — the
/// propagation helper every hop that forwards a request downstream
/// while holding a live span must use (the `trace-propagation` lint
/// rule checks for it). Non-object lines pass through unchanged.
#[must_use]
pub fn traced_line(line: &str, ctx: &TraceContext) -> String {
    match serde_json::from_str(line) {
        Ok(Value::Object(mut map)) => {
            map.insert("trace".to_owned(), trace_value(ctx));
            Value::Object(map).to_json()
        }
        _ => line.to_owned(),
    }
}

/// Extracts and hex-decodes the `payload` field of an apply op.
fn payload_field(value: &Value, op: &str) -> Result<Vec<u8>, ServeError> {
    let hex = value
        .get("payload")
        .and_then(Value::as_str)
        .ok_or_else(|| invalid(format!("{op} needs \"payload\" (hex)")))?;
    from_hex(hex)
}

/// Extracts the mandatory `epoch` field of a role-change op.
fn epoch_field(value: &Value, op: &str) -> Result<u64, ServeError> {
    value
        .get("epoch")
        .and_then(Value::as_u64)
        .ok_or_else(|| invalid(format!("{op} needs \"epoch\"")))
}

/// Builds a JSON object from key/value pairs (insertion into the sorted
/// map, so rendering is deterministic).
#[must_use]
pub fn object(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// Renders a predict request line (the client side; `ncl-loadgen` and the
/// integration tests use this).
#[must_use]
pub fn predict_request_line(id: u64, raster: &SpikeRaster) -> String {
    let steps: Value = (0..raster.steps())
        .map(|t| raster.active_at(t).map(Value::from).collect::<Value>())
        .collect();
    object(vec![
        ("op", Value::from("predict")),
        ("id", Value::from(id)),
        ("input", steps),
    ])
    .to_json()
}

/// Renders a predict request line carrying a trace context (the
/// tracing-enabled client side: `ncl-loadgen --trace` and
/// [`crate::client::NclClient::predict_traced`]).
#[must_use]
pub fn predict_request_line_traced(id: u64, raster: &SpikeRaster, ctx: &TraceContext) -> String {
    traced_line(&predict_request_line(id, raster), ctx)
}

/// Renders a successful predict response line.
#[must_use]
pub fn predict_response(
    id: Option<u64>,
    prediction: usize,
    logits: &[f32],
    model_version: u64,
) -> String {
    let mut pairs = vec![
        ("ok", Value::from(true)),
        ("op", Value::from("predict")),
        ("prediction", Value::from(prediction)),
        ("logits", logits.iter().copied().collect::<Value>()),
        ("model_version", Value::from(model_version)),
    ];
    if let Some(id) = id {
        pairs.push(("id", Value::from(id)));
    }
    object(pairs).to_json()
}

/// Renders the `metrics` op response around a rendered text
/// exposition (shared by the serve and router front ends).
#[must_use]
pub fn metrics_response(exposition: &str) -> String {
    object(vec![
        ("ok", Value::from(true)),
        ("op", Value::from("metrics")),
        ("format", Value::from("prometheus-text-0.0.4")),
        ("exposition", Value::from(exposition)),
    ])
    .to_json()
}

/// The wire form of one recorded span.
fn span_value(span: &TraceSpanRecord) -> Value {
    let mut pairs = vec![
        ("id", Value::from(trace::span_id_hex(span.span_id))),
        ("stage", Value::from(span.stage.as_str())),
        ("start_us", Value::from(span.start_us)),
        ("duration_us", Value::from(span.duration_us)),
    ];
    if let Some(parent) = span.parent {
        pairs.push(("parent", Value::from(trace::span_id_hex(parent))));
    }
    if !span.links.is_empty() {
        pairs.push((
            "links",
            span.links
                .iter()
                .map(|l| Value::from(trace::span_id_hex(*l)))
                .collect::<Value>(),
        ));
    }
    object(pairs)
}

/// Renders the `traces` op response for one node's local fragments
/// (newest first, as [`ncl_obs::Tracer::recent`] returns them).
#[must_use]
pub fn traces_response(fragments: &[TraceFragment]) -> String {
    let traces: Value = fragments
        .iter()
        .map(|fragment| {
            object(vec![
                ("id", Value::from(trace::trace_id_hex(fragment.trace_id))),
                ("root_duration_us", Value::from(fragment.root_duration_us())),
                (
                    "spans",
                    fragment.spans.iter().map(span_value).collect::<Value>(),
                ),
            ])
        })
        .collect();
    object(vec![
        ("ok", Value::from(true)),
        ("op", Value::from("traces")),
        ("stitched", Value::from(false)),
        ("traces", traces),
    ])
    .to_json()
}

/// Renders the router's `traces` response: fleet-stitched trees,
/// slowest first, each span tagged with the node that recorded it.
#[must_use]
pub fn stitched_traces_response(traces: &[ncl_obs::StitchedTrace]) -> String {
    let rendered: Value = traces
        .iter()
        .map(|trace| {
            let spans: Value = trace
                .spans
                .iter()
                .map(|span| {
                    let mut pairs = vec![
                        ("id", Value::from(trace::span_id_hex(span.span_id))),
                        ("node", Value::from(span.node.as_str())),
                        ("stage", Value::from(span.stage.as_str())),
                        ("start_us", Value::from(span.start_us)),
                        ("duration_us", Value::from(span.duration_us)),
                        ("depth", Value::from(span.depth)),
                    ];
                    if let Some(parent) = span.parent {
                        pairs.push(("parent", Value::from(trace::span_id_hex(parent))));
                    }
                    if !span.links.is_empty() {
                        pairs.push((
                            "links",
                            span.links
                                .iter()
                                .map(|l| Value::from(trace::span_id_hex(*l)))
                                .collect::<Value>(),
                        ));
                    }
                    object(pairs)
                })
                .collect();
            object(vec![
                ("id", Value::from(trace::trace_id_hex(trace.trace_id))),
                ("root", Value::from(trace::span_id_hex(trace.root))),
                ("duration_us", Value::from(trace.duration_us)),
                ("orphan_spans", Value::from(trace.orphan_spans)),
                ("spans", spans),
            ])
        })
        .collect();
    object(vec![
        ("ok", Value::from(true)),
        ("op", Value::from("traces")),
        ("stitched", Value::from(true)),
        ("traces", rendered),
    ])
    .to_json()
}

/// Parses a node's [`traces_response`] back into fragments (the router
/// does this when assembling the fleet view). Lenient: malformed spans
/// or traces are skipped rather than failing the whole assembly — one
/// replica's bad reply must not hide every other node's fragments.
#[must_use]
pub fn parse_traces_response(value: &Value) -> Vec<TraceFragment> {
    let Some(traces) = value.get("traces").and_then(Value::as_array) else {
        return Vec::new();
    };
    traces
        .iter()
        .filter_map(|entry| {
            let trace_id = trace::parse_trace_id(entry.get("id").and_then(Value::as_str)?)?;
            let spans = entry
                .get("spans")
                .and_then(Value::as_array)?
                .iter()
                .filter_map(|span| parse_span(trace_id, span))
                .collect::<Vec<_>>();
            if spans.is_empty() {
                return None;
            }
            Some(TraceFragment { trace_id, spans })
        })
        .collect()
}

fn parse_span(trace_id: u128, span: &Value) -> Option<TraceSpanRecord> {
    let span_id = trace::parse_span_id(span.get("id").and_then(Value::as_str)?)?;
    let parent = match span.get("parent") {
        None => None,
        Some(parent) => Some(trace::parse_span_id(parent.as_str()?)?),
    };
    let links = span
        .get("links")
        .and_then(Value::as_array)
        .map(|links| {
            links
                .iter()
                .filter_map(|l| trace::parse_span_id(l.as_str()?))
                .collect()
        })
        .unwrap_or_default();
    Some(TraceSpanRecord {
        trace_id,
        span_id,
        parent,
        stage: span.get("stage").and_then(Value::as_str)?.to_owned(),
        start_us: span.get("start_us").and_then(Value::as_u64)?,
        duration_us: span.get("duration_us").and_then(Value::as_u64)?,
        links,
    })
}

/// Renders an error response line.
#[must_use]
pub fn error_response(id: Option<u64>, error: &ServeError) -> String {
    let mut pairs = vec![
        ("ok", Value::from(false)),
        ("error", Value::from(error.to_string())),
    ];
    if let Some(id) = id {
        pairs.push(("id", Value::from(id)));
    }
    object(pairs).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_predict_and_round_trips_raster() {
        let mut raster = SpikeRaster::new(5, 3);
        raster.set(0, 0, true);
        raster.set(3, 0, true);
        raster.set(1, 2, true);
        let line = predict_request_line(9, &raster);
        match parse_request(&line, 5).unwrap() {
            Request::Predict {
                id,
                raster: parsed,
                trace,
            } => {
                assert_eq!(id, Some(9));
                assert_eq!(parsed, raster);
                assert_eq!(trace, None);
            }
            other => panic!("expected predict, got {other:?}"),
        }
    }

    #[test]
    fn predict_trace_context_round_trips() {
        let raster = {
            let mut r = SpikeRaster::new(4, 1);
            r.set(2, 0, true);
            r
        };
        let ctx = TraceContext {
            trace_id: 0x00ff_0000_0000_0000_0000_0000_0000_00aau128,
            parent: Some(0x1234),
        };
        let line = predict_request_line_traced(3, &raster, &ctx);
        match parse_request(&line, 4).unwrap() {
            Request::Predict { trace, .. } => assert_eq!(trace, Some(ctx)),
            other => panic!("expected predict, got {other:?}"),
        }
        // Root context: no parent field on the wire.
        let root = TraceContext {
            trace_id: 7,
            parent: None,
        };
        let line = predict_request_line_traced(3, &raster, &root);
        assert!(!line.contains("parent"));
        match parse_request(&line, 4).unwrap() {
            Request::Predict { trace, .. } => assert_eq!(trace, Some(root)),
            other => panic!("expected predict, got {other:?}"),
        }
    }

    #[test]
    fn malformed_trace_contexts_are_rejected_not_ignored() {
        for line in [
            r#"{"op":"predict","input":[[1]],"trace":5}"#,
            r#"{"op":"predict","input":[[1]],"trace":{}}"#,
            r#"{"op":"predict","input":[[1]],"trace":{"id":"xyz"}}"#,
            r#"{"op":"predict","input":[[1]],"trace":{"id":"00000000000000000000000000000007","parent":"zz"}}"#,
        ] {
            assert!(
                matches!(
                    parse_request(line, 4),
                    Err(ServeError::InvalidRequest { .. })
                ),
                "{line} should be rejected"
            );
        }
    }

    #[test]
    fn parses_traces_op_with_defaults() {
        assert_eq!(
            parse_request(r#"{"op":"traces"}"#, 4).unwrap(),
            Request::Traces {
                min_duration_us: 0,
                limit: DEFAULT_TRACES_LIMIT
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"traces","min_duration_us":500,"limit":3}"#, 4).unwrap(),
            Request::Traces {
                min_duration_us: 500,
                limit: 3
            }
        );
    }

    #[test]
    fn traces_response_round_trips_fragments() {
        let fragment = TraceFragment {
            trace_id: 0xabcd,
            spans: vec![
                TraceSpanRecord {
                    trace_id: 0xabcd,
                    span_id: 2,
                    parent: Some(1),
                    stage: "queue_wait".to_owned(),
                    start_us: 10,
                    duration_us: 40,
                    links: vec![5, 6],
                },
                TraceSpanRecord {
                    trace_id: 0xabcd,
                    span_id: 1,
                    parent: None,
                    stage: "accept".to_owned(),
                    start_us: 5,
                    duration_us: 90,
                    links: Vec::new(),
                },
            ],
        };
        let line = traces_response(std::slice::from_ref(&fragment));
        let value = serde_json::from_str(&line).unwrap();
        assert_eq!(value.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(value.get("stitched").and_then(Value::as_bool), Some(false));
        let parsed = parse_traces_response(&value);
        assert_eq!(parsed, vec![fragment]);
    }

    #[test]
    fn traced_line_is_idempotent_and_preserves_other_fields() {
        let ctx = TraceContext {
            trace_id: 3,
            parent: Some(9),
        };
        let once = traced_line(r#"{"op":"predict","id":4,"input":[[0]]}"#, &ctx);
        let newer = TraceContext {
            trace_id: 3,
            parent: Some(10),
        };
        let twice = traced_line(&once, &newer);
        let value = serde_json::from_str(&twice).unwrap();
        assert_eq!(value.get("id").and_then(Value::as_u64), Some(4));
        assert_eq!(
            value
                .get("trace")
                .and_then(|t| t.get("parent"))
                .and_then(Value::as_str),
            Some("000000000000000a"),
            "re-stamping replaces the context rather than nesting it"
        );
        assert_eq!(traced_line("not json", &ctx), "not json");
    }

    #[test]
    fn parses_control_ops() {
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#, 4).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#, 4).unwrap(),
            Request::Metrics
        );
        assert_eq!(parse_request(r#"{"op":"ping"}"#, 4).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#, 4).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"op":"swap","path":"m.bin"}"#, 4).unwrap(),
            Request::Swap {
                path: "m.bin".into()
            }
        );
    }

    #[test]
    fn parses_replication_ops() {
        assert_eq!(
            parse_request(r#"{"op":"health"}"#, 4).unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_request(r#"{"op":"delta","base_version":3}"#, 4).unwrap(),
            Request::DeltaFetch { base_version: 3 }
        );
        assert_eq!(
            parse_request(r#"{"op":"apply_delta","payload":"00ffA5"}"#, 4).unwrap(),
            Request::DeltaApply {
                payload: vec![0x00, 0xFF, 0xA5],
                epoch: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"apply_delta","payload":"00","epoch":3}"#, 4).unwrap(),
            Request::DeltaApply {
                payload: vec![0x00],
                epoch: Some(3)
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"checkpoint"}"#, 4).unwrap(),
            Request::CheckpointFetch
        );
        assert_eq!(
            parse_request(r#"{"op":"apply_checkpoint","payload":""}"#, 4).unwrap(),
            Request::CheckpointApply {
                payload: vec![],
                epoch: None
            }
        );
    }

    #[test]
    fn parses_membership_and_role_ops() {
        assert_eq!(
            parse_request(r#"{"op":"join","addr":"127.0.0.1:7101"}"#, 4).unwrap(),
            Request::Join {
                addr: "127.0.0.1:7101".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"leave","id":3}"#, 4).unwrap(),
            Request::Leave { id: 3 }
        );
        assert_eq!(
            parse_request(r#"{"op":"members"}"#, 4).unwrap(),
            Request::Members
        );
        assert_eq!(
            parse_request(r#"{"op":"promote","epoch":2}"#, 4).unwrap(),
            Request::Promote { epoch: 2 }
        );
        assert_eq!(
            parse_request(r#"{"op":"demote","epoch":5}"#, 4).unwrap(),
            Request::Demote { epoch: 5 }
        );
        for line in [
            r#"{"op":"join"}"#,
            r#"{"op":"leave"}"#,
            r#"{"op":"promote"}"#,
            r#"{"op":"demote"}"#,
        ] {
            assert!(
                matches!(
                    parse_request(line, 4),
                    Err(ServeError::InvalidRequest { .. })
                ),
                "{line} should be rejected"
            );
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(to_hex(&[0xDE, 0xAD]), "dead");
        assert!(from_hex("abc").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "non-hex digit");
        assert!(from_hex("0x").is_err(), "non-hex digit");
    }

    #[test]
    fn rejects_malformed_requests() {
        let cases = [
            "not json",
            r#"{"id":1}"#,
            r#"{"op":"teleport"}"#,
            r#"{"op":"predict"}"#,
            r#"{"op":"predict","input":[]}"#,
            r#"{"op":"predict","input":[3]}"#,
            r#"{"op":"predict","input":[["x"]]}"#,
            r#"{"op":"predict","input":[[7]]}"#,
            r#"{"op":"swap"}"#,
            r#"{"op":"delta"}"#,
            r#"{"op":"apply_delta"}"#,
            r#"{"op":"apply_delta","payload":"xyz"}"#,
            r#"{"op":"apply_checkpoint","payload":5}"#,
        ];
        for line in cases {
            assert!(
                matches!(
                    parse_request(line, 4),
                    Err(ServeError::InvalidRequest { .. })
                ),
                "{line} should be rejected"
            );
        }
    }

    #[test]
    fn caps_request_steps() {
        let huge = format!(
            r#"{{"op":"predict","input":[{}]}}"#,
            vec!["[]"; MAX_REQUEST_STEPS + 1].join(",")
        );
        assert!(parse_request(&huge, 4).is_err());
    }

    #[test]
    fn responses_are_single_parseable_lines() {
        let ok = predict_response(Some(3), 1, &[0.5, -1.25], 7);
        assert!(!ok.contains('\n'));
        let parsed = serde_json::from_str(&ok).unwrap();
        assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(parsed.get("prediction").and_then(Value::as_u64), Some(1));
        assert_eq!(parsed.get("model_version").and_then(Value::as_u64), Some(7));
        assert_eq!(parsed.get("id").and_then(Value::as_u64), Some(3));
        assert_eq!(
            parsed.get("logits").and_then(Value::as_array).map(Vec::len),
            Some(2)
        );

        let err = error_response(None, &ServeError::ShuttingDown);
        let parsed = serde_json::from_str(&err).unwrap();
        assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(false));
        assert!(parsed
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("shutting down"));
    }
}
