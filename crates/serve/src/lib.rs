//! **ncl-serve** — a concurrent, hot-swappable inference service for
//! Replay4NCL models.
//!
//! The paper's end goal is an embedded system that keeps *operating*
//! while it learns: latent replay exists so a deployed SNN can absorb a
//! new class without going offline (Pellegrini et al. frame latent
//! replay explicitly as a real-time serving capability). This crate is
//! that serving layer:
//!
//! * [`registry::ModelRegistry`] — the atomic hot-swap slot. A
//!   continual-learning increment produces a new network; swapping it in
//!   is a pointer exchange, versioned and shape-checked, that never
//!   disturbs an in-flight batch.
//! * [`batcher::Batcher`] — the micro-batching scheduler. Requests from
//!   all connections stream into a sharded work queue (the
//!   [`ncl_runtime::queue::ShardedQueue`] in streaming form); workers
//!   collect up to `batch_size` requests (waiting at most `max_wait`),
//!   run **one** batched forward pass, and fan results back.
//! * [`server::Server`] — the TCP front end speaking newline-delimited
//!   JSON on localhost (see [`protocol`] for the schema).
//! * [`metrics::Metrics`] — p50/p95/p99 latency histogram + throughput
//!   counters behind the `stats` op, registered in an
//!   [`ncl_obs::Registry`] and scrapeable as Prometheus text via the
//!   `metrics` op.
//!
//! # Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use ncl_serve::registry::ModelRegistry;
//! use ncl_serve::server::{Server, ServerConfig};
//! use ncl_snn::{Network, NetworkConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let network = Network::new(NetworkConfig::tiny(48, 4))?;
//! let registry = Arc::new(ModelRegistry::new(network, "initial"));
//! let server = Server::start(Arc::clone(&registry), ServerConfig::default())?;
//! println!("serving on {}", server.local_addr());
//! // ... later, after a continual-learning increment:
//! // registry.swap_network(updated_network, "increment-1")?;
//! server.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! The `ncl-serve` binary wraps this into a process; `ncl-loadgen`
//! drives it and records `BENCH_serve.json` (latency percentiles,
//! requests/s, hot-swap outcome).

pub mod batcher;
pub mod client;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod sync;

pub use batcher::{BatchConfig, Batcher, PredictReply};
pub use client::{ClientConfig, NclClient};
pub use error::ServeError;
pub use metrics::Metrics;
pub use registry::{ModelRegistry, ServingModel};
pub use server::{Server, ServerConfig};
pub use sync::ReplicaSync;
