//! A minimal blocking client for the NDJSON protocol — the one
//! implementation `ncl-loadgen`, the integration tests and the examples
//! all share.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ncl_spike::SpikeRaster;
use serde_json::Value;

use crate::protocol;

/// One blocking NDJSON connection to an `ncl-serve` instance.
pub struct NclClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl NclClient {
    /// Connects (with `TCP_NODELAY`, so single-line round trips do not
    /// stall behind Nagle).
    ///
    /// # Errors
    ///
    /// Returns the connect/setup error.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NclClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(NclClient { stream, reader })
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Returns socket failures, or `InvalidData` for an unparseable
    /// response.
    pub fn round_trip(&mut self, line: &str) -> std::io::Result<Value> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut response = String::new();
        self.reader.read_line(&mut response)?;
        serde_json::from_str(response.trim()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })
    }

    /// Predict round trip for one raster.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn predict(&mut self, id: u64, raster: &SpikeRaster) -> std::io::Result<Value> {
        self.round_trip(&protocol::predict_request_line(id, raster))
    }

    /// Stats round trip.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn stats(&mut self) -> std::io::Result<Value> {
        self.round_trip(r#"{"op":"stats"}"#)
    }

    /// Hot-swap round trip (checkpoint path on the server's filesystem).
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn swap(&mut self, path: &str) -> std::io::Result<Value> {
        let line = protocol::object(vec![
            ("op", Value::from("swap")),
            ("path", Value::from(path)),
        ])
        .to_json();
        self.round_trip(&line)
    }

    /// Liveness round trip.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn ping(&mut self) -> std::io::Result<Value> {
        self.round_trip(r#"{"op":"ping"}"#)
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn shutdown(&mut self) -> std::io::Result<Value> {
        self.round_trip(r#"{"op":"shutdown"}"#)
    }
}
