//! A minimal blocking client for the NDJSON protocol — the one
//! implementation `ncl-loadgen`, the integration tests and the examples
//! all share.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ncl_spike::SpikeRaster;
use serde_json::Value;

use crate::protocol;

/// Socket timeout policy for one client connection.
///
/// The default applies no timeouts (matching the historical behavior
/// of in-process tests, where a hung server would fail the test
/// harness anyway). Anything talking to a *remote* replica — the
/// router's fan-out, `ncl-loadgen` — should set timeouts so one hung
/// peer cannot wedge the caller forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientConfig {
    /// Cap on establishing the TCP connection (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Cap on waiting for a response line (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Cap on writing a request line (`None` = block forever).
    pub write_timeout: Option<Duration>,
}

impl ClientConfig {
    /// The same cap on connect, read and write.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> Self {
        ClientConfig {
            connect_timeout: Some(timeout),
            read_timeout: Some(timeout),
            write_timeout: Some(timeout),
        }
    }
}

/// Maps a socket timeout (surfaced by the OS as `WouldBlock` or
/// `TimedOut` depending on platform) onto a uniform `TimedOut` error
/// naming the peer — so callers can tell "replica hung" apart from
/// "replica refused".
fn mark_timeout(e: std::io::Error, peer: &str, doing: &str) -> std::io::Error {
    if matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ) {
        std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("timed out {doing} {peer}"),
        )
    } else {
        e
    }
}

/// One blocking NDJSON connection to an `ncl-serve` instance.
#[derive(Debug)]
pub struct NclClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    peer: String,
}

impl NclClient {
    /// Connects with no socket timeouts (and `TCP_NODELAY`, so
    /// single-line round trips do not stall behind Nagle).
    ///
    /// # Errors
    ///
    /// Returns the connect/setup error.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NclClient> {
        NclClient::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit timeout policy.
    ///
    /// # Errors
    ///
    /// Returns the connect/setup error; a connect timeout surfaces as
    /// `ErrorKind::TimedOut`.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> std::io::Result<NclClient> {
        let stream = match config.connect_timeout {
            None => TcpStream::connect(&addr)?,
            Some(timeout) => {
                // connect_timeout needs a resolved SocketAddr; try each.
                let mut last = None;
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                connected.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to nothing",
                        )
                    })
                })?
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "peer".to_owned(), |a| a.to_string());
        let reader = BufReader::new(stream.try_clone()?);
        Ok(NclClient {
            stream,
            reader,
            peer,
        })
    }

    /// Sends one request line and reads one response line.
    ///
    /// After a `TimedOut` error the connection may hold a partial
    /// request or response and must be discarded, not reused.
    ///
    /// # Errors
    ///
    /// Returns socket failures (`ErrorKind::TimedOut` when a configured
    /// timeout elapsed), or `InvalidData` for an unparseable response.
    pub fn round_trip(&mut self, line: &str) -> std::io::Result<Value> {
        let send = |stream: &mut TcpStream| -> std::io::Result<()> {
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
            stream.flush()
        };
        send(&mut self.stream).map_err(|e| mark_timeout(e, &self.peer, "writing to"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| mark_timeout(e, &self.peer, "awaiting a reply from"))?;
        serde_json::from_str(response.trim()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })
    }

    /// Predict round trip for one raster.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn predict(&mut self, id: u64, raster: &SpikeRaster) -> std::io::Result<Value> {
        self.round_trip(&protocol::predict_request_line(id, raster))
    }

    /// Predict round trip carrying a trace context, so the server's
    /// accept/queue-wait/forward/reply spans join the caller's trace.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn predict_traced(
        &mut self,
        id: u64,
        raster: &SpikeRaster,
        ctx: &ncl_obs::TraceContext,
    ) -> std::io::Result<Value> {
        self.round_trip(&protocol::predict_request_line_traced(id, raster, ctx))
    }

    /// Fetches recent kept trace fragments (`traces` op), filtered to
    /// root durations of at least `min_duration_us`, newest first,
    /// capped at `limit`.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn traces(&mut self, min_duration_us: u64, limit: usize) -> std::io::Result<Value> {
        let line = protocol::object(vec![
            ("op", Value::from("traces")),
            ("min_duration_us", Value::from(min_duration_us)),
            ("limit", Value::from(limit as u64)),
        ])
        .to_json();
        self.round_trip(&line)
    }

    /// Stats round trip.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn stats(&mut self) -> std::io::Result<Value> {
        self.round_trip(r#"{"op":"stats"}"#)
    }

    /// Hot-swap round trip (checkpoint path on the server's filesystem).
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn swap(&mut self, path: &str) -> std::io::Result<Value> {
        let line = protocol::object(vec![
            ("op", Value::from("swap")),
            ("path", Value::from(path)),
        ])
        .to_json();
        self.round_trip(&line)
    }

    /// Liveness round trip.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn ping(&mut self) -> std::io::Result<Value> {
        self.round_trip(r#"{"op":"ping"}"#)
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn shutdown(&mut self) -> std::io::Result<Value> {
        self.round_trip(r#"{"op":"shutdown"}"#)
    }

    /// Scrapes the metric registry (`metrics` op).
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn metrics(&mut self) -> std::io::Result<Value> {
        self.round_trip(r#"{"op":"metrics"}"#)
    }

    /// Replication health probe: role, version and sync stats.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn health(&mut self) -> std::io::Result<Value> {
        self.round_trip(r#"{"op":"health"}"#)
    }

    /// Fetches the delta advancing a replica that holds `base_version`.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn delta(&mut self, base_version: u64) -> std::io::Result<Value> {
        let line = protocol::object(vec![
            ("op", Value::from("delta")),
            ("base_version", Value::from(base_version)),
        ])
        .to_json();
        self.round_trip(&line)
    }

    /// Applies an encoded checkpoint delta to the server's model.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn apply_delta(&mut self, payload: &[u8]) -> std::io::Result<Value> {
        let line = protocol::object(vec![
            ("op", Value::from("apply_delta")),
            ("payload", Value::from(protocol::to_hex(payload))),
        ])
        .to_json();
        self.round_trip(&line)
    }

    /// Fetches the server's full checkpoint encoding.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn checkpoint(&mut self) -> std::io::Result<Value> {
        self.round_trip(r#"{"op":"checkpoint"}"#)
    }

    /// Applies an encoded full checkpoint to the server's model.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn apply_checkpoint(&mut self, payload: &[u8]) -> std::io::Result<Value> {
        let line = protocol::object(vec![
            ("op", Value::from("apply_checkpoint")),
            ("payload", Value::from(protocol::to_hex(payload))),
        ])
        .to_json();
        self.round_trip(&line)
    }

    /// Promotes the replica to the fleet's learner under a new fleet
    /// epoch.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn promote(&mut self, epoch: u64) -> std::io::Result<Value> {
        let line = protocol::object(vec![
            ("op", Value::from("promote")),
            ("epoch", Value::from(epoch)),
        ])
        .to_json();
        self.round_trip(&line)
    }

    /// Demotes the replica back to a follower under `epoch`.
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn demote(&mut self, epoch: u64) -> std::io::Result<Value> {
        let line = protocol::object(vec![
            ("op", Value::from("demote")),
            ("epoch", Value::from(epoch)),
        ])
        .to_json();
        self.round_trip(&line)
    }

    /// Registers a replica address with the router (router op).
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn join(&mut self, addr: &str) -> std::io::Result<Value> {
        let line = protocol::object(vec![
            ("op", Value::from("join")),
            ("addr", Value::from(addr)),
        ])
        .to_json();
        self.round_trip(&line)
    }

    /// Deregisters backend `id` from the router (router op).
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn leave(&mut self, id: u64) -> std::io::Result<Value> {
        let line =
            protocol::object(vec![("op", Value::from("leave")), ("id", Value::from(id))]).to_json();
        self.round_trip(&line)
    }

    /// Lists the router's current backends (router op).
    ///
    /// # Errors
    ///
    /// As [`NclClient::round_trip`].
    pub fn members(&mut self) -> std::io::Result<Value> {
        self.round_trip(r#"{"op":"members"}"#)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn read_timeout_surfaces_as_timed_out_not_refused() {
        // A listener that accepts and then goes silent: the classic
        // hung replica. Without a read timeout this would block forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut client =
            NclClient::connect_with(addr, ClientConfig::with_timeout(Duration::from_millis(50)))
                .unwrap();
        let err = client.ping().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert!(
            err.to_string().contains("timed out"),
            "timeout error names the failure mode: {err}"
        );
        drop(hold.join());
    }

    #[test]
    fn connection_refused_stays_distinct_from_timeout() {
        // Bind-then-drop guarantees an unused port.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let err = NclClient::connect_with(addr, ClientConfig::with_timeout(Duration::from_secs(2)))
            .unwrap_err();
        assert_ne!(
            err.kind(),
            std::io::ErrorKind::TimedOut,
            "a refusal must not masquerade as a hang: {err}"
        );
    }
}
