//! Error type for the serving layer.

use std::error::Error;
use std::fmt;

use ncl_snn::SnnError;

/// Error returned by serving operations.
#[derive(Debug)]
pub enum ServeError {
    /// A request line was malformed (bad JSON, unknown op, out-of-range
    /// spike indices, ...). The connection stays open; the detail is
    /// echoed back to the client.
    InvalidRequest {
        /// Human-readable detail.
        detail: String,
    },
    /// The underlying network rejected the work (shape mismatch, bad
    /// checkpoint bytes, ...).
    Snn(SnnError),
    /// A swap would change the serving contract (input/output width), so
    /// in-flight and future requests built against the old shape would
    /// break mid-connection.
    IncompatibleModel {
        /// Human-readable detail naming both shapes.
        detail: String,
    },
    /// Socket/file I/O failure.
    Io(std::io::Error),
    /// The service is draining; no new work is accepted.
    ShuttingDown,
    /// A replication operation (delta/checkpoint fetch or apply) failed,
    /// or this replica does not participate in replication.
    Replication {
        /// Human-readable detail.
        detail: String,
    },
    /// A swap/apply proposed a version at or behind the one already
    /// serving — wire-visible versions are monotonic, so the stale
    /// update is refused instead of silently regressing.
    StaleVersion {
        /// The version currently serving.
        current: u64,
        /// The version the rejected update proposed.
        proposed: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidRequest { detail } => write!(f, "invalid request: {detail}"),
            ServeError::Snn(e) => write!(f, "model failure: {e}"),
            ServeError::IncompatibleModel { detail } => {
                write!(f, "incompatible model: {detail}")
            }
            ServeError::Io(e) => write!(f, "i/o failure: {e}"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Replication { detail } => write!(f, "replication failure: {detail}"),
            ServeError::StaleVersion { current, proposed } => write!(
                f,
                "stale version: serving v{current}, refused proposed v{proposed}"
            ),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Snn(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnnError> for ServeError {
    fn from(e: SnnError) -> Self {
        ServeError::Snn(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_detail() {
        let e = ServeError::InvalidRequest {
            detail: "bad op".into(),
        };
        assert!(e.to_string().contains("bad op"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
        let io = ServeError::from(std::io::Error::other("x"));
        assert!(io.source().is_some());
        let e = ServeError::StaleVersion {
            current: 5,
            proposed: 3,
        };
        assert!(e.to_string().contains("serving v5"));
        assert!(e.to_string().contains("v3"));
        let e = ServeError::Replication {
            detail: "no sync handler".into(),
        };
        assert!(e.to_string().contains("no sync handler"));
    }
}
