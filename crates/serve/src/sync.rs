//! Replica synchronization hooks.
//!
//! The serving layer does not know how models are trained or how
//! checkpoints are encoded — that lives above it (`ncl_online`). What it
//! *does* own is the wire: the `health` / `delta` / `apply_delta` /
//! `checkpoint` / `apply_checkpoint` ops a fleet uses to keep replicas
//! converged. [`ReplicaSync`] is the seam between the two: a server
//! started with [`crate::server::Server::start_with_sync`] forwards
//! those ops to its handler, and the handler (a learner publishing
//! deltas, or a follower applying them) does the format-aware work and
//! swaps the registry.
//!
//! A server started without a handler answers every replication op with
//! [`ServeError::Replication`] — a plain inference process is not
//! silently part of a fleet.

use serde_json::Value;

use crate::error::ServeError;

/// What a replica contributes to the replication protocol. All methods
/// are called from connection-handler threads and must be thread-safe.
pub trait ReplicaSync: Send + Sync {
    /// This replica's role, reported by `health` (`"learner"` or
    /// `"follower"`).
    fn role(&self) -> &'static str;

    /// Extra role-specific fields merged into the `health` response
    /// (e.g. a follower's sync state).
    fn health_extra(&self) -> Vec<(&'static str, Value)> {
        Vec::new()
    }

    /// Returns `(target_version, delta_bytes)` advancing a replica at
    /// `base_version`, if this replica publishes deltas and still
    /// retains that one.
    ///
    /// # Errors
    ///
    /// [`ServeError::Replication`] if this replica does not publish
    /// (followers) or no longer holds a delta from `base_version` — the
    /// caller falls back to [`ReplicaSync::fetch_checkpoint`].
    fn fetch_delta(&self, base_version: u64) -> Result<(u64, Vec<u8>), ServeError>;

    /// Applies an encoded delta and hot-swaps the result, returning the
    /// new model version.
    ///
    /// # Errors
    ///
    /// [`ServeError::Replication`] for undecodable/mismatched deltas
    /// (the caller falls back to a full checkpoint) and
    /// [`ServeError::StaleVersion`] for duplicates.
    fn apply_delta(&self, payload: &[u8]) -> Result<u64, ServeError>;

    /// The full encoding of this replica's latest checkpoint.
    ///
    /// # Errors
    ///
    /// [`ServeError::Replication`] if this replica does not publish.
    fn fetch_checkpoint(&self) -> Result<Vec<u8>, ServeError>;

    /// Applies an encoded full checkpoint and hot-swaps the result,
    /// returning the new model version.
    ///
    /// # Errors
    ///
    /// [`ServeError::Replication`] for undecodable/foreign checkpoints
    /// and [`ServeError::StaleVersion`] for non-advancing ones.
    fn apply_checkpoint(&self, payload: &[u8]) -> Result<u64, ServeError>;

    /// The fleet epoch this replica last observed. Epochs fence
    /// split-brain: every promotion bumps the fleet epoch, and a
    /// replica refuses writes and role changes stamped with an older
    /// one. Replicas that predate elasticity report 0 (unfenced).
    fn epoch(&self) -> u64 {
        0
    }

    /// Observes the fleet epoch stamped on an incoming write, adopting
    /// it if newer.
    ///
    /// # Errors
    ///
    /// [`ServeError::Replication`] if `epoch` is older than the one
    /// this replica is fenced at — the write comes from a deposed
    /// learner and must not be applied.
    fn observe_epoch(&self, epoch: u64) -> Result<(), ServeError> {
        let _ = epoch;
        Ok(())
    }

    /// Promotes this replica to the fleet's learner under a new fleet
    /// epoch, returning the model version it resumes publishing from.
    ///
    /// # Errors
    ///
    /// [`ServeError::Replication`] if this replica cannot change role
    /// (the default: fixed-role replicas) or `epoch` does not advance
    /// the one it is fenced at.
    fn promote(&self, epoch: u64) -> Result<u64, ServeError> {
        let _ = epoch;
        Err(fixed_role())
    }

    /// Demotes this replica to a follower under `epoch` (the
    /// split-brain path: a returning old learner steps down), returning
    /// its model version.
    ///
    /// # Errors
    ///
    /// [`ServeError::Replication`] if this replica cannot change role
    /// or `epoch` is older than the one it is fenced at.
    fn demote(&self, epoch: u64) -> Result<u64, ServeError> {
        let _ = epoch;
        Err(fixed_role())
    }
}

/// The error fixed-role replicas answer `promote`/`demote` with.
fn fixed_role() -> ServeError {
    ServeError::Replication {
        detail: "this replica has a fixed role and cannot be promoted or demoted".into(),
    }
}

/// The error every replication op gets on a server with no handler.
pub(crate) fn not_replicating() -> ServeError {
    ServeError::Replication {
        detail: "this server does not participate in replication".into(),
    }
}
