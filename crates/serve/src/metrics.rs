//! Serving instrumentation: a lock-free log₂ latency histogram plus
//! request/batch/swap counters, snapshotted into the JSON stats endpoint.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde_json::Value;

/// Number of log₂ buckets: bucket `i` covers latencies of `2^(i-1)..2^i`
/// microseconds (bucket 0 is `0..=1 µs`), so 40 buckets span beyond any
/// plausible request latency.
const BUCKETS: usize = 40;

/// Lock-free latency histogram with power-of-two microsecond buckets.
///
/// Quantiles are resolved to the upper bound of the bucket containing the
/// requested rank — an at-most-2x overestimate, which is the right bias
/// for tail-latency reporting (p99 is never under-reported).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record_us(&self, us: u64) {
        // ceil(log2(us)): the smallest i with 2^i >= us, so the bucket's
        // upper bound bounds the true latency from above.
        let idx = if us <= 1 {
            0
        } else {
            (64 - (us - 1).leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Largest observation in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds, resolved to the
    /// containing bucket's upper bound. Returns 0 when empty.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                // Upper bound of bucket i: 2^i µs (bucket 0 holds 0..=1).
                return 1u64 << i.min(63);
            }
        }
        self.max_us()
    }
}

/// Counters + histogram for one serving process.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Successfully answered predict requests.
    ok: AtomicU64,
    /// Requests answered with an error.
    failed: AtomicU64,
    /// Batched forward passes executed.
    batches: AtomicU64,
    /// Completed hot swaps.
    swaps: AtomicU64,
    /// End-to-end (enqueue → reply) predict latency.
    latency: LatencyHistogram,
    /// Nanoseconds (since `started`) of the first successful reply.
    first_reply_ns: AtomicU64,
    /// Nanoseconds (since `started`) of the latest successful reply.
    last_reply_ns: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            ok: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            first_reply_ns: AtomicU64::new(u64::MAX),
            last_reply_ns: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Records one successful predict with its end-to-end latency.
    pub fn record_ok(&self, latency_us: u64) {
        self.ok.fetch_add(1, Ordering::Relaxed);
        self.latency.record_us(latency_us);
        let now_ns = self.started.elapsed().as_nanos() as u64;
        self.first_reply_ns.fetch_min(now_ns, Ordering::Relaxed);
        self.last_reply_ns.fetch_max(now_ns, Ordering::Relaxed);
    }

    /// Records one failed request.
    pub fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed hot swap.
    pub fn record_swap(&self) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Successful predict count.
    #[must_use]
    pub fn ok_count(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// Failed request count.
    #[must_use]
    pub fn failed_count(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// The latency histogram.
    #[must_use]
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Requests per second over the **active serving window** (first to
    /// latest successful reply) — not process uptime, which would decay
    /// toward zero while the server sits idle between bursts. The window
    /// is floored at 1 ms so a single instantaneous burst reads as a
    /// rate, not a division by ~zero.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        let ok = self.ok_count();
        if ok == 0 {
            return 0.0;
        }
        let first = self.first_reply_ns.load(Ordering::Relaxed);
        let last = self.last_reply_ns.load(Ordering::Relaxed);
        let window_secs = (last.saturating_sub(first) as f64 / 1e9).max(1e-3);
        ok as f64 / window_secs
    }

    /// Serializes the counters into the stats-endpoint JSON shape.
    #[must_use]
    pub fn snapshot(&self) -> Value {
        let mut latency = BTreeMap::new();
        latency.insert(
            "p50".to_owned(),
            Value::from(self.latency.quantile_us(0.50)),
        );
        latency.insert(
            "p95".to_owned(),
            Value::from(self.latency.quantile_us(0.95)),
        );
        latency.insert(
            "p99".to_owned(),
            Value::from(self.latency.quantile_us(0.99)),
        );
        latency.insert("mean".to_owned(), Value::from(self.latency.mean_us()));
        latency.insert("max".to_owned(), Value::from(self.latency.max_us()));

        let mut map = BTreeMap::new();
        map.insert("requests_ok".to_owned(), Value::from(self.ok_count()));
        map.insert(
            "requests_failed".to_owned(),
            Value::from(self.failed_count()),
        );
        map.insert(
            "batches".to_owned(),
            Value::from(self.batches.load(Ordering::Relaxed)),
        );
        map.insert(
            "swaps".to_owned(),
            Value::from(self.swaps.load(Ordering::Relaxed)),
        );
        map.insert(
            "uptime_ms".to_owned(),
            Value::from(self.started.elapsed().as_millis() as u64),
        );
        map.insert(
            "requests_per_sec".to_owned(),
            Value::from(self.requests_per_sec()),
        );
        let (first, last) = (
            self.first_reply_ns.load(Ordering::Relaxed),
            self.last_reply_ns.load(Ordering::Relaxed),
        );
        map.insert(
            "window_ms".to_owned(),
            Value::from(last.saturating_sub(first) / 1_000_000),
        );
        map.insert("latency_us".to_owned(), Value::Object(latency));
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        for us in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        // p50 lands in the 0..=1 bucket; upper bound 1.
        assert_eq!(h.quantile_us(0.50), 1);
        // p99 (rank 10) lands in the bucket holding 100 (64..128 -> 128).
        assert_eq!(h.quantile_us(0.99), 128);
        assert_eq!(h.max_us(), 100);
        assert!((h.mean_us() - 10.9).abs() < 1e-9);
    }

    #[test]
    fn quantile_never_underreports() {
        let h = LatencyHistogram::default();
        for us in [3u64, 9, 17, 33, 1000] {
            h.record_us(us);
        }
        assert!(h.quantile_us(1.0) >= 1000);
        assert!(h.quantile_us(0.0) >= 3);
    }

    #[test]
    fn zero_latency_is_representable() {
        let h = LatencyHistogram::default();
        h.record_us(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.5), 1, "0 µs lives in the first bucket");
    }

    #[test]
    fn metrics_snapshot_shape() {
        let m = Metrics::default();
        m.record_ok(50);
        m.record_ok(150);
        m.record_failure();
        m.record_batch();
        m.record_swap();
        let snap = m.snapshot();
        assert_eq!(snap.get("requests_ok").and_then(Value::as_u64), Some(2));
        assert_eq!(snap.get("requests_failed").and_then(Value::as_u64), Some(1));
        assert_eq!(snap.get("batches").and_then(Value::as_u64), Some(1));
        assert_eq!(snap.get("swaps").and_then(Value::as_u64), Some(1));
        let latency = snap.get("latency_us").expect("latency block");
        for key in ["p50", "p95", "p99", "mean", "max"] {
            assert!(latency.get(key).is_some(), "missing latency key {key}");
        }
        assert!(snap.get("window_ms").is_some());
        // Round-trips through the JSON writer/parser.
        let text = snap.to_json();
        assert_eq!(serde_json::from_str(&text).unwrap(), snap);
    }

    #[test]
    fn throughput_uses_the_serving_window_not_uptime() {
        let m = Metrics::default();
        assert_eq!(m.requests_per_sec(), 0.0, "no traffic, no rate");
        m.record_ok(10);
        std::thread::sleep(std::time::Duration::from_millis(20));
        m.record_ok(10);
        let rate = m.requests_per_sec();
        // 2 requests over a ~20 ms window: the rate reflects the window
        // (roughly 100/s), not a fraction of process uptime.
        assert!(rate > 10.0, "window-based rate, got {rate}");
        // Idling does not decay the reported rate.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let after_idle = m.requests_per_sec();
        assert!(
            (after_idle - rate).abs() < 1.0,
            "idle must not decay the rate"
        );
    }
}
