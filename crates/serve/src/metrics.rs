//! Serving instrumentation, backed by the shared `ncl_obs` registry:
//! request/batch/swap counters, the end-to-end latency histogram, and
//! batcher queue metrics — snapshotted into the JSON stats endpoint
//! and scrapeable via the `metrics` wire op as Prometheus text.
//!
//! The log₂ latency histogram that used to live here was generalized
//! into [`ncl_obs::Log2Histogram`]; the alias below keeps the old name
//! working. All hot-path updates remain single relaxed atomic ops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ncl_obs::{Counter, Gauge, Log2Histogram, Registry};
use serde_json::Value;

/// The serve latency histogram is the general log₂ histogram now;
/// quantiles still resolve to bucket upper bounds (an at-most-2x
/// overestimate — the right bias for tail-latency reporting).
pub type LatencyHistogram = Log2Histogram;

/// Counters + histograms for one serving process, registered in an
/// [`ncl_obs::Registry`] under `serve_*` names.
pub struct Metrics {
    started: Instant,
    /// Successfully answered predict requests.
    ok: Arc<Counter>,
    /// Requests answered with an error.
    failed: Arc<Counter>,
    /// Batched forward passes executed.
    batches: Arc<Counter>,
    /// Completed hot swaps.
    swaps: Arc<Counter>,
    /// End-to-end (enqueue → reply) predict latency (µs).
    latency: Arc<Log2Histogram>,
    /// Predict requests per executed batch.
    batch_size: Arc<Log2Histogram>,
    /// Requests queued but not yet claimed by a batch worker.
    queue_depth: Arc<Gauge>,
    /// Nanoseconds (since `started`) of the first successful reply.
    first_reply_ns: AtomicU64,
    /// Nanoseconds (since `started`) of the latest successful reply.
    last_reply_ns: AtomicU64,
}

impl Default for Metrics {
    /// A detached instance with its own private registry — for tests
    /// and benches that never scrape an exposition.
    fn default() -> Self {
        Metrics::new(&Registry::new())
    }
}

impl Metrics {
    /// Registers the serving metrics in `obs` (idempotent: a second
    /// `Metrics` on the same registry shares the same series).
    #[must_use]
    pub fn new(obs: &Registry) -> Self {
        Metrics {
            started: Instant::now(),
            ok: obs.counter(
                "serve_requests_ok_total",
                "Successfully answered predict requests.",
            ),
            failed: obs.counter(
                "serve_requests_failed_total",
                "Requests answered with an error.",
            ),
            batches: obs.counter("serve_batches_total", "Batched forward passes executed."),
            swaps: obs.counter(
                "serve_swaps_total",
                "Completed hot swaps (swap op or replication apply).",
            ),
            latency: obs.histogram(
                "serve_latency_us",
                "End-to-end predict latency in microseconds (enqueue to reply).",
            ),
            batch_size: obs.histogram("serve_batch_size", "Predict requests per executed batch."),
            queue_depth: obs.gauge(
                "serve_queue_depth",
                "Predict requests queued but not yet claimed by a batch worker.",
            ),
            first_reply_ns: AtomicU64::new(u64::MAX),
            last_reply_ns: AtomicU64::new(0),
        }
    }

    /// Records one successful predict with its end-to-end latency.
    pub fn record_ok(&self, latency_us: u64) {
        self.latency.record(latency_us);
        self.note_ok();
    }

    /// Records one successful predict that carried a trace context; the
    /// observation feeds the latency exemplar, so the `stats` latency
    /// block can point at the slowest captured trace.
    pub fn record_ok_traced(&self, latency_us: u64, trace_id: u128) {
        self.latency.record_traced(latency_us, trace_id);
        self.note_ok();
    }

    fn note_ok(&self) {
        self.ok.inc();
        let now_ns = self.started.elapsed().as_nanos() as u64;
        self.first_reply_ns.fetch_min(now_ns, Ordering::Relaxed);
        self.last_reply_ns.fetch_max(now_ns, Ordering::Relaxed);
    }

    /// Records one failed request.
    pub fn record_failure(&self) {
        self.failed.inc();
    }

    /// Records one executed batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        self.batches.inc();
        self.batch_size.record(size as u64);
    }

    /// Records one completed hot swap.
    pub fn record_swap(&self) {
        self.swaps.inc();
    }

    /// The queue-depth gauge (incremented on submit, drained by the
    /// batch workers).
    #[must_use]
    pub fn queue_depth(&self) -> &Arc<Gauge> {
        &self.queue_depth
    }

    /// Successful predict count.
    #[must_use]
    pub fn ok_count(&self) -> u64 {
        self.ok.get()
    }

    /// Failed request count.
    #[must_use]
    pub fn failed_count(&self) -> u64 {
        self.failed.get()
    }

    /// The latency histogram.
    #[must_use]
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Requests per second over the **active serving window** (first to
    /// latest successful reply) — not process uptime, which would decay
    /// toward zero while the server sits idle between bursts. The window
    /// is floored at 1 ms so a single instantaneous burst reads as a
    /// rate, not a division by ~zero.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        let ok = self.ok_count();
        if ok == 0 {
            return 0.0;
        }
        let first = self.first_reply_ns.load(Ordering::Relaxed);
        let last = self.last_reply_ns.load(Ordering::Relaxed);
        let window_secs = (last.saturating_sub(first) as f64 / 1e9).max(1e-3);
        ok as f64 / window_secs
    }

    /// Serializes the counters into the stats-endpoint JSON shape.
    #[must_use]
    pub fn snapshot(&self) -> Value {
        let mut latency = BTreeMap::new();
        latency.insert("p50".to_owned(), Value::from(self.latency.quantile(0.50)));
        latency.insert("p95".to_owned(), Value::from(self.latency.quantile(0.95)));
        latency.insert("p99".to_owned(), Value::from(self.latency.quantile(0.99)));
        latency.insert("mean".to_owned(), Value::from(self.latency.mean()));
        latency.insert("max".to_owned(), Value::from(self.latency.max()));
        if let Some((value, trace_id)) = self.latency.exemplar() {
            let mut exemplar = BTreeMap::new();
            exemplar.insert("latency_us".to_owned(), Value::from(value));
            exemplar.insert(
                "trace_id".to_owned(),
                Value::from(ncl_obs::trace::trace_id_hex(trace_id)),
            );
            latency.insert("exemplar".to_owned(), Value::Object(exemplar));
        }

        let mut map = BTreeMap::new();
        map.insert("requests_ok".to_owned(), Value::from(self.ok_count()));
        map.insert(
            "requests_failed".to_owned(),
            Value::from(self.failed_count()),
        );
        map.insert("batches".to_owned(), Value::from(self.batches.get()));
        map.insert("swaps".to_owned(), Value::from(self.swaps.get()));
        map.insert(
            "uptime_ms".to_owned(),
            Value::from(self.started.elapsed().as_millis() as u64),
        );
        map.insert(
            "requests_per_sec".to_owned(),
            Value::from(self.requests_per_sec()),
        );
        let (first, last) = (
            self.first_reply_ns.load(Ordering::Relaxed),
            self.last_reply_ns.load(Ordering::Relaxed),
        );
        map.insert(
            "window_ms".to_owned(),
            Value::from(last.saturating_sub(first) / 1_000_000),
        );
        map.insert("latency_us".to_owned(), Value::Object(latency));
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for us in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        // p50 lands in the 0..=1 bucket; upper bound 1.
        assert_eq!(h.quantile(0.50), 1);
        // p99 (rank 10) lands in the bucket holding 100 (64..128 -> 128).
        assert_eq!(h.quantile(0.99), 128);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 10.9).abs() < 1e-9);
    }

    #[test]
    fn quantile_never_underreports() {
        let h = LatencyHistogram::default();
        for us in [3u64, 9, 17, 33, 1000] {
            h.record(us);
        }
        assert!(h.quantile(1.0) >= 1000);
        assert!(h.quantile(0.0) >= 3);
    }

    #[test]
    fn zero_latency_is_representable() {
        let h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 1, "0 µs lives in the first bucket");
    }

    #[test]
    fn metrics_snapshot_shape() {
        let m = Metrics::default();
        m.record_ok(50);
        m.record_ok(150);
        m.record_failure();
        m.record_batch(2);
        m.record_swap();
        let snap = m.snapshot();
        assert_eq!(snap.get("requests_ok").and_then(Value::as_u64), Some(2));
        assert_eq!(snap.get("requests_failed").and_then(Value::as_u64), Some(1));
        assert_eq!(snap.get("batches").and_then(Value::as_u64), Some(1));
        assert_eq!(snap.get("swaps").and_then(Value::as_u64), Some(1));
        let latency = snap.get("latency_us").expect("latency block");
        for key in ["p50", "p95", "p99", "mean", "max"] {
            assert!(latency.get(key).is_some(), "missing latency key {key}");
        }
        assert!(snap.get("window_ms").is_some());
        // Round-trips through the JSON writer/parser.
        let text = snap.to_json();
        assert_eq!(serde_json::from_str(&text).unwrap(), snap);
    }

    #[test]
    fn snapshot_surfaces_the_latency_exemplar() {
        let m = Metrics::default();
        m.record_ok(10);
        let plain = m.snapshot();
        assert!(
            plain.get("latency_us").unwrap().get("exemplar").is_none(),
            "untraced traffic yields no exemplar"
        );
        m.record_ok_traced(500, 0xab);
        m.record_ok_traced(100, 0xcd);
        let snap = m.snapshot();
        let exemplar = snap
            .get("latency_us")
            .and_then(|l| l.get("exemplar"))
            .expect("exemplar after traced traffic");
        assert_eq!(
            exemplar.get("latency_us").and_then(Value::as_u64),
            Some(500)
        );
        assert_eq!(
            exemplar.get("trace_id").and_then(Value::as_str),
            Some("000000000000000000000000000000ab")
        );
    }

    #[test]
    fn metrics_render_into_the_shared_registry() {
        let obs = Registry::new();
        let m = Metrics::new(&obs);
        m.record_ok(50);
        m.record_batch(4);
        let text = obs.render();
        assert!(text.contains("serve_requests_ok_total 1"));
        assert!(text.contains("serve_batches_total 1"));
        assert!(text.contains("serve_batch_size_sum 4"));
        assert!(text.contains("serve_latency_us_count 1"));
        assert!(text.contains("# TYPE serve_latency_us histogram"));
    }

    #[test]
    fn throughput_uses_the_serving_window_not_uptime() {
        let m = Metrics::default();
        assert_eq!(m.requests_per_sec(), 0.0, "no traffic, no rate");
        m.record_ok(10);
        std::thread::sleep(std::time::Duration::from_millis(20));
        m.record_ok(10);
        let rate = m.requests_per_sec();
        // 2 requests over a ~20 ms window: the rate reflects the window
        // (roughly 100/s), not a fraction of process uptime.
        assert!(rate > 10.0, "window-based rate, got {rate}");
        // Idling does not decay the reported rate.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let after_idle = m.requests_per_sec();
        assert!(
            (after_idle - rate).abs() < 1.0,
            "idle must not decay the rate"
        );
    }
}
